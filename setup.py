"""Setup shim.

The offline environment has setuptools but no ``wheel`` package, so PEP 517
editable installs (which require ``bdist_wheel``) fail. This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work without network access.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "GNMR: Multi-Behavior Enhanced Recommendation with Cross-Interaction "
        "Collaborative Relation Modeling (ICDE 2021) — full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
)

"""GNMR reproduction: Multi-Behavior Enhanced Recommendation with
Cross-Interaction Collaborative Relation Modeling (ICDE 2021).

Public entry points:

* :mod:`repro.core` — the GNMR model and its configuration.
* :mod:`repro.models` — all baseline recommenders from the paper's Table II.
* :mod:`repro.data` — datasets, synthetic generators, splits, loaders.
* :mod:`repro.graph` — the multi-behavior user–item interaction graph.
* :mod:`repro.eval` — HR@N / NDCG@N and the sampled ranking protocol.
* :mod:`repro.train` — the generic pairwise trainer.
* :mod:`repro.shard` — sharded embedding tables (parameter-server layout).
* :mod:`repro.serve` — batched top-K serving.
* :mod:`repro.experiments` — table/figure reproduction harness.
* :mod:`repro.tensor`, :mod:`repro.nn` — the from-scratch autograd and
  neural-network substrates everything else is built on.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

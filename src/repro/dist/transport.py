"""Shared-memory transport primitives for the parameter server.

Three pieces, all picklable-by-handle so they cross both ``fork`` and
``spawn`` start methods:

* :class:`SharedBlock` — a numpy array backed by
  ``multiprocessing.shared_memory``. Parameter tables live in these: the
  trainer's ``Parameter.data`` *is* the shm view, so "parameter pulls"
  are zero-copy reads of memory the owner process updates in place.
* :class:`ShmRing` — a single-producer/single-consumer byte ring over one
  shm segment carrying length-prefixed frames (:func:`repro.dist.codec.frame`).
  The producer writes only the head cursor, the consumer only the tail;
  two semaphores (frames available / frames consumed) provide blocking
  without spinning. This is the gradient push queue: one ring per
  shard-owner worker.
* :class:`PipeChannel` — the portability fallback over
  ``multiprocessing.connection`` (sockets/pipes do their own framing).
  Same ``send``/``recv`` surface, so the owner loop is transport-blind.

Cursors are 8-byte aligned single-word stores; CPython writes them with
one memcpy, which is atomic on every platform this project targets (the
producer and consumer each own one cursor exclusively, so there is no
read-modify-write race by construction).
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np


class TransportError(RuntimeError):
    """A channel operation failed (timeout, oversized frame, torn down)."""


@dataclass(frozen=True)
class BlockHandle:
    """Picklable description of a :class:`SharedBlock`."""

    name: str
    shape: tuple
    dtype: str


class SharedBlock:
    """A shared-memory-backed ndarray with create/attach lifecycle."""

    def __init__(self, shm: shared_memory.SharedMemory, handle: BlockHandle,
                 owner: bool):
        self._shm = shm
        self.handle = handle
        self._owner = owner
        self.array = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype),
                                buffer=shm.buf)

    @classmethod
    def create(cls, array: np.ndarray, name_hint: str = "blk") -> "SharedBlock":
        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(create=True,
                                         size=max(array.nbytes, 1))
        handle = BlockHandle(shm.name, tuple(array.shape), array.dtype.str)
        block = cls(shm, handle, owner=True)
        block.array[...] = array
        return block

    @classmethod
    def attach(cls, handle: BlockHandle) -> "SharedBlock":
        shm = shared_memory.SharedMemory(name=handle.name)
        return cls(shm, handle, owner=False)

    def close(self) -> None:
        """Drop this process's mapping (both sides); unlink if creator."""
        self.array = None
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double close
                pass


_CURSORS = struct.Struct("<QQ")  # head (producer), tail (consumer)


@dataclass(frozen=True)
class RingHandle:
    """Picklable description of a :class:`ShmRing` (+ its semaphores)."""

    name: str
    capacity: int
    items: object  # multiprocessing.Semaphore proxies pickle fine
    space: object


class ShmRing:
    """SPSC byte ring over shared memory, length-prefixed frames.

    ``capacity`` bounds the bytes in flight — a full ring back-pressures
    the producer (bounded staleness needs a bounded queue). Frames larger
    than the capacity are rejected outright rather than deadlocking.
    """

    def __init__(self, shm: shared_memory.SharedMemory, handle: RingHandle,
                 owner: bool):
        self._shm = shm
        self.handle = handle
        self.capacity = handle.capacity
        self._items = handle.items
        self._space = handle.space
        self._owner = owner
        self._buf = shm.buf

    @classmethod
    def create(cls, ctx, capacity: int = 1 << 22) -> "ShmRing":
        if capacity < 64:
            raise ValueError("ring capacity must be at least 64 bytes")
        shm = shared_memory.SharedMemory(create=True,
                                         size=_CURSORS.size + capacity)
        handle = RingHandle(shm.name, capacity,
                            ctx.Semaphore(0), ctx.Semaphore(0))
        ring = cls(shm, handle, owner=True)
        _CURSORS.pack_into(ring._buf, 0, 0, 0)
        return ring

    @classmethod
    def attach(cls, handle: RingHandle) -> "ShmRing":
        shm = shared_memory.SharedMemory(name=handle.name)
        return cls(shm, handle, owner=False)

    # -- cursor helpers (monotonic counters; offsets are mod capacity) --
    def _head(self) -> int:
        return struct.unpack_from("<Q", self._buf, 0)[0]

    def _tail(self) -> int:
        return struct.unpack_from("<Q", self._buf, 8)[0]

    def _copy_in(self, cursor: int, payload: bytes) -> None:
        offset = cursor % self.capacity
        first = min(len(payload), self.capacity - offset)
        base = _CURSORS.size
        self._buf[base + offset:base + offset + first] = payload[:first]
        if first < len(payload):
            self._buf[base:base + len(payload) - first] = payload[first:]

    def _copy_out(self, cursor: int, n: int) -> bytes:
        offset = cursor % self.capacity
        first = min(n, self.capacity - offset)
        base = _CURSORS.size
        out = bytes(self._buf[base + offset:base + offset + first])
        if first < n:
            out += bytes(self._buf[base:base + (n - first)])
        return out

    # ------------------------------------------------------------------
    def send(self, framed: bytes, timeout: float | None = None,
             alive: "callable | None" = None) -> None:
        """Enqueue one framed payload; blocks while the ring is full.

        ``alive`` is polled while waiting so a dead consumer raises
        instead of hanging forever.
        """
        need = len(framed)
        if need > self.capacity:
            raise TransportError(
                f"frame of {need} bytes exceeds ring capacity "
                f"{self.capacity}; raise ring_capacity")
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.capacity - (self._head() - self._tail()) < need:
            if alive is not None and not alive():
                raise TransportError("ring consumer died while ring was full")
            wait = 0.1 if deadline is None else min(
                0.1, max(0.0, deadline - time.monotonic()))
            if not self._space.acquire(timeout=wait) and deadline is not None \
                    and time.monotonic() >= deadline:
                raise TransportError(
                    f"timed out after {timeout}s waiting for ring space")
        head = self._head()
        self._copy_in(head, framed)
        struct.pack_into("<Q", self._buf, 0, head + need)
        self._items.release()

    def recv(self, timeout: float | None = None) -> bytes | None:
        """Dequeue one frame body (length prefix stripped).

        Returns ``None`` on timeout — the owner loop uses that to
        interleave liveness checks with blocking waits.
        """
        if not self._items.acquire(timeout=timeout):
            return None
        tail = self._tail()
        (length,) = struct.unpack("<I", self._copy_out(tail, 4))
        body = self._copy_out(tail + 4, length)
        struct.pack_into("<Q", self._buf, 8, tail + 4 + length)
        self._space.release()
        return body

    def close(self) -> None:
        self._buf = None
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double close
                pass


class PipeChannel:
    """The socket/pipe fallback with the ring's send/recv surface.

    ``multiprocessing.connection`` does its own length framing, so this
    channel moves frame *bodies*; ``send`` still accepts the framed bytes
    and validates/strips the prefix to keep one producer code path.
    """

    def __init__(self, conn, owner: bool = True):
        self._conn = conn
        self._owner = owner

    @classmethod
    def pair(cls, ctx) -> "tuple[PipeChannel, PipeChannel]":
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        return cls(send_conn), cls(recv_conn)

    def send(self, framed: bytes, timeout: float | None = None,
             alive: "callable | None" = None) -> None:
        from repro.dist.codec import unframe

        try:
            self._conn.send_bytes(unframe(framed))
        except (BrokenPipeError, OSError) as exc:
            raise TransportError(f"pipe send failed: {exc}") from exc

    def recv(self, timeout: float | None = None) -> bytes | None:
        try:
            if timeout is not None and not self._conn.poll(timeout):
                return None
            return self._conn.recv_bytes()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise TransportError(f"pipe recv failed: {exc}") from exc

    def close(self) -> None:
        self._conn.close()

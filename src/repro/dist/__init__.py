"""Multi-process parameter-server training.

The cross-process half of the ``repro.shard`` layout: shard-owner
processes apply optimizer steps concurrently while the trainer keeps
extraction and forward/backward on the async pipeline. Gradients travel
as length-prefixed :mod:`~repro.dist.codec` frames over shared-memory
rings (:class:`~repro.dist.transport.ShmRing`, with a pipe fallback);
parameters live in shared memory so pulls are zero-copy. ``staleness=0``
bit-matches in-process ``shards=K`` training; a bounded staleness window
unlocks async throughput. See ``docs/distributed.md``.
"""

from repro.dist.codec import (
    FrameError,
    decode,
    decode_grad,
    encode_grad,
    encode_push,
    encode_stop,
    frame,
    unframe,
)
from repro.dist.server import (
    DistParameterServer,
    ShardOwner,
    default_dist_workers,
)
from repro.dist.transport import (
    PipeChannel,
    SharedBlock,
    ShmRing,
    TransportError,
)

__all__ = [
    "DistParameterServer",
    "FrameError",
    "PipeChannel",
    "SharedBlock",
    "ShardOwner",
    "ShmRing",
    "TransportError",
    "decode",
    "decode_grad",
    "default_dist_workers",
    "encode_grad",
    "encode_push",
    "encode_stop",
    "frame",
    "unframe",
]

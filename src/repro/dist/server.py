"""Multi-process parameter server: shard-owner processes + trainer bridge.

Topology (K shards over W ≤ K owner processes, round-robin)::

    trainer process                      owner process w
    ───────────────                      ───────────────
    extraction + forward/backward        ShmRing.recv → codec.decode
    clip → codec.encode → ring.send  ──▶ ShardOwner.apply:
    local step (unsharded params)          optimizer.step() on owned shards
    throttle on applied clock        ◀──   applied[w] = step; ack.release()

Parameter tables live in :class:`~repro.dist.transport.SharedBlock`
segments: the trainer's ``Parameter.data`` *is* the shared view, so the
forward pass always reads owner-updated rows with zero copies ("parameter
pull" is a memory read). Gradients cross per-worker SPSC rings (or the
pipe fallback) as length-prefixed :mod:`repro.dist.codec` frames.

Synchronization is a bounded-staleness window over per-worker applied-step
clocks: before forward for step ``t`` the trainer waits until every owner
has applied step ``t - 1 - staleness``. ``staleness=0`` is the synchronous
mode — every push is applied before the next forward, which makes
cross-process training bit-identical to in-process ``shards=K`` training
(same loss trace, same final parameters; the tests/shard parity suite is
the oracle). ``staleness ≥ 1`` is the async stale-push mode: the trainer
runs ahead while owners apply concurrently, trading determinism for
throughput.

Each owner builds its optimizer over exactly the parameters it owns.
Optimizer state in this codebase is strictly per-parameter (clocks,
moments, row counters), so partitioning the parameters across processes
partitions the state with no seam: an owner calling ``step()`` on its flat
parameter list evolves each parameter bit-identically to the in-process
grouped optimizer's ``step()``.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np

from repro.dist.codec import (
    KIND_PUSH,
    KIND_STATE,
    KIND_STOP,
    decode,
    encode_push,
    encode_state_request,
    encode_stop,
    frame,
)
from repro.dist.transport import (
    PipeChannel,
    RingHandle,
    SharedBlock,
    ShmRing,
    TransportError,
)
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam

TRANSPORTS = ("shm", "pipe", "inline")


def _make_optimizer(kind: str, params, lr: float):
    """The same optimizer the trainer builds — hyperparameters and all."""
    if kind == "sgd":
        return SGD(params, lr=lr)
    if kind == "adam":
        return Adam(params, lr=lr)
    raise ValueError(f"unknown optimizer {kind!r} (use 'adam' or 'sgd')")


class ShardOwner:
    """Applies decoded push frames to the shard parameters it owns.

    Process-free by design: the worker entrypoint (:func:`_owner_main`)
    drives it from a transport channel, and tests drive it directly with
    in-memory frames — the apply path is identical either way.
    """

    def __init__(self, params: list, optimizer: str = "adam",
                 lr: float = 1e-3):
        if not params:
            raise ValueError("shard owner needs at least one parameter")
        self.params = list(params)
        self.optimizer = _make_optimizer(optimizer, self.params, lr)
        self.applied = -1

    def apply(self, step: int, lr: float, grads: list) -> int:
        """One optimizer step at the trainer's recorded learning rate."""
        if len(grads) != len(self.params):
            raise TransportError(
                f"push frame carries {len(grads)} gradients for "
                f"{len(self.params)} owned parameters")
        if step != self.applied + 1:
            # the trainer numbers pushes densely, so any gap or repeat
            # means the transport dropped or replayed a frame — refuse to
            # step rather than silently diverge from the trainer's clock
            raise TransportError(
                f"out-of-sequence push: step {step} after applied "
                f"{self.applied} (a frame was dropped or duplicated)")
        self.optimizer.lr = lr
        for p, g in zip(self.params, grads):
            p.grad = g
        self.optimizer.step()
        for p in self.params:
            p.grad = None
        self.applied = step
        return step

    def apply_frame(self, body: bytes) -> tuple[int, int]:
        """Decode + apply one frame body → ``(step, kind)``.

        PUSH frames step the optimizer and return the applied step; STOP
        and STATE frames leave parameters untouched and return the last
        applied step (the caller dispatches on the kind: STOP exits the
        loop, STATE replies with :meth:`state_dict`).
        """
        kind, step, lr, grads = decode(body)
        if kind != KIND_PUSH:
            return self.applied, kind
        return self.apply(step, lr, grads), KIND_PUSH

    def state_dict(self) -> list[dict]:
        """Per-parameter optimizer state, in owned-parameter order."""
        return self.optimizer.state_dict()

    def load_state(self, states: list[dict]) -> None:
        """Restore optimizer state saved by a previous run's pull."""
        self.optimizer.load_state_dict(states)


def _owner_main(worker_id, optimizer, lr, block_handles, channel,
                clock_handle, ack, state_conn=None,
                initial_state=None):  # pragma: no cover - subprocess body
    """Owner process entrypoint (runs in the worker, never the trainer)."""
    blocks = [SharedBlock.attach(h) for h in block_handles]
    chan = ShmRing.attach(channel) if isinstance(channel, RingHandle) else channel
    clock_block = SharedBlock.attach(clock_handle)
    params = []
    for block in blocks:
        p = Parameter(block.array, dtype=block.array.dtype)
        p.data = block.array  # guarantee the shm view, never a copy
        params.append(p)
    owner = ShardOwner(params, optimizer=optimizer, lr=lr)
    if initial_state is not None:
        owner.load_state(initial_state)
    try:
        running = True
        while running:
            body = chan.recv(timeout=1.0)
            if body is None:
                continue  # idle tick; daemon flag handles a dead trainer
            step, kind = owner.apply_frame(body)
            if kind == KIND_PUSH:
                clock_block.array[worker_id] = step
                ack.release()
            elif kind == KIND_STATE:
                state_conn.send(owner.state_dict())
            else:
                running = False
    finally:
        chan.close()
        clock_block.close()
        for block in blocks:
            block.close()


class DistParameterServer:
    """Trainer-side bridge to the shard-owner worker pool.

    Parameters
    ----------
    shard_groups:
        Shard-labeled parameter groups (the non-``None`` entries of
        :func:`repro.nn.optim.shard_param_groups`), in ascending shard
        order. The bridge repoints each parameter's ``.data`` into shared
        memory for its lifetime; :meth:`close` copies the final values
        back into private arrays.
    optimizer, lr:
        What each owner builds over its shards — must match the trainer's
        configuration for the parity contract to hold.
    workers:
        Owner process count (default: one per shard, capped at the shard
        count). Shards are assigned round-robin.
    staleness:
        Bounded-staleness window: :meth:`throttle` lets the trainer lead
        the slowest owner by at most this many steps. ``0`` = synchronous.
    transport:
        ``"shm"`` (shared-memory rings, default), ``"pipe"`` (socket/pipe
        fallback), or ``"inline"`` (owners run inside the trainer process
        through the full encode→decode→apply path — no concurrency, used
        by tests and as a no-subprocess fallback).
    """

    def __init__(self, shard_groups: list, *, optimizer: str = "adam",
                 lr: float = 1e-3, workers: int | None = None,
                 staleness: int = 0, transport: str = "shm",
                 ring_capacity: int = 1 << 22, start_method: str | None = None,
                 timeout: float = 120.0, initial_state: list | None = None):
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r} "
                             f"(use one of {TRANSPORTS})")
        if staleness < 0:
            raise ValueError("staleness must be >= 0")
        groups = [g for g in shard_groups if g.get("shard") is not None]
        if not groups:
            raise ValueError("DistParameterServer needs shard-labeled "
                             "parameter groups (a model built with shards)")
        num_shards = len(groups)
        self.num_shards = num_shards
        self.num_workers = max(1, min(workers or num_shards, num_shards))
        self.staleness = int(staleness)
        self.transport = transport
        self.lr = float(lr)  # scheduler hook: ExponentialDecay mutates .lr
        self._optimizer_kind = optimizer
        self._timeout = timeout
        self._pushed = 0
        self._closed = False
        #: owned parameters in flat group order — the order
        #: :meth:`pull_state` reports and ``initial_state`` expects
        self.flat_params: list = [p for g in groups for p in g["params"]]
        # round-robin shard → worker assignment, shard order preserved
        self._owned_params: list[list] = [
            [p for g in groups[w::self.num_workers] for p in g["params"]]
            for w in range(self.num_workers)]
        if initial_state is not None:
            initial_state = list(initial_state)
            if len(initial_state) != len(self.flat_params):
                raise ValueError(
                    f"initial_state covers {len(initial_state)} parameters, "
                    f"bridge owns {len(self.flat_params)}")
            by_id = {id(p): s for p, s in zip(self.flat_params, initial_state)}
            self._initial_state = [[by_id[id(p)] for p in params]
                                   for params in self._owned_params]
        else:
            self._initial_state = None
        ctx = (multiprocessing.get_context(start_method)
               if start_method or transport != "inline"
               else multiprocessing)
        if transport == "inline":
            self._init_inline()
        else:
            self._init_processes(ctx, ring_capacity)

    # -- construction --------------------------------------------------
    def _init_inline(self) -> None:
        self._owners = [ShardOwner(params, optimizer=self._optimizer_kind,
                                   lr=self.lr)
                        for params in self._owned_params]
        if self._initial_state is not None:
            for owner, states in zip(self._owners, self._initial_state):
                owner.load_state(states)
        self._blocks: list = []
        self._procs: list = []

    def _init_processes(self, ctx, ring_capacity: int) -> None:
        self._owners = None
        self._blocks = []
        self._param_blocks: list[list] = []
        for params in self._owned_params:
            blocks = []
            for p in params:
                block = SharedBlock.create(np.asarray(p.data))
                p.data = block.array  # trainer reads shm from here on
                blocks.append(block)
                self._blocks.append(block)
            self._param_blocks.append(blocks)
        self._clock = SharedBlock.create(
            np.full(self.num_workers, -1, dtype=np.int64))
        self._acks = [ctx.Semaphore(0) for _ in range(self.num_workers)]
        self._channels = []
        self._state_conns = []
        self._procs = []
        for w, blocks in enumerate(self._param_blocks):
            if self.transport == "shm":
                ring = ShmRing.create(ctx, capacity=ring_capacity)
                sender, child_arg = ring, ring.handle
            else:
                sender, child_arg = PipeChannel.pair(ctx)
            self._channels.append(sender)
            # control plane for state pulls: tiny, rare, and pickled — the
            # struct codec stays the data plane for every gradient frame
            state_recv, state_send = ctx.Pipe(duplex=False)
            self._state_conns.append(state_recv)
            initial = (None if self._initial_state is None
                       else self._initial_state[w])
            proc = ctx.Process(
                target=_owner_main,
                args=(w, self._optimizer_kind, self.lr,
                      [b.handle for b in blocks], child_arg,
                      self._clock.handle, self._acks[w], state_send,
                      initial),
                daemon=True, name=f"shard-owner-{w}")
            proc.start()
            self._procs.append(proc)
            state_send.close()  # the child keeps its end

    # -- the step protocol ---------------------------------------------
    def push(self, lr: float | None = None) -> int:
        """Ship this step's shard gradients; clears them trainer-side.

        Must be called after ``backward`` (and clipping): reads each owned
        parameter's ``.grad`` — row-sparse, dense, or ``None`` — and sends
        one frame per worker. Returns the step index pushed.
        """
        if self._closed:
            raise TransportError("parameter server is closed")
        step = self._pushed
        lr = self.lr if lr is None else float(lr)
        for w, params in enumerate(self._owned_params):
            body = encode_push(step, lr, [p.grad for p in params])
            if self._owners is not None:  # inline
                self._owners[w].apply_frame(body)
            else:
                self._channels[w].send(frame(body), timeout=self._timeout,
                                       alive=self._procs[w].is_alive)
            for p in params:
                p.grad = None
        self._pushed = step + 1
        return step

    def wait_applied(self, step: int) -> None:
        """Block until every owner has applied ``step`` (no-op if < 0)."""
        if step < 0 or self._closed:
            return
        if self._owners is not None:  # inline applies synchronously
            return
        clock = self._clock.array
        for w in range((self.num_workers)):
            deadline = time.monotonic() + self._timeout
            while clock[w] < step:
                if not self._procs[w].is_alive():
                    raise TransportError(
                        f"shard owner {w} exited with code "
                        f"{self._procs[w].exitcode} before applying "
                        f"step {step}")
                if not self._acks[w].acquire(timeout=0.05) \
                        and time.monotonic() > deadline:
                    raise TransportError(
                        f"timed out waiting for shard owner {w} to apply "
                        f"step {step} (applied so far: {int(clock[w])})")
            while self._acks[w].acquire(block=False):
                pass  # drain stale tokens; the clock is the truth

    def throttle(self) -> None:
        """Enforce the staleness window before the next forward pass.

        With window ``s``, forward for step ``t`` may only run once step
        ``t - 1 - s`` is applied everywhere; ``s=0`` therefore barriers on
        *every* push — the synchronous, bit-parity mode.
        """
        self.wait_applied(self._pushed - 1 - self.staleness)

    def drain(self) -> None:
        """Wait until every in-flight push is applied (eval/checkpoint)."""
        self.wait_applied(self._pushed - 1)

    def pull_state(self) -> list[dict]:
        """Optimizer state per owned parameter, in ``flat_params`` order.

        Drains first so the state reflects every push made so far, then
        asks each owner process for its optimizer's
        :meth:`~repro.nn.optim.Optimizer.state_dict` over the control
        pipe. Feeding the result back as ``initial_state`` (same parameter
        order) makes a fresh bridge continue bit-exactly.
        """
        if self._closed:
            raise TransportError("parameter server is closed")
        self.drain()
        if self._owners is not None:  # inline: the state is right here
            per_worker = [o.state_dict() for o in self._owners]
        else:
            for w, chan in enumerate(self._channels):
                chan.send(frame(encode_state_request()), timeout=self._timeout,
                          alive=self._procs[w].is_alive)
            per_worker = []
            for w, conn in enumerate(self._state_conns):
                if not conn.poll(self._timeout):
                    raise TransportError(
                        f"timed out waiting for shard owner {w}'s state")
                per_worker.append(conn.recv())
        by_id = {}
        for params, states in zip(self._owned_params, per_worker):
            if len(states) != len(params):  # pragma: no cover - defensive
                raise TransportError(
                    f"owner returned {len(states)} parameter states for "
                    f"{len(params)} owned parameters")
            for p, s in zip(params, states):
                by_id[id(p)] = s
        return [by_id[id(p)] for p in self.flat_params]

    # -- teardown ------------------------------------------------------
    def applied_steps(self) -> list[int]:
        """Per-worker applied clock (diagnostics + staleness metrics)."""
        if self._owners is not None:
            return [o.applied for o in self._owners]
        return [int(s) for s in self._clock.array]

    def close(self) -> None:
        """Drain, stop the owners, and restore private parameter arrays.

        Idempotent. After close the model's parameters hold the final
        trained values in ordinary process-private memory, so checkpoint
        save (``state_dict`` → ``ShardSpec.assemble`` on the serving path)
        sees fully-applied tables.
        """
        if self._closed:
            return
        try:
            if self._procs:
                self.drain()
        finally:
            self._closed = True
            if self._owners is not None:
                return
            for w, chan in enumerate(self._channels):
                try:
                    chan.send(frame(encode_stop()), timeout=5.0,
                              alive=self._procs[w].is_alive)
                except TransportError:  # pragma: no cover - dead worker
                    pass
            for proc in self._procs:
                proc.join(timeout=10.0)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
                    proc.join(timeout=5.0)
            # copy the trained tables out of shared memory before the
            # segments are unlinked, repointing parameters at private data
            for params, blocks in zip(self._owned_params, self._param_blocks):
                for p, block in zip(params, blocks):
                    p.data = np.array(block.array)
            for chan in self._channels:
                chan.close()
            for conn in self._state_conns:
                conn.close()
            for block in self._blocks:
                block.close()
            self._clock.close()

    def __enter__(self) -> "DistParameterServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def default_dist_workers() -> int:
    """A sensible owner count for this machine: cores minus the trainer."""
    return max(1, (os.cpu_count() or 2) - 1)

"""Length-prefixed wire format for gradient pushes.

The parameter-server transport moves one *push frame* per optimizer step
from the trainer to each shard-owner process. A frame carries the step
index, the learning rate in force at that step (schedulers mutate lr
between epochs, and bit-parity requires the owner to apply the same rate
the in-process optimizer would have), and one gradient entry per owned
parameter — a :class:`~repro.tensor.RowSparseGrad` (the sampled path), a
dense block (the full-graph path), or ``None`` (parameter not touched
this step; the owner still advances its Adam clock, exactly like the
in-process ``step()``).

Layout (all little-endian, fixed-width — ``struct``, no pickle):

``frame   := u32 body_length ++ body``
``body    := u16 magic, u8 version, u8 kind, i64 step, f64 lr,``
``           u16 count, count * grad``
``grad    := u8 tag (NONE) |``
``           u8 tag, dtype, u8 ndim, ndim*u64 dims, u64 num_rows, u8 flags,``
``               indices_bytes, values_bytes (ROWSPARSE) |``
``           u8 tag, dtype, u8 ndim, ndim*u64 dims, raw_bytes (DENSE)``
``dtype    := u8 length ++ ascii numpy dtype.str (e.g. "<f8")``

Every decoder checks it consumes exactly what the header promised;
anything short, oversized, or mislabeled raises :class:`FrameError` — a
truncated ring read must never turn into a silently wrong gradient.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.tensor.rowsparse import RowSparseGrad

MAGIC = 0x5053  # "PS"
VERSION = 1

KIND_PUSH = 1
KIND_STOP = 2
#: control-plane request: the owner replies with its optimizer state over
#: the dedicated state pipe (mid-run checkpointing pulls the state the
#: owner processes hold)
KIND_STATE = 3

_TAG_NONE = 0
_TAG_ROWSPARSE = 1
_TAG_DENSE = 2

_HEADER = struct.Struct("<HBBqdH")
_LEN = struct.Struct("<I")

#: largest frame the codec will emit or accept (guards against a corrupt
#: length prefix allocating unbounded memory on the receive side)
MAX_FRAME_BYTES = 1 << 31


class FrameError(ValueError):
    """A frame failed to decode: truncated, corrupt, or wrong version."""


def _encode_dtype(dtype: np.dtype) -> bytes:
    token = np.dtype(dtype).str.encode("ascii")
    return struct.pack("<B", len(token)) + token


def _encode_array(array: np.ndarray) -> bytes:
    array = np.ascontiguousarray(array)
    dims = struct.pack(f"<B{array.ndim}Q", array.ndim, *array.shape)
    return _encode_dtype(array.dtype) + dims + array.tobytes()


class _Reader:
    """Bounds-checked cursor over one frame body."""

    def __init__(self, body: bytes):
        self.body = body
        self.pos = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self.pos + n > len(self.body):
            raise FrameError(
                f"truncated frame: wanted {n} bytes at offset {self.pos}, "
                f"body is {len(self.body)} bytes")
        out = self.body[self.pos:self.pos + n]
        self.pos += n
        return out

    def unpack(self, fmt: struct.Struct):
        return fmt.unpack(self.take(fmt.size))

    def dtype(self) -> np.dtype:
        (length,) = struct.unpack("<B", self.take(1))
        try:
            return np.dtype(self.take(length).decode("ascii"))
        except (TypeError, UnicodeDecodeError) as exc:
            raise FrameError(f"bad dtype token in frame: {exc}") from exc

    def array(self) -> np.ndarray:
        dtype = self.dtype()
        (ndim,) = struct.unpack("<B", self.take(1))
        shape = struct.unpack(f"<{ndim}Q", self.take(8 * ndim))
        count = 1
        for dim in shape:
            count *= dim
        raw = self.take(count * dtype.itemsize)
        return np.frombuffer(bytearray(raw), dtype=dtype).reshape(shape)

    def done(self) -> None:
        if self.pos != len(self.body):
            raise FrameError(
                f"frame has {len(self.body) - self.pos} trailing bytes")


def encode_grad(grad) -> bytes:
    """One gradient entry: ``RowSparseGrad``, dense ndarray, or ``None``."""
    if grad is None:
        return struct.pack("<B", _TAG_NONE)
    if isinstance(grad, RowSparseGrad):
        values = np.ascontiguousarray(grad.values)
        dims = struct.pack(f"<B{values.ndim}Q", values.ndim, *values.shape)
        head = (struct.pack("<B", _TAG_ROWSPARSE)
                + _encode_dtype(values.dtype) + dims
                + struct.pack("<QB", grad.num_rows, 1))
        indices = np.ascontiguousarray(grad.indices, dtype=np.int64)
        return head + indices.tobytes() + values.tobytes()
    return struct.pack("<B", _TAG_DENSE) + _encode_array(np.asarray(grad))


def _decode_grad(reader: _Reader):
    (tag,) = struct.unpack("<B", reader.take(1))
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_ROWSPARSE:
        dtype = reader.dtype()
        (ndim,) = struct.unpack("<B", reader.take(1))
        shape = struct.unpack(f"<{ndim}Q", reader.take(8 * ndim))
        num_rows, coalesced = struct.unpack("<QB", reader.take(9))
        nnz = shape[0] if shape else 0
        indices = np.frombuffer(bytearray(reader.take(8 * nnz)),
                                dtype=np.int64)
        count = 1
        for dim in shape:
            count *= dim
        values = np.frombuffer(bytearray(reader.take(count * dtype.itemsize)),
                               dtype=dtype).reshape(shape)
        try:
            return RowSparseGrad(indices, values, num_rows,
                                 coalesced=bool(coalesced))
        except (ValueError, IndexError) as exc:
            raise FrameError(f"inconsistent row-sparse entry: {exc}") from exc
    if tag == _TAG_DENSE:
        return reader.array()
    raise FrameError(f"unknown gradient tag {tag}")


def decode_grad(payload: bytes):
    """Inverse of :func:`encode_grad` over a standalone entry."""
    reader = _Reader(payload)
    grad = _decode_grad(reader)
    reader.done()
    return grad


def encode_push(step: int, lr: float, grads) -> bytes:
    """A PUSH frame body: ``(step, lr)`` plus one entry per parameter."""
    grads = list(grads)
    parts = [_HEADER.pack(MAGIC, VERSION, KIND_PUSH, step, lr, len(grads))]
    parts.extend(encode_grad(g) for g in grads)
    return b"".join(parts)


def encode_stop() -> bytes:
    """A STOP frame body (owner drains, detaches, and exits)."""
    return _HEADER.pack(MAGIC, VERSION, KIND_STOP, 0, 0.0, 0)


def encode_state_request() -> bytes:
    """A STATE frame body (owner sends optimizer state back, keeps going)."""
    return _HEADER.pack(MAGIC, VERSION, KIND_STATE, 0, 0.0, 0)


def decode(body: bytes) -> tuple[int, int, float, list]:
    """Decode one frame body → ``(kind, step, lr, grads)``."""
    reader = _Reader(body)
    magic, version, kind, step, lr, count = reader.unpack(_HEADER)
    if magic != MAGIC:
        raise FrameError(f"bad magic 0x{magic:04x} (expected 0x{MAGIC:04x})")
    if version != VERSION:
        raise FrameError(f"unsupported frame version {version}")
    if kind not in (KIND_PUSH, KIND_STOP, KIND_STATE):
        raise FrameError(f"unknown frame kind {kind}")
    grads = [_decode_grad(reader) for _ in range(count)]
    reader.done()
    return kind, step, lr, grads


def frame(body: bytes) -> bytes:
    """Prefix a frame body with its u32 length (the ring slot format)."""
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame body of {len(body)} bytes exceeds "
                         f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})")
    return _LEN.pack(len(body)) + body


def unframe(data: bytes) -> bytes:
    """Strip and validate the u32 length prefix; the exact inverse of
    :func:`frame` over a complete buffer."""
    if len(data) < _LEN.size:
        raise FrameError(f"short frame: {len(data)} bytes, no length prefix")
    (length,) = _LEN.unpack_from(data)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds MAX_FRAME_BYTES")
    if len(data) != _LEN.size + length:
        raise FrameError(f"frame length prefix says {length} bytes, "
                         f"buffer carries {len(data) - _LEN.size}")
    return data[_LEN.size:]

"""Command-line interface for the reproduction harness.

Examples::

    python -m repro.cli stats                       # Table I
    python -m repro.cli run table2 --dataset yelp   # one Table-II column
    python -m repro.cli run fig2 --dataset movielens
    python -m repro.cli train --dataset taobao --model GNMR --epochs 20
    python -m repro.cli scenarios                   # the scenario registry
    python -m repro.cli train --scenario tmall-like # skew-matched synthetic
    python -m repro.cli ingest log.csv --out d.npz --target buy  # real log
    python -m repro.cli train --scenario d.npz --split temporal
    python -m repro.cli recommend --checkpoint m.npz --topk 10  # JSON top-K
    python -m repro.cli serve --checkpoint m.npz --port 8080    # HTTP tier
    python -m repro.cli report                      # regenerate EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import (
    MODEL_NAMES,
    SMALL_SCALE,
    ExperimentScale,
    dataset_by_name,
    format_table,
    make_model,
    run_fig2,
    run_fig3,
    run_table1,
    run_table2,
    run_table4,
)


#: distinguishes "--fanout not given" from "--fanout 0" (which parses to
#: None = no cap and must still reach TrainConfig). Must not be a string:
#: argparse runs string defaults through the ``type`` callable.
_FANOUT_UNSET = object()


def _fanout_arg(text: str):
    """argparse type for ``--fanout``: '10', '0' (no cap), or '10,5'."""
    from repro.graph.subgraph import parse_fanout

    try:
        return parse_fanout(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _scale_from_args(args) -> ExperimentScale:
    overrides = {}
    if args.users:
        overrides["num_users"] = args.users
    if args.items:
        overrides["num_items"] = args.items
        # keep the candidate set feasible for small catalogs
        overrides["num_negatives"] = min(SMALL_SCALE.num_negatives,
                                         max(1, args.items // 3))
    if getattr(args, "epochs", None):
        overrides["epochs"] = args.epochs
    if not overrides:
        return SMALL_SCALE
    from dataclasses import replace

    return replace(SMALL_SCALE, **overrides)


def cmd_stats(args) -> int:
    rows = run_table1(_scale_from_args(args))
    printable = {name: {k: v for k, v in row.items() if k != "per-behavior"}
                 for name, row in rows.items()}
    print(format_table(printable, title="Table I — dataset statistics"))
    return 0


def cmd_run(args) -> int:
    scale = _scale_from_args(args)
    experiment = args.experiment
    if experiment == "table2":
        results = run_table2(args.dataset, scale)
    elif experiment == "fig2":
        results = run_fig2(args.dataset, scale)
    elif experiment == "table4":
        results = run_table4(args.dataset, scale)
    elif experiment == "fig3":
        results = {f"GNMR-{d}": row for d, row in run_fig3(args.dataset, scale).items()}
    else:
        print(f"unknown experiment {experiment!r}", file=sys.stderr)
        return 2
    print(format_table(results, title=f"{experiment} on {args.dataset}"))
    if args.json:
        print(json.dumps(results, indent=2))
    return 0


def _resolve_train_dataset(args, scale):
    """Dataset + (possibly rescaled) scale for ``train``.

    ``--scenario`` wins over ``--dataset``: a registry name builds the
    skew-matched synthetic shape at the requested (or default) scale, an
    artifact path loads the ingested log as-is. Either way the scale is
    re-anchored to the actual dataset so embedding tables and the
    negative-candidate count fit the data, not the synthetic defaults.
    """
    from dataclasses import replace

    if getattr(args, "scenario", None):
        from repro.data import resolve_scenario

        dataset = resolve_scenario(args.scenario, num_users=args.users,
                                   num_items=args.items, seed=scale.seed)
        scale = replace(scale,
                        num_users=dataset.num_users,
                        num_items=dataset.num_items,
                        num_negatives=min(scale.num_negatives,
                                          max(1, dataset.num_items // 3)))
        return dataset, scale
    return dataset_by_name(args.dataset, scale), scale


def _split_dataset(dataset, protocol: str, test_fraction: float, seed: int):
    """Leave-one-out or temporal split behind one switch."""
    import numpy as np

    from repro.data import leave_one_out_split, temporal_split

    if protocol == "temporal":
        return temporal_split(dataset, test_fraction=test_fraction)
    return leave_one_out_split(dataset, rng=np.random.default_rng(seed))


def cmd_train(args) -> int:
    import numpy as np

    from repro.data import build_eval_candidates
    from repro.eval import evaluate_full_ranking, evaluate_model
    from repro.tensor import default_dtype
    from repro.utils import save_checkpoint

    scale = _scale_from_args(args)
    dataset, scale = _resolve_train_dataset(args, scale)
    split = _split_dataset(dataset, args.split, args.test_fraction, scale.seed)
    candidates = build_eval_candidates(
        split.train, split.test_users, split.test_items,
        num_negatives=scale.num_negatives, rng=np.random.default_rng(scale.seed))
    # --dtype selects the compute precision end-to-end: the ambient default
    # covers baselines built from numpy arrays, the GNMR override covers the
    # engine/adjacency path, and TrainConfig covers the training loop.
    overrides = {"dtype": args.dtype} if args.dtype else None
    with default_dtype(args.dtype):  # None → ambient default
        model = make_model(args.model, split.train, scale,
                           gnmr_overrides=overrides, shards=args.shards,
                           shard_strategy=args.shard_strategy)
    shard_note = f", shards={args.shards}" if args.shards else ""
    print(f"training {args.model} on {dataset.name} "
          f"({model.num_parameters():,} parameters, dtype={args.dtype or 'float64'}, "
          f"propagation={args.propagation}{shard_note})")
    train_overrides = dict({"dtype": args.dtype} if args.dtype else {})
    train_overrides["propagation"] = args.propagation
    if args.fanout is not _FANOUT_UNSET:
        train_overrides["fanout"] = args.fanout
    if args.workers is not None:
        train_overrides["workers"] = args.workers
    if args.shards is not None:
        # per-shard optimizer parameter groups (state stays shard-local)
        train_overrides["shards"] = args.shards
    if args.dist != "off":
        # multi-process parameter server: shard-owner processes apply the
        # optimizer steps, gradients cross the repro.dist transport
        train_overrides["dist"] = args.dist
        if args.dist_workers is not None:
            train_overrides["dist_workers"] = args.dist_workers
        train_overrides["dist_staleness"] = args.dist_staleness
        train_overrides["dist_transport"] = args.dist_transport
    if args.save_state:
        train_overrides["save_state"] = args.save_state
        if args.save_every_steps is not None:
            train_overrides["save_every_steps"] = args.save_every_steps
    model.fit(split.train, scale.train_config(**train_overrides),
              resume_from=args.resume)
    if args.eval == "full":
        outcome = evaluate_full_ranking(model, split.train,
                                        split.test_users, split.test_items)
        print(f"Recall@10={outcome.recall(10):.3f} "
              f"NDCG@10={outcome.ndcg(10):.3f} MRR={outcome.mrr():.3f} "
              f"(full catalog)")
    else:
        outcome = evaluate_model(model, candidates)
        print(f"HR@10={outcome.hr(10):.3f} NDCG@10={outcome.ndcg(10):.3f} "
              f"MRR={outcome.mrr():.3f}")
    if args.checkpoint:
        # scale/dtype ride along so `recommend` can rebuild this exact model
        path = save_checkpoint(model, args.checkpoint,
                               metadata={"model": args.model,
                                         "dataset": dataset.name,
                                         "dataset_arg": args.scenario or args.dataset,
                                         "num_users": scale.num_users,
                                         "num_items": scale.num_items,
                                         "dtype": args.dtype,
                                         "shards": args.shards,
                                         "shard_strategy": args.shard_strategy,
                                         "HR@10": outcome.hr(10)})
        print(f"checkpoint written to {path}")
    return 0


def _rebuild_serving_model(args):
    """Model + split for the serving commands (checkpoint or in-process).

    Checkpoint metadata restores the model class, dataset, scale, dtype
    and shard layout, so a serving process needs no training-side
    configuration; without a checkpoint the model is trained in-process
    at the requested scale. Returns ``(model, split, dataset, name)``.
    """
    from repro.data import leave_one_out_split
    from repro.tensor import default_dtype
    from repro.utils import load_checkpoint, peek_checkpoint

    meta = peek_checkpoint(args.checkpoint) if args.checkpoint else {}
    model_name = args.model or meta.get("model") or "GNMR"
    dataset_name = args.dataset or meta.get("dataset_arg") or "taobao"
    dtype = args.dtype or meta.get("dtype")
    if args.users is None and meta.get("num_users"):
        args.users = int(meta["num_users"])
    if args.items is None and meta.get("num_items"):
        args.items = int(meta["num_items"])
    scale = _scale_from_args(args)
    if dataset_name.endswith(".npz"):
        # checkpoint trained from an ingested artifact: reload the log
        from repro.data import resolve_scenario

        dataset = resolve_scenario(dataset_name)
    else:
        dataset = dataset_by_name(dataset_name, scale)
    split = leave_one_out_split(dataset)

    overrides = dict({"dtype": dtype} if dtype else {})
    if args.checkpoint and model_name == "GNMR":
        # pre-training only shapes the initialization, which the checkpoint
        # overwrites anyway — skip the wasted autoencoder epochs
        overrides["pretrain"] = False
    # a model checkpointed with sharded tables must be rebuilt sharded or
    # the state-dict keys (per-shard blocks) will not line up
    shards = meta.get("shards")
    shards = int(shards) if shards else None
    shard_strategy = meta.get("shard_strategy") or "range"
    with default_dtype(dtype):  # None → ambient default
        model = make_model(model_name, split.train, scale,
                           gnmr_overrides=overrides or None,
                           shards=shards, shard_strategy=shard_strategy)
    if args.checkpoint:
        load_checkpoint(model, args.checkpoint)
    else:
        model.fit(split.train, scale.train_config(
            **({"dtype": dtype} if dtype else {})))
    return model, split, dataset, model_name


def _build_service(args, model, split):
    """The RecommendationService behind ``recommend`` and ``serve``."""
    from repro.serve import RecommendationService

    ann = {"nprobe": args.nprobe, "quant": args.quant,
           "num_lists": args.num_lists, "shortlist_k": args.shortlist_k}
    return RecommendationService(
        model, train=split.train, dtype=args.serve_dtype,
        k_default=args.topk, batch_users=args.batch_users,
        exclude=None if args.include_seen else "target",
        retriever=args.retriever, ann=ann)


def cmd_recommend(args) -> int:
    """Serve top-K recommendations as JSON (stdout stays machine-readable)."""
    import numpy as np

    model, split, dataset, model_name = _rebuild_serving_model(args)
    service = _build_service(args, model, split)
    if args.user_ids:
        users = np.array([int(u) for u in args.user_ids.split(",")], dtype=np.int64)
        bad = users[(users < 0) | (users >= model.num_users)]
        if bad.size:
            print(f"user ids out of range [0, {model.num_users}): "
                  f"{bad.tolist()}", file=sys.stderr)
            return 2
    else:
        users = np.arange(min(8, model.num_users), dtype=np.int64)
    result = service.recommend(users, k=args.topk)
    payload = {
        "model": model_name,
        "dataset": dataset.name,
        "k": int(args.topk),
        "num_users": model.num_users,
        "num_items": model.num_items,
        "backend": "matrix" if service.store is not None else "brute-force",
        "retriever": args.retriever,
        "snapshot_version": service.snapshot_version,
        "exclude_seen": not args.include_seen,
        "recommendations": result.to_payload(),
    }
    if args.retriever == "ivf":
        index = service.retriever.index
        payload["ann"] = {"num_lists": int(index.num_lists),
                          "nprobe": int(service.retriever.nprobe),
                          "quant": index.quant,
                          "shortlist_k": args.shortlist_k}
    print(json.dumps(payload, indent=2))
    return 0


def cmd_serve(args) -> int:
    """Run the long-running HTTP recommendation service (repro.serve.http).

    Prints one JSON readiness line (host, bound port, endpoints) once the
    socket is listening — also written to ``--ready-file`` for process
    supervisors — then blocks until SIGTERM/SIGINT, and shuts the
    batcher, snapshot watcher, and socket down cleanly.
    """
    import signal
    import threading
    from pathlib import Path

    from repro.serve.http import RecommendationHTTPServer

    model, split, dataset, model_name = _rebuild_serving_model(args)
    service = _build_service(args, model, split)
    server = RecommendationHTTPServer(
        service, host=args.host, port=args.port,
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        poll_interval_ms=args.poll_interval_ms)
    server.start()
    ready = {"serving": True, "host": args.host, "port": server.port,
             "model": model_name, "dataset": dataset.name,
             "retriever": args.retriever, "k_default": args.topk,
             "max_batch": args.max_batch, "max_wait_ms": args.max_wait_ms,
             "endpoints": ["/recommend", "/healthz", "/stats"]}
    line = json.dumps(ready)
    print(line, flush=True)
    if args.ready_file:
        Path(args.ready_file).write_text(line + "\n")
    # tests drive cmd_serve from a worker thread, where signal handlers
    # are unavailable — they stop it through an injected args.stop_event
    stop = getattr(args, "stop_event", None) or threading.Event()
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: stop.set())
    try:
        stop.wait()
    finally:
        server.close()
    print(json.dumps({"serving": False}), flush=True)
    return 0


def cmd_reshard(args) -> int:
    from repro.shard.reshard import ReshardError, reshard_file

    output = args.output or args.checkpoint
    try:
        info = reshard_file(args.checkpoint, output, args.shards,
                            strategy=args.strategy,
                            old_strategy=args.old_strategy)
    except ReshardError as exc:
        print(f"reshard failed: {exc}", file=sys.stderr)
        return 1
    tables = ", ".join(f"{base} ({spec['rows']} rows, "
                       f"{spec['old_shards']}->{args.shards} shards)"
                       for base, spec in info["tables"].items())
    print(f"resharded {info['format']} to {args.shards} "
          f"{info['strategy']} shards: {tables}")
    print(f"written to {output}")
    return 0


def cmd_report(args) -> int:
    from repro.experiments.report import OUTPUT, generate

    OUTPUT.write_text(generate())
    print(f"wrote {OUTPUT}")
    return 0


def cmd_scenarios(args) -> int:
    """Print the scenario registry (JSON with --json, table otherwise)."""
    from repro.data import SCENARIOS

    rows = {name: spec.describe() for name, spec in SCENARIOS.items()}
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        print(format_table(rows, title="Scenario registry "
                                        "(repro.data.scenarios)",
                           name_header="scenario"))
    return 0


def cmd_ingest(args) -> int:
    """Stream a CSV event log into a reusable dataset artifact.

    Prints one JSON report (rows read/kept/dropped, entity counts,
    per-behavior inventory, artifact path). Memory stays bounded by
    ``--chunk-rows`` regardless of the log size (see
    :mod:`repro.data.ingest`).
    """
    from pathlib import Path

    from repro.data import IngestOptions, ingest_csv, save_dataset_npz

    behavior_col = None if args.rating_col else args.behavior_col
    options = IngestOptions(
        delimiter=args.delimiter,
        user_col=args.user_col,
        item_col=args.item_col,
        behavior_col=behavior_col,
        rating_col=args.rating_col,
        timestamp_col=args.timestamp_col,
        has_header=not args.no_header,
        on_bad_rows=args.on_bad_rows,
        chunk_rows=args.chunk_rows,
    )
    behaviors = tuple(args.behaviors.split(",")) if args.behaviors else None
    try:
        dataset, report = ingest_csv(
            args.csv, name=args.name or Path(args.csv).stem,
            target_behavior=args.target, behavior_names=behaviors,
            options=options)
    except (ValueError, OSError) as exc:
        print(f"ingest failed: {exc}", file=sys.stderr)
        return 1
    path = save_dataset_npz(dataset, args.out,
                            has_timestamps=report.has_timestamps)
    payload = {"artifact": str(path), "name": dataset.name,
               "target_behavior": dataset.target_behavior,
               "behavior_names": list(dataset.behavior_names),
               **report.as_dict()}
    print(json.dumps(payload, indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="GNMR reproduction harness")
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="print Table-I dataset statistics")
    p_run = sub.add_parser("run", help="run one paper experiment")
    p_run.add_argument("experiment",
                       choices=["table2", "fig2", "table4", "fig3"])
    p_run.add_argument("--dataset", default="taobao",
                       choices=["movielens", "yelp", "taobao"])
    p_run.add_argument("--json", action="store_true",
                       help="also dump results as JSON")
    p_train = sub.add_parser("train", help="train and evaluate one model")
    p_train.add_argument("--model", default="GNMR", choices=list(MODEL_NAMES))
    p_train.add_argument("--dataset", default="taobao",
                         choices=["movielens", "yelp", "taobao"])
    p_train.add_argument("--scenario", default=None,
                         help="scenario-registry name (tmall-like, "
                              "gowalla-like, ... — see `repro.cli "
                              "scenarios`) or a dataset artifact .npz from "
                              "`repro.cli ingest`; overrides --dataset")
    p_train.add_argument("--split", default="loo",
                         choices=["loo", "temporal"],
                         help="evaluation split: leave-one-out (paper "
                              "protocol, default) or split-by-timestamp "
                              "(needs real timestamps; past trains, "
                              "future evaluates)")
    p_train.add_argument("--test-fraction", type=float, default=0.2,
                         help="target-interaction fraction held out by "
                              "--split temporal (timestamp quantile)")
    p_train.add_argument("--checkpoint", default=None,
                         help="write a .npz checkpoint here")
    p_train.add_argument("--dtype", default=None,
                         choices=["float32", "float64"],
                         help="compute precision (float32 = fast path, "
                              "float64 = bit-reproducible default)")
    p_train.add_argument("--eval", default="sampled",
                         choices=["sampled", "full"],
                         help="ranking protocol: sampled 99-negative "
                              "(paper) or full-catalog Recall@K/NDCG@K")
    p_train.add_argument("--propagation", default="full",
                         choices=["full", "sampled", "async"],
                         help="training propagation: full graph every step "
                              "(bit-reproducible), fanout-capped sampled "
                              "subgraphs with row-sparse gradients (step "
                              "cost scales with the batch), or the async "
                              "double-buffered pipeline over per-hop "
                              "layered blocks (fastest)")
    p_train.add_argument("--fanout", type=_fanout_arg, default=_FANOUT_UNSET,
                         help="neighbors sampled per node per behavior per "
                              "hop on the sampled/async paths: one int for "
                              "every hop, or a comma-separated per-hop "
                              "schedule like '10,5' (0 = no cap; "
                              "default 10)")
    p_train.add_argument("--workers", type=int, default=None,
                         help="background block-extraction threads for "
                              "--propagation async (0 = inline; default 1)")
    p_train.add_argument("--shards", type=int, default=None,
                         help="partition the user/item embedding tables "
                              "across K logical shards (parameter-server "
                              "layout; 1 bit-matches unsharded, K matches "
                              "1 under the documented parity contract)")
    p_train.add_argument("--dist", default="off",
                         choices=["off", "sync", "async"],
                         help="multi-process parameter-server training "
                              "(requires --shards): 'sync' bit-matches "
                              "in-process training, 'async' allows bounded "
                              "staleness for throughput")
    p_train.add_argument("--dist-workers", type=int, default=None,
                         help="shard-owner process count for --dist "
                              "(default: one per shard)")
    p_train.add_argument("--dist-staleness", type=int, default=2,
                         help="max steps the trainer may lead the slowest "
                              "shard owner under --dist async (0 = sync)")
    p_train.add_argument("--dist-transport", default="shm",
                         choices=["shm", "pipe", "inline"],
                         help="gradient transport for --dist: shared-memory "
                              "rings (default), pipe fallback, or in-process "
                              "inline mode")
    p_train.add_argument("--shard-strategy", default="range",
                         choices=["range", "hash"],
                         help="row partitioning: contiguous ranges or "
                              "modulo hashing (balances skewed ids)")
    p_train.add_argument("--save-state", default=None,
                         help="write a resumable training state here "
                              "(atomic; end of run, plus mid-run with "
                              "--save-every-steps)")
    p_train.add_argument("--save-every-steps", type=int, default=None,
                         help="also save the training state every N global "
                              "steps (requires --save-state; crash-safe "
                              "resume points)")
    p_train.add_argument("--resume", default=None,
                         help="resume bit-exactly from a training state "
                              "written by --save-state (config must match; "
                              "--epochs may grow)")
    def add_serving_args(p) -> None:
        """Flags shared by ``recommend`` and ``serve`` (one model, one
        service — the commands differ only in how requests arrive)."""
        p.add_argument("--checkpoint", default=None,
                       help="load a trained model from this .npz (its "
                            "metadata restores model/dataset/scale/dtype); "
                            "without it a model is trained in-process")
        p.add_argument("--model", default=None, choices=list(MODEL_NAMES))
        p.add_argument("--dataset", default=None,
                       choices=["movielens", "yelp", "taobao"])
        p.add_argument("--dtype", default=None,
                       choices=["float32", "float64"],
                       help="model compute precision (checkpoint metadata "
                            "wins when present)")
        p.add_argument("--serve-dtype", default="float32",
                       choices=["float32", "float64"],
                       help="embedding snapshot precision for serving")
        p.add_argument("--topk", type=int, default=10,
                       help="recommendations per user")
        p.add_argument("--batch-users", type=int, default=256,
                       help="users scored per retrieval block")
        p.add_argument("--include-seen", action="store_true",
                       help="do not exclude already-interacted items")
        p.add_argument("--retriever", default="exact",
                       choices=["exact", "ivf"],
                       help="exact blocked full-catalog scan (default) or "
                            "approximate IVF retrieval: k-means inverted "
                            "lists + compressed-domain scoring + exact "
                            "re-rank (repro.serve.ann)")
        p.add_argument("--nprobe", type=int, default=8,
                       help="inverted lists probed per query with "
                            "--retriever ivf (the recall dial)")
        p.add_argument("--quant", default="none",
                       choices=["int8", "fp16", "none"],
                       help="compressed-domain scoring precision for "
                            "--retriever ivf (shortlists are always "
                            "re-ranked in full precision)")
        p.add_argument("--num-lists", type=int, default=None,
                       help="inverted lists in the IVF index "
                            "(default: sqrt of the catalog size)")
        p.add_argument("--shortlist-k", type=int, default=None,
                       help="candidates kept for exact re-ranking "
                            "(default: max(4k, 50))")

    p_rec = sub.add_parser(
        "recommend",
        help="serve top-K recommendations as JSON (repro.serve)")
    add_serving_args(p_rec)
    p_rec.add_argument("--user-ids", default=None,
                       help="comma-separated user ids (default: first 8)")
    p_serve = sub.add_parser(
        "serve",
        help="run the long-running HTTP recommendation service "
             "(repro.serve.http; see docs/operations.md)")
    add_serving_args(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default loopback)")
    p_serve.add_argument("--port", type=int, default=8080,
                         help="bind port (0 picks a free port; the "
                              "readiness line reports the actual one)")
    p_serve.add_argument("--max-batch", type=int, default=32,
                         help="requests coalesced into one retrieval call "
                              "(the throughput dial)")
    p_serve.add_argument("--max-wait-ms", type=float, default=2.0,
                         help="max time a request waits for co-riders "
                              "before its batch flushes (the latency dial)")
    p_serve.add_argument("--poll-interval-ms", type=float, default=250.0,
                         help="snapshot freshness check period of the "
                              "hot-swap watcher thread")
    p_serve.add_argument("--ready-file", default=None,
                         help="also write the JSON readiness line here "
                              "(for supervisors / smoke tests)")
    p_reshard = sub.add_parser(
        "reshard",
        help="migrate a checkpoint or training state to a new shard "
             "layout (repro.shard.reshard; exact — rows and their "
             "optimizer state move bit-for-bit)")
    p_reshard.add_argument("--checkpoint", required=True,
                           help=".npz checkpoint or training state to "
                                "migrate")
    p_reshard.add_argument("--output", default=None,
                           help="destination path (default: overwrite the "
                                "input atomically)")
    p_reshard.add_argument("--shards", type=int, required=True,
                           help="target shard count K'")
    p_reshard.add_argument("--strategy", default=None,
                           choices=["range", "hash"],
                           help="target partitioning (default: keep the "
                                "file's recorded strategy)")
    p_reshard.add_argument("--old-strategy", default=None,
                           choices=["range", "hash"],
                           help="partitioning the file was written under "
                                "(default: its recorded strategy)")
    p_scenarios = sub.add_parser(
        "scenarios",
        help="list the scenario registry (repro.data.scenarios)")
    p_scenarios.add_argument("--json", action="store_true",
                             help="machine-readable output")
    p_ingest = sub.add_parser(
        "ingest",
        help="stream a CSV event log into a reusable dataset artifact "
             "(repro.data.ingest; memory bounded by --chunk-rows)")
    p_ingest.add_argument("csv", help="event log to ingest")
    p_ingest.add_argument("--out", required=True,
                          help="artifact path (.npz; deterministic bytes — "
                               "re-ingesting the same log reproduces the "
                               "file exactly)")
    p_ingest.add_argument("--target", required=True,
                          help="target behavior name (e.g. buy, like)")
    p_ingest.add_argument("--name", default=None,
                          help="dataset label (default: the CSV stem)")
    p_ingest.add_argument("--behaviors", default=None,
                          help="comma-separated behavior whitelist; other "
                               "rows are dropped (and counted) BEFORE "
                               "id indexing, so filtered behaviors leave "
                               "no phantom users/items")
    p_ingest.add_argument("--behavior-col", default="behavior",
                          help="column naming each row's behavior")
    p_ingest.add_argument("--rating-col", default=None,
                          help="derive behaviors from this rating column "
                               "via the paper's partition instead of "
                               "--behavior-col")
    p_ingest.add_argument("--timestamp-col", default="timestamp",
                          help="timestamp column (missing values -> 0)")
    p_ingest.add_argument("--user-col", default="user")
    p_ingest.add_argument("--item-col", default="item")
    p_ingest.add_argument("--delimiter", default=",")
    p_ingest.add_argument("--no-header", action="store_true",
                          help="positional columns: user,item,"
                               "behavior-or-rating[,timestamp]")
    p_ingest.add_argument("--chunk-rows", type=int, default=100_000,
                          help="events per streamed chunk — the transient-"
                               "memory bound")
    p_ingest.add_argument("--on-bad-rows", default="raise",
                          choices=["raise", "skip"],
                          help="NaN/garbage ratings or timestamps: fail "
                               "fast (default) or drop and count")
    sub.add_parser("report", help="regenerate EXPERIMENTS.md from results")

    for p in (p_stats, p_run, p_train, p_rec, p_serve):
        p.add_argument("--users", type=int, default=None)
        p.add_argument("--items", type=int, default=None)
        p.add_argument("--epochs", type=int, default=None)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"stats": cmd_stats, "run": cmd_run, "train": cmd_train,
                "recommend": cmd_recommend, "serve": cmd_serve,
                "reshard": cmd_reshard, "report": cmd_report,
                "scenarios": cmd_scenarios, "ingest": cmd_ingest}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

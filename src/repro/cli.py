"""Command-line interface for the reproduction harness.

Examples::

    python -m repro.cli stats                       # Table I
    python -m repro.cli run table2 --dataset yelp   # one Table-II column
    python -m repro.cli run fig2 --dataset movielens
    python -m repro.cli train --dataset taobao --model GNMR --epochs 20
    python -m repro.cli report                      # regenerate EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import (
    MODEL_NAMES,
    SMALL_SCALE,
    ExperimentScale,
    dataset_by_name,
    format_table,
    make_model,
    run_fig2,
    run_fig3,
    run_table1,
    run_table2,
    run_table4,
)


def _scale_from_args(args) -> ExperimentScale:
    overrides = {}
    if args.users:
        overrides["num_users"] = args.users
    if args.items:
        overrides["num_items"] = args.items
        # keep the candidate set feasible for small catalogs
        overrides["num_negatives"] = min(SMALL_SCALE.num_negatives,
                                         max(1, args.items // 3))
    if getattr(args, "epochs", None):
        overrides["epochs"] = args.epochs
    if not overrides:
        return SMALL_SCALE
    from dataclasses import replace

    return replace(SMALL_SCALE, **overrides)


def cmd_stats(args) -> int:
    rows = run_table1(_scale_from_args(args))
    printable = {name: {k: v for k, v in row.items() if k != "per-behavior"}
                 for name, row in rows.items()}
    print(format_table(printable, title="Table I — dataset statistics"))
    return 0


def cmd_run(args) -> int:
    scale = _scale_from_args(args)
    experiment = args.experiment
    if experiment == "table2":
        results = run_table2(args.dataset, scale)
    elif experiment == "fig2":
        results = run_fig2(args.dataset, scale)
    elif experiment == "table4":
        results = run_table4(args.dataset, scale)
    elif experiment == "fig3":
        results = {f"GNMR-{d}": row for d, row in run_fig3(args.dataset, scale).items()}
    else:
        print(f"unknown experiment {experiment!r}", file=sys.stderr)
        return 2
    print(format_table(results, title=f"{experiment} on {args.dataset}"))
    if args.json:
        print(json.dumps(results, indent=2))
    return 0


def cmd_train(args) -> int:
    import numpy as np

    from repro.data import build_eval_candidates, leave_one_out_split
    from repro.eval import evaluate_model
    from repro.tensor import default_dtype
    from repro.utils import save_checkpoint

    scale = _scale_from_args(args)
    dataset = dataset_by_name(args.dataset, scale)
    split = leave_one_out_split(dataset)
    candidates = build_eval_candidates(
        split.train, split.test_users, split.test_items,
        num_negatives=scale.num_negatives, rng=np.random.default_rng(scale.seed))
    # --dtype selects the compute precision end-to-end: the ambient default
    # covers baselines built from numpy arrays, the GNMR override covers the
    # engine/adjacency path, and TrainConfig covers the training loop.
    overrides = {"dtype": args.dtype} if args.dtype else None
    with default_dtype(args.dtype):  # None → ambient default
        model = make_model(args.model, split.train, scale, gnmr_overrides=overrides)
    print(f"training {args.model} on {dataset.name} "
          f"({model.num_parameters():,} parameters, dtype={args.dtype or 'float64'})")
    model.fit(split.train, scale.train_config(
        **({"dtype": args.dtype} if args.dtype else {})))
    outcome = evaluate_model(model, candidates)
    print(f"HR@10={outcome.hr(10):.3f} NDCG@10={outcome.ndcg(10):.3f} "
          f"MRR={outcome.mrr():.3f}")
    if args.checkpoint:
        path = save_checkpoint(model, args.checkpoint,
                               metadata={"model": args.model,
                                         "dataset": dataset.name,
                                         "HR@10": outcome.hr(10)})
        print(f"checkpoint written to {path}")
    return 0


def cmd_report(args) -> int:
    from repro.experiments.report import OUTPUT, generate

    OUTPUT.write_text(generate())
    print(f"wrote {OUTPUT}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="GNMR reproduction harness")
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="print Table-I dataset statistics")
    p_run = sub.add_parser("run", help="run one paper experiment")
    p_run.add_argument("experiment",
                       choices=["table2", "fig2", "table4", "fig3"])
    p_run.add_argument("--dataset", default="taobao",
                       choices=["movielens", "yelp", "taobao"])
    p_run.add_argument("--json", action="store_true",
                       help="also dump results as JSON")
    p_train = sub.add_parser("train", help="train and evaluate one model")
    p_train.add_argument("--model", default="GNMR", choices=list(MODEL_NAMES))
    p_train.add_argument("--dataset", default="taobao",
                         choices=["movielens", "yelp", "taobao"])
    p_train.add_argument("--checkpoint", default=None,
                         help="write a .npz checkpoint here")
    p_train.add_argument("--dtype", default=None,
                         choices=["float32", "float64"],
                         help="compute precision (float32 = fast path, "
                              "float64 = bit-reproducible default)")
    sub.add_parser("report", help="regenerate EXPERIMENTS.md from results")

    for p in (p_stats, p_run, p_train):
        p.add_argument("--users", type=int, default=None)
        p.add_argument("--items", type=int, default=None)
        p.add_argument("--epochs", type=int, default=None)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"stats": cmd_stats, "run": cmd_run,
                "train": cmd_train, "report": cmd_report}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

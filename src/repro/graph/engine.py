"""The shared propagation engine behind every graph recommender.

Full-graph message passing — ``A_k @ H`` per behavior ``k`` per layer — is
the dominant cost of GNMR (paper §III) and of graph baselines like NGCF.
This module centralizes the three concerns that used to be duplicated
across ``core/gnmr.py``, ``models/ngcf.py`` and the introspection helpers:

* **Adjacency building & normalization.** The engine owns the per-behavior
  user-side (users × items) and item-side (items × users) adjacency stacks,
  degree-normalized as requested, materialized once in the engine's compute
  dtype (float32 for the fast path) with backward transposes precomputed.

* **Fused multi-behavior SpMM.** The K per-behavior products ``A_k @ H``
  collapse into a single stacked-CSR product: the K adjacencies are
  vstacked into one ``(K·N) × M`` CSR matrix, one SpMM computes all
  behaviors, and the result is reshaped to ``(N, K, d)``. One scipy call
  and one autograd node replace K calls plus a stack copy.

* **Version-keyed propagation cache.** Inference paths (``score``,
  ``batch_scores`` at eval, the introspection helpers) repeatedly need the
  same forward propagation. The engine memoizes arbitrary propagation
  products under a version counter; ``invalidate()`` (called from the
  models' ``on_step_end``) bumps the version and drops stale entries.

Single-graph models use the ``bipartite`` / ``from_adjacency`` constructors:
the same engine then exposes ``propagate`` over one square (users+items)²
Laplacian, so NGCF shares the dtype handling and cache machinery.
"""

from __future__ import annotations

from typing import Callable, TypeVar

import numpy as np
import scipy.sparse as sp

from repro.graph.interaction_graph import MultiBehaviorGraph
from repro.graph.layered import (
    LayeredBlock,
    LayeredNodeBlocks,
    sample_layered_bipartite,
    sample_layered_square,
)
from repro.graph.subgraph import (
    SingleSubgraph,
    SubgraphBlock,
    sample_bipartite_block,
    sample_square_block,
)
from repro.tensor.sparse import SparseAdjacency
from repro.tensor.tensor import Tensor, resolve_dtype

T = TypeVar("T")


def bipartite_laplacian(r: sp.spmatrix, dtype=None) -> SparseAdjacency:
    """Sym-normalized (users+items)² adjacency with self-loops (NGCF's L̂+I).

    ``r`` is the users × items interaction matrix; the result is the square
    block matrix ``[[I, R], [Rᵀ, I]]`` normalized by D⁻½ · D⁻½.
    """
    r = r.tocsr()
    num_users, num_items = r.shape
    upper = sp.hstack([sp.csr_matrix((num_users, num_users)), r])
    lower = sp.hstack([r.T, sp.csr_matrix((num_items, num_items))])
    adjacency = sp.vstack([upper, lower]).tocsr()
    adjacency = adjacency + sp.eye(num_users + num_items, format="csr")
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    inv_sqrt = np.divide(1.0, np.sqrt(degrees), out=np.zeros_like(degrees),
                         where=degrees > 0)
    normalized = sp.diags(inv_sqrt) @ adjacency @ sp.diags(inv_sqrt)
    return SparseAdjacency(normalized, dtype=dtype, precompute_transpose=True)


def _stack_adjacencies(adjacencies: list[SparseAdjacency], dtype) -> SparseAdjacency:
    """Vstack K adjacencies into one (K·N) × M CSR for the fused SpMM."""
    stacked = sp.vstack([a.matrix for a in adjacencies], format="csr")
    return SparseAdjacency(stacked, dtype=dtype, precompute_transpose=True)


class PropagationEngine:
    """Owns adjacency structure, fused SpMM, and the propagation cache.

    Build with the main constructor for multi-behavior models (GNMR) or
    with :meth:`bipartite` / :meth:`from_adjacency` for single-graph models
    (NGCF). The two modes expose different propagation methods:

    * multi-behavior — :meth:`propagate_user` / :meth:`propagate_item`
      return the per-behavior message stack ``(N, K, d)``;
    * single-graph — :meth:`propagate` returns ``A @ H`` of shape ``(N, d)``.

    Parameters
    ----------
    graph:
        The :class:`~repro.graph.MultiBehaviorGraph` to propagate over.
    behaviors:
        Behavior subset participating in message passing (``None`` → all).
    normalization:
        ``"row"`` (mean aggregation), ``"sym"`` (GCN), or ``None`` (raw sums).
    dtype:
        Compute dtype of the adjacency values; ``None`` → the module default
        (:func:`repro.tensor.get_default_dtype`).

    >>> import numpy as np
    >>> from repro.data import taobao_like
    >>> graph = taobao_like(num_users=20, num_items=30, seed=0).graph()
    >>> engine = PropagationEngine(graph, normalization="row")
    >>> h_item = np.ones((30, 4))
    >>> engine.propagate_user(h_item).shape     # (users, K behaviors, d)
    (20, 4, 4)
    >>> engine.version
    0
    >>> engine.invalidate(); engine.version     # after a training step
    1
    """

    def __init__(self, graph: MultiBehaviorGraph,
                 behaviors: tuple[str, ...] | list[str] | None = None,
                 normalization: str | None = "row",
                 dtype=None):
        self.dtype = resolve_dtype(dtype)
        if behaviors is None:
            behaviors = graph.behavior_names
        else:
            unknown = set(behaviors) - set(graph.behavior_names)
            if unknown:
                raise ValueError(f"behaviors not in graph: {sorted(unknown)}")
        self.behaviors: tuple[str, ...] = tuple(behaviors)
        self.normalization = normalization
        self.num_users = graph.num_users
        self.num_items = graph.num_items

        user_adjacencies: list[SparseAdjacency] = []
        item_adjacencies: list[SparseAdjacency] = []
        for behavior in self.behaviors:
            raw = graph.adjacency(behavior)
            user_adj = raw
            item_adj = SparseAdjacency(raw._transposed(), dtype=raw.dtype)
            if normalization is not None:
                user_adj = user_adj.normalized(normalization)
                item_adj = item_adj.normalized(normalization)
            user_adjacencies.append(user_adj.astype(self.dtype))
            item_adjacencies.append(item_adj.astype(self.dtype))
        # Only the fused stacks are retained — the per-behavior lists are
        # discarded after vstacking and re-materialized on demand as row
        # slices (see user_adjacencies), so the engine holds one copy of
        # each side's adjacency values, not two.
        self._user_stack = _stack_adjacencies(user_adjacencies, self.dtype)
        self._item_stack = _stack_adjacencies(item_adjacencies, self.dtype)
        self._user_slices: list[SparseAdjacency] | None = None
        self._item_slices: list[SparseAdjacency] | None = None
        self._single: SparseAdjacency | None = None
        self._version = 0
        self._cache: dict[object, tuple[int, object]] = {}

    # ------------------------------------------------------------------
    # alternate constructors (single-graph mode)
    # ------------------------------------------------------------------
    @classmethod
    def from_adjacency(cls, adjacency: SparseAdjacency, dtype=None) -> "PropagationEngine":
        """Single-graph engine around one square propagation matrix."""
        engine = cls.__new__(cls)
        engine.dtype = resolve_dtype(dtype)
        engine.behaviors = ()
        engine.normalization = None
        engine.num_users = engine.num_items = adjacency.shape[0]
        engine._user_slices = []
        engine._item_slices = []
        engine._user_stack = engine._item_stack = None
        single = adjacency.astype(engine.dtype)
        single._transposed()  # training backward needs Aᵀ — build it now
        engine._single = single
        engine._version = 0
        engine._cache = {}
        return engine

    @classmethod
    def bipartite(cls, graph: MultiBehaviorGraph, behavior: str | None = None,
                  dtype=None) -> "PropagationEngine":
        """Engine over NGCF's normalized (users+items)² bipartite Laplacian.

        ``behavior=None`` collapses all behavior types into the merged
        (type-blind) interaction matrix; naming a behavior restricts the
        graph to that type's edges.
        """
        if behavior is None:
            r = graph.merged_adjacency().matrix
        else:
            r = graph.adjacency(behavior).matrix
        return cls.from_adjacency(bipartite_laplacian(r, dtype=dtype), dtype=dtype)

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------
    @property
    def num_behaviors(self) -> int:
        return len(self.behaviors)

    def _sliced(self, stack: SparseAdjacency, num_targets: int) -> list[SparseAdjacency]:
        """Re-materialize per-behavior adjacencies from a fused stack.

        Behavior ``k`` occupies rows ``[k·N, (k+1)·N)``; a CSR row slice is
        cheap and only paid when these views are actually requested
        (introspection, tests) — propagation never needs them.
        """
        return [
            SparseAdjacency(stack.matrix[k * num_targets:(k + 1) * num_targets],
                            dtype=self.dtype)
            for k in range(self.num_behaviors)
        ]

    @property
    def user_adjacencies(self) -> list[SparseAdjacency]:
        """Per-behavior users × items adjacencies (normalized, engine dtype)."""
        if self._user_slices is None:
            self._user_slices = self._sliced(self._user_stack, self.num_users)
        return self._user_slices

    @property
    def item_adjacencies(self) -> list[SparseAdjacency]:
        """Per-behavior items × users adjacencies (normalized, engine dtype)."""
        if self._item_slices is None:
            self._item_slices = self._sliced(self._item_stack, self.num_items)
        return self._item_slices

    @property
    def adjacency(self) -> SparseAdjacency:
        """The square propagation matrix of a single-graph engine."""
        if self._single is None:
            raise RuntimeError("multi-behavior engine has no single adjacency; "
                               "use propagate_user/propagate_item")
        return self._single

    def _fused(self, stack: SparseAdjacency, num_targets: int, source: Tensor) -> Tensor:
        """One stacked SpMM → per-behavior message stack ``(N, K, d)``."""
        source = source if isinstance(source, Tensor) else Tensor(source)
        out = stack.matmul(source)                                   # (K·N, d)
        k = self.num_behaviors
        return out.reshape(k, num_targets, source.shape[-1]).transpose(1, 0, 2)

    def propagate_user(self, h_item: Tensor) -> Tensor:
        """Aggregate item embeddings to users: ``(num_users, K, d)``."""
        if self._user_stack is None:
            raise RuntimeError("single-graph engine: use propagate()")
        return self._fused(self._user_stack, self.num_users, h_item)

    def propagate_item(self, h_user: Tensor) -> Tensor:
        """Aggregate user embeddings to items: ``(num_items, K, d)``."""
        if self._item_stack is None:
            raise RuntimeError("single-graph engine: use propagate()")
        return self._fused(self._item_stack, self.num_items, h_user)

    def propagate(self, h: Tensor) -> Tensor:
        """Single-graph propagation ``A @ H`` of shape ``(N, d)``."""
        return self.adjacency.matmul(h)

    # ------------------------------------------------------------------
    # sampled-subgraph extraction (mini-batch training)
    # ------------------------------------------------------------------
    def subgraph(self, seed_users: np.ndarray, seed_items: np.ndarray,
                 hops: int = 1, fanout=10,
                 rng: np.random.Generator | None = None) -> SubgraphBlock:
        """Fanout-capped L-hop sampled block around batch seeds.

        Expands the seed users/items through every behavior's adjacency for
        ``hops`` rounds, sampling at most ``fanout`` neighbors per (node,
        behavior) (``None`` → no cap; a ``[10, 5]`` sequence schedules the
        cap per hop — see :func:`~repro.graph.subgraph.resolve_fanout`),
        then extracts the induced stacked-CSR sub-adjacencies with old↔new
        index maps. Row-normalized engines re-normalize the sampled rows so
        messages stay means over the included neighborhood.

        The returned :class:`~repro.graph.subgraph.SubgraphBlock` exposes
        ``propagate_user`` / ``propagate_item`` with the same ``(n, K, d)``
        contract as the full-graph engine — models run their usual layer
        stack on top, just at subgraph scale.
        """
        if self._user_stack is None:
            raise RuntimeError("single-graph engine: use subgraph_nodes()")
        rng = rng or np.random.default_rng()
        return sample_bipartite_block(
            [a.matrix for a in self.user_adjacencies],
            [a.matrix for a in self.item_adjacencies],
            seed_users, seed_items, hops, fanout, rng,
            dtype=self.dtype,
            renormalize=self.normalization == "row",
        )

    def subgraph_nodes(self, seed_nodes: np.ndarray, hops: int = 1,
                       fanout=10,
                       rng: np.random.Generator | None = None) -> SingleSubgraph:
        """Sampled square block of a single-graph engine (NGCF mode).

        ``seed_nodes`` live in the engine's joint index space (users then
        items for a bipartite Laplacian). ``fanout`` accepts a scalar or a
        per-hop schedule. Edge values keep their original normalization;
        self-loops survive slicing, so every sampled node retains its
        identity message.
        """
        if self._single is None:
            raise RuntimeError("multi-behavior engine: use subgraph()")
        rng = rng or np.random.default_rng()
        return sample_square_block(self._single.matrix, seed_nodes,
                                   hops, fanout, rng, dtype=self.dtype)

    def layered_subgraph(self, seed_users: np.ndarray,
                         seed_items: np.ndarray, hops: int = 1, fanout=10,
                         rng: np.random.Generator | None = None) -> LayeredBlock:
        """Per-hop shrinking blocks for the async training pipeline.

        Where :meth:`subgraph` returns one monolithic block that every
        layer propagates over in full, this returns a
        :class:`~repro.graph.layered.LayeredBlock`: one bipartite slice per
        hop, each aggregating only the rows the next layer actually needs,
        down to the seeds at the top. Same sampling semantics (induced
        slices, row re-normalization, per-hop ``fanout`` schedules); at
        ``fanout=None`` the seed outputs are bit-exact full-graph values.
        """
        if self._user_stack is None:
            raise RuntimeError("single-graph engine: use layered_subgraph_nodes()")
        rng = rng or np.random.default_rng()
        return sample_layered_bipartite(
            [a.matrix for a in self.user_adjacencies],
            [a.matrix for a in self.item_adjacencies],
            seed_users, seed_items, hops, fanout, rng,
            dtype=self.dtype,
            renormalize=self.normalization == "row",
        )

    def layered_subgraph_nodes(self, seed_nodes: np.ndarray, hops: int = 1,
                               fanout=10,
                               rng: np.random.Generator | None = None,
                               ) -> LayeredNodeBlocks:
        """Layered counterpart of :meth:`subgraph_nodes` (single-graph)."""
        if self._single is None:
            raise RuntimeError("multi-behavior engine: use layered_subgraph()")
        rng = rng or np.random.default_rng()
        return sample_layered_square(self._single.matrix, seed_nodes,
                                     hops, fanout, rng, dtype=self.dtype)

    # ------------------------------------------------------------------
    # version-keyed propagation cache
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic counter; bumped whenever cached results become stale."""
        return self._version

    def invalidate(self) -> None:
        """Parameters changed — drop every cached propagation product."""
        self._version += 1
        self._cache.clear()

    def cached(self, key, compute: Callable[[], T]) -> T:
        """Return the memoized value of ``compute`` for the current version.

        ``key`` names the product (e.g. ``"layers"``); the entry is reused
        until :meth:`invalidate` is called.
        """
        entry = self._cache.get(key)
        if entry is not None and entry[0] == self._version:
            return entry[1]  # type: ignore[return-value]
        value = compute()
        self._cache[key] = (self._version, value)
        return value

"""Sampled sub-adjacency blocks for mini-batch graph training.

GNMR's Algorithm 1 trains on mini-batches of seed users, yet full-graph
propagation pays ``A @ H`` over every node each step. This module holds the
PinSage/GraphSAGE-style alternative applied to our stacked-CSR substrate:
fanout-capped L-hop neighbor sampling around the batch seeds, followed by
extraction of the induced sub-adjacency blocks with old↔new index maps.
Per-step propagation cost then scales with ``batch × fanout^L`` instead of
the graph size.

Two block types mirror the two :class:`~repro.graph.engine.PropagationEngine`
modes:

* :class:`SubgraphBlock` — multi-behavior (GNMR): per-behavior user-side and
  item-side sub-adjacencies, vstacked into the same fused ``(K·u) × i``
  stacked-CSR layout the engine uses, so the sampled forward is the same
  one-SpMM-per-side code path at subgraph scale.
* :class:`SingleSubgraph` — single-graph (NGCF): one square block over the
  sampled joint (users+items) node set.

Row-normalized ("mean") adjacencies are re-normalized over the *sampled*
neighborhood, so each message is the mean of the neighbors actually
included — the unbiased-as-fanout-grows estimator — and a fanout covering
every neighbor reproduces the full-graph messages for interior nodes
exactly. Other normalizations keep their original edge values (a subset
sum; NGCF's self-loops keep the identity component intact).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.tensor.sparse import SparseAdjacency
from repro.tensor.tensor import Tensor


def _check_fanout_entry(value, position: str) -> None:
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(f"fanout {position} must be an int or None, "
                         f"got {value!r}")
    if value < 1:
        raise ValueError(f"fanout {position} must be >= 1 (or None for no "
                         f"cap), got {value}")


def validate_fanout(fanout) -> None:
    """Validate a fanout spec without knowing the hop count.

    Accepts a scalar (``int`` ≥ 1), ``None`` (no cap), or a sequence of
    those (a per-hop schedule). Raises ``ValueError`` for anything else —
    including an empty schedule, which would silently sample nothing.
    """
    if isinstance(fanout, (list, tuple)):
        if len(fanout) == 0:
            raise ValueError("fanout schedule must not be empty")
        for i, entry in enumerate(fanout):
            _check_fanout_entry(entry, f"schedule entry {i}")
        return
    _check_fanout_entry(fanout, "value")


def resolve_fanout(fanout, hops: int) -> list[int | None]:
    """Normalize a fanout spec into a per-hop schedule of length ``hops``.

    A scalar (or ``None``) broadcasts to every hop; a sequence must match
    ``hops`` exactly — a silent truncation or cycle would make ``fanout=[10,
    5]`` mean different things at different model depths.

    >>> resolve_fanout(10, 2)
    [10, 10]
    >>> resolve_fanout(None, 3)
    [None, None, None]
    >>> resolve_fanout([10, 5], 2)
    [10, 5]
    >>> resolve_fanout([10, 5], 3)
    Traceback (most recent call last):
        ...
    ValueError: fanout schedule has 2 entries but the expansion runs 3 hops
    """
    validate_fanout(fanout)
    if isinstance(fanout, (list, tuple)):
        if len(fanout) != hops:
            raise ValueError(f"fanout schedule has {len(fanout)} entries but "
                             f"the expansion runs {hops} hops")
        return [None if f is None else int(f) for f in fanout]
    return [fanout] * hops


def parse_fanout(text: str) -> int | None | tuple[int | None, ...]:
    """Parse the CLI ``--fanout`` string into a fanout spec.

    ``"10"`` → 10, ``"0"`` → None (no cap), ``"10,5"`` → ``(10, 5)`` with
    per-hop semantics (``0`` entries mean "no cap on that hop").

    >>> parse_fanout("10"), parse_fanout("0"), parse_fanout("10,5")
    (10, None, (10, 5))
    >>> parse_fanout("10,0,5")
    (10, None, 5)
    """
    parts = [p.strip() for p in text.split(",")]
    if any(not p for p in parts):
        raise ValueError(f"invalid --fanout value {text!r}: empty entry")
    try:
        values = [int(p) for p in parts]
    except ValueError:
        raise ValueError(f"invalid --fanout value {text!r}: entries must be "
                         "integers") from None
    if any(v < 0 for v in values):
        raise ValueError(f"invalid --fanout value {text!r}: entries must be "
                         ">= 0 (0 means no cap)")
    resolved = [None if v == 0 else v for v in values]
    if len(resolved) == 1:
        return resolved[0]
    return tuple(resolved)


def sample_neighbors(matrix: sp.csr_matrix, nodes: np.ndarray,
                     fanout: int | None,
                     rng: np.random.Generator) -> np.ndarray:
    """Up-to-``fanout`` neighbors of each node from one CSR adjacency.

    Returns the (non-unique) concatenation of the sampled neighbor ids;
    ``fanout=None`` keeps every neighbor. Sampling is per node — a hub's
    neighborhood is capped, a sparse node keeps everything it has — and
    fully vectorized: every candidate edge gets a random key and a stable
    ``lexsort`` ranks edges within their row, so selecting ``rank < fanout``
    draws without replacement across all rows in one pass (no per-node
    Python loop on the training hot path).
    """
    if fanout is not None and fanout < 1:
        raise ValueError("fanout must be >= 1 (or None for no cap)")
    indptr, indices = matrix.indptr, matrix.indices
    starts = indptr[nodes]
    lengths = indptr[nodes + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    # global CSR position of each candidate edge, frontier-row by row
    pos = np.repeat(starts - offsets[:-1], lengths) + np.arange(total)
    candidates = indices[pos]
    if fanout is None or int(lengths.max()) <= fanout:
        return candidates
    row_of_edge = np.repeat(np.arange(nodes.size), lengths)
    keys = rng.random(total)
    order = np.lexsort((keys, row_of_edge))  # stable: rows stay contiguous
    rank = np.arange(total) - np.repeat(offsets[:-1], lengths)
    return candidates[order][rank < fanout]


def _expand(matrices: list[sp.csr_matrix], frontier: np.ndarray,
            fanout: int | None, rng: np.random.Generator) -> np.ndarray:
    """Unique sampled neighbors of a frontier across K adjacencies."""
    if frontier.size == 0:
        return np.empty(0, dtype=np.int64)
    gathered = [sample_neighbors(m, frontier, fanout, rng) for m in matrices]
    merged = np.concatenate(gathered) if gathered else np.empty(0, dtype=np.int64)
    return np.unique(merged.astype(np.int64, copy=False))


def _renormalize_rows(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Rescale each row to sum 1 (mean over the sampled neighborhood)."""
    sums = np.asarray(matrix.sum(axis=1)).ravel()
    inv = np.divide(1.0, sums, out=np.zeros_like(sums), where=sums > 0)
    return (sp.diags(inv.astype(matrix.dtype)) @ matrix).tocsr()


def _slice_block(matrix: sp.csr_matrix, rows: np.ndarray,
                 cols: np.ndarray, renormalize: bool) -> sp.csr_matrix:
    """Induced sub-adjacency ``matrix[rows][:, cols]`` as CSR."""
    block = matrix[rows][:, cols].tocsr()
    if renormalize:
        block = _renormalize_rows(block)
    return block


class _IndexMap:
    """Old→new index lookup over a sorted unique node array."""

    __slots__ = ("nodes",)

    def __init__(self, nodes: np.ndarray):
        self.nodes = nodes  # sorted unique int64

    def __len__(self) -> int:
        return int(self.nodes.size)

    def localize(self, ids: np.ndarray, kind: str) -> np.ndarray:
        """Map global ids to positions in the block (raises if absent)."""
        ids = np.asarray(ids, dtype=np.int64)
        pos = np.searchsorted(self.nodes, ids)
        ok = (pos < self.nodes.size) & (self.nodes[np.minimum(pos, self.nodes.size - 1)] == ids)
        if not np.all(ok):
            missing = np.unique(ids[~ok])[:5]
            raise KeyError(f"{kind} ids not in subgraph: {missing.tolist()}")
        return pos


class SubgraphBlock:
    """A sampled multi-behavior block: stacked sub-CSR + index maps.

    ``users`` / ``items`` are the sorted global ids included in the block;
    positions in those arrays are the block-local indices. The user/item
    stacks use the engine's fused layout — behavior ``k`` occupies rows
    ``[k·u, (k+1)·u)`` of the ``(K·u) × i`` user stack — so
    :meth:`propagate_user` / :meth:`propagate_item` are drop-in sampled
    versions of the engine methods.

    >>> import numpy as np
    >>> from repro.data import taobao_like
    >>> from repro.graph import PropagationEngine
    >>> graph = taobao_like(num_users=20, num_items=30, seed=0).graph()
    >>> engine = PropagationEngine(graph, normalization="row")
    >>> block = engine.subgraph(np.array([0, 1]), np.array([2, 3]),
    ...                         hops=1, fanout=None)
    >>> block.num_behaviors
    4
    >>> bool(np.isin([0, 1], block.users).all())   # seeds always included
    True
    >>> block.localize_users(np.array([0, 1])).tolist()
    [0, 1]
    >>> h_item = np.ones((block.num_items, 8))
    >>> block.propagate_user(h_item).shape == (block.num_users, 4, 8)
    True
    """

    def __init__(self, users: np.ndarray, items: np.ndarray,
                 user_stack: SparseAdjacency, item_stack: SparseAdjacency,
                 num_behaviors: int):
        self._user_map = _IndexMap(users)
        self._item_map = _IndexMap(items)
        self.user_stack = user_stack
        self.item_stack = item_stack
        self.num_behaviors = int(num_behaviors)

    # ------------------------------------------------------------------
    @property
    def users(self) -> np.ndarray:
        """Global user ids in the block (sorted; position = local index)."""
        return self._user_map.nodes

    @property
    def items(self) -> np.ndarray:
        return self._item_map.nodes

    @property
    def num_users(self) -> int:
        return len(self._user_map)

    @property
    def num_items(self) -> int:
        return len(self._item_map)

    def localize_users(self, ids: np.ndarray) -> np.ndarray:
        return self._user_map.localize(ids, "user")

    def localize_items(self, ids: np.ndarray) -> np.ndarray:
        return self._item_map.localize(ids, "item")

    # ------------------------------------------------------------------
    def _fused(self, stack: SparseAdjacency, num_targets: int,
               source: Tensor) -> Tensor:
        out = stack.matmul(source)                         # (K·n, d)
        return out.reshape(self.num_behaviors, num_targets,
                           source.shape[-1]).transpose(1, 0, 2)

    def propagate_user(self, h_item: Tensor) -> Tensor:
        """Aggregate block item embeddings to block users: ``(u, K, d)``."""
        return self._fused(self.user_stack, self.num_users, h_item)

    def propagate_item(self, h_user: Tensor) -> Tensor:
        """Aggregate block user embeddings to block items: ``(i, K, d)``."""
        return self._fused(self.item_stack, self.num_items, h_user)


class SingleSubgraph:
    """A sampled square block of a single-graph engine (NGCF mode)."""

    def __init__(self, nodes: np.ndarray, adjacency: SparseAdjacency):
        self._map = _IndexMap(nodes)
        self.adjacency = adjacency

    @property
    def nodes(self) -> np.ndarray:
        return self._map.nodes

    @property
    def num_nodes(self) -> int:
        return len(self._map)

    def localize(self, ids: np.ndarray) -> np.ndarray:
        return self._map.localize(ids, "node")

    def propagate(self, h: Tensor) -> Tensor:
        """Sampled single-graph propagation ``A_sub @ H``."""
        return self.adjacency.matmul(h)


def sample_bipartite_block(user_matrices: list[sp.csr_matrix],
                           item_matrices: list[sp.csr_matrix],
                           seed_users: np.ndarray, seed_items: np.ndarray,
                           hops: int, fanout,
                           rng: np.random.Generator,
                           dtype,
                           renormalize: bool) -> SubgraphBlock:
    """L-hop fanout-capped expansion + induced block extraction.

    Each hop expands the user frontier to sampled item neighbors (through
    every behavior's user-side adjacency) and the item frontier to sampled
    user neighbors, PinSage-style; the final node sets induce the
    sub-adjacency blocks. ``fanout`` may be a scalar cap or a per-hop
    schedule (see :func:`resolve_fanout`); ``schedule[0]`` governs the
    first expansion away from the seeds.
    """
    schedule = resolve_fanout(fanout, hops)
    users = np.unique(np.asarray(seed_users, dtype=np.int64))
    items = np.unique(np.asarray(seed_items, dtype=np.int64))
    frontier_u, frontier_i = users, items
    for hop_fanout in schedule:
        new_items = _expand(user_matrices, frontier_u, hop_fanout, rng)
        new_users = _expand(item_matrices, frontier_i, hop_fanout, rng)
        frontier_i = np.setdiff1d(new_items, items, assume_unique=True)
        frontier_u = np.setdiff1d(new_users, users, assume_unique=True)
        if frontier_u.size == 0 and frontier_i.size == 0:
            break
        users = np.union1d(users, frontier_u)
        items = np.union1d(items, frontier_i)

    user_blocks = [_slice_block(m, users, items, renormalize)
                   for m in user_matrices]
    item_blocks = [_slice_block(m, items, users, renormalize)
                   for m in item_matrices]
    user_stack = SparseAdjacency(sp.vstack(user_blocks, format="csr"),
                                 dtype=dtype, precompute_transpose=True)
    item_stack = SparseAdjacency(sp.vstack(item_blocks, format="csr"),
                                 dtype=dtype, precompute_transpose=True)
    return SubgraphBlock(users, items, user_stack, item_stack,
                         num_behaviors=len(user_matrices))


def sample_square_block(matrix: sp.csr_matrix, seed_nodes: np.ndarray,
                        hops: int, fanout,
                        rng: np.random.Generator,
                        dtype) -> SingleSubgraph:
    """L-hop expansion over one square adjacency (users+items joint space).

    ``fanout`` accepts the same scalar-or-schedule forms as
    :func:`sample_bipartite_block`.
    """
    schedule = resolve_fanout(fanout, hops)
    nodes = np.unique(np.asarray(seed_nodes, dtype=np.int64))
    frontier = nodes
    for hop_fanout in schedule:
        neighbors = _expand([matrix], frontier, hop_fanout, rng)
        frontier = np.setdiff1d(neighbors, nodes, assume_unique=True)
        if frontier.size == 0:
            break
        nodes = np.union1d(nodes, frontier)
    block = _slice_block(matrix, nodes, nodes, renormalize=False)
    return SingleSubgraph(nodes, SparseAdjacency(block, dtype=dtype,
                                                 precompute_transpose=True))

"""Layered (per-hop) sampled blocks — the async pipeline's block format.

The monolithic :class:`~repro.graph.subgraph.SubgraphBlock` runs every
propagation layer over the *entire* sampled node set, yet layer ``l``'s
output is only consumed where layer ``l+1`` aggregates — and the final
matching reads seed rows alone. For a 2-layer model with a 25k-node block
and a few hundred seeds, that is ~2×25k node-layer evaluations where ~3k
would do. This module holds the GraphSAGE/DGL-"MFG"-style alternative: a
*layered* block with one shrinking bipartite sub-adjacency per hop, so
layer ``l`` computes exactly the rows layer ``l+1`` needs and the top
layer computes seeds only.

Construction walks backwards from the seeds: with level sets
``S_L = seeds`` and ``S_{l-1} = S_l ∪ sampled-neighbors(S_l)``, the level-
``l`` computation aggregates ``S_l``-rows from ``S_{l-1}``-columns through
the induced bipartite slice ``A[S_l][:, S_{l-1}]``. Induced slicing keeps
every graph edge between the included node sets (the same estimator family
as the monolithic block); row-normalized adjacencies are re-normalized
over the included columns so messages stay means. With ``fanout=None`` the
level sets cover every reachable neighbor, each re-normalized row equals
the full-graph row, and the seed outputs are *bit-exact* full-graph values
— the property the layered tests pin down.

Per-hop fanout schedules compose naturally: ``fanout=[10, 5]`` caps the
first expansion away from the seeds at 10 neighbors per (node, behavior)
and the second at 5, bounding the deepest (cheapest-per-row, but largest)
level set.

Two shapes mirror the two engine modes:

* :class:`LayeredBlock` — multi-behavior (GNMR): per-level user-side and
  item-side stacked-CSR bipartite slices with the engine's fused
  ``(K·n) × m`` layout.
* :class:`LayeredNodeBlocks` — single-graph (NGCF): per-level rectangular
  slices of one square adjacency over the joint (users+items) space.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.subgraph import (
    _expand,
    _IndexMap,
    _slice_block,
    resolve_fanout,
)
from repro.tensor.sparse import SparseAdjacency
from repro.tensor.tensor import Tensor


class _BipartiteHop:
    """One hop's fused bipartite slice: ``(K·|dst|) × |src|`` stacked CSR."""

    __slots__ = ("stack", "num_dst", "num_behaviors")

    def __init__(self, stack: SparseAdjacency, num_dst: int, num_behaviors: int):
        self.stack = stack
        self.num_dst = int(num_dst)
        self.num_behaviors = int(num_behaviors)

    def propagate(self, h_src: Tensor) -> Tensor:
        """Aggregate source embeddings to destinations: ``(|dst|, K, d)``."""
        out = self.stack.matmul(h_src)                       # (K·dst, d)
        return out.reshape(self.num_behaviors, self.num_dst,
                           h_src.shape[-1]).transpose(1, 0, 2)


def _fused_slice(matrices: list[sp.csr_matrix], rows: np.ndarray,
                 cols: np.ndarray, renormalize: bool, dtype) -> SparseAdjacency:
    """Vstack the K per-behavior induced slices into one stacked CSR."""
    blocks = [_slice_block(m, rows, cols, renormalize) for m in matrices]
    return SparseAdjacency(sp.vstack(blocks, format="csr"), dtype=dtype,
                           precompute_transpose=True)


class LayeredBlock:
    """Per-hop shrinking bipartite blocks for multi-behavior propagation.

    ``user_levels[l]`` / ``item_levels[l]`` are the sorted global ids whose
    embeddings exist *after* ``l`` layer applications — ``user_levels[0]``
    is the widest (order-0 input) set, ``user_levels[L]`` the seed users.
    ``user_hops[l]`` aggregates item level-``l`` embeddings into user
    level-``l+1`` rows (and ``item_hops[l]`` the mirror image), so a model
    runs layer ``l+1`` as ``layer(user_hops[l].propagate(h_item))`` and
    each level's tensors shrink toward the seeds.
    """

    def __init__(self, user_levels: list[np.ndarray],
                 item_levels: list[np.ndarray],
                 user_hops: list[_BipartiteHop],
                 item_hops: list[_BipartiteHop],
                 num_behaviors: int):
        self._user_maps = [_IndexMap(nodes) for nodes in user_levels]
        self._item_maps = [_IndexMap(nodes) for nodes in item_levels]
        self.user_hops = user_hops
        self.item_hops = item_hops
        self.num_behaviors = int(num_behaviors)

    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return len(self.user_hops)

    @property
    def user_levels(self) -> list[np.ndarray]:
        """Global user ids per level (position = local row index)."""
        return [m.nodes for m in self._user_maps]

    @property
    def item_levels(self) -> list[np.ndarray]:
        return [m.nodes for m in self._item_maps]

    def localize_users(self, level: int, ids: np.ndarray) -> np.ndarray:
        """Rows of level-``level`` user tensors holding these global ids."""
        return self._user_maps[level].localize(ids, "user")

    def localize_items(self, level: int, ids: np.ndarray) -> np.ndarray:
        return self._item_maps[level].localize(ids, "item")

    def restrict_users(self, level: int) -> np.ndarray:
        """Rows of level ``level-1`` user tensors kept at level ``level``.

        Level sets are nested (``S_l ⊆ S_{l-1}``), so a model's residual /
        self-connection term restricts the previous level's tensor to these
        rows before adding it to the propagated one.
        """
        return self._user_maps[level - 1].localize(
            self._user_maps[level].nodes, "user")

    def restrict_items(self, level: int) -> np.ndarray:
        return self._item_maps[level - 1].localize(
            self._item_maps[level].nodes, "item")


class LayeredNodeBlocks:
    """Per-hop shrinking slices of one square adjacency (NGCF mode).

    ``levels[l]`` is the sorted joint-space node set after ``l`` layers
    (``levels[L]`` = seeds); ``hops[l]`` is the ``|levels[l+1]| ×
    |levels[l]|`` induced slice, self-loops included because the level
    sets are nested.
    """

    def __init__(self, levels: list[np.ndarray],
                 hops: list[SparseAdjacency]):
        self._maps = [_IndexMap(nodes) for nodes in levels]
        self.hops = hops

    @property
    def num_layers(self) -> int:
        return len(self.hops)

    @property
    def levels(self) -> list[np.ndarray]:
        return [m.nodes for m in self._maps]

    def localize(self, level: int, ids: np.ndarray) -> np.ndarray:
        return self._maps[level].localize(ids, "node")

    def restrict(self, level: int) -> np.ndarray:
        """Rows of level ``level-1`` tensors kept at level ``level``."""
        return self._maps[level - 1].localize(self._maps[level].nodes, "node")

    def propagate(self, level: int, h: Tensor) -> Tensor:
        """One hop: aggregate level-``level`` rows into level ``level+1``."""
        return self.hops[level].matmul(h)


def sample_layered_bipartite(user_matrices: list[sp.csr_matrix],
                             item_matrices: list[sp.csr_matrix],
                             seed_users: np.ndarray, seed_items: np.ndarray,
                             hops: int, fanout,
                             rng: np.random.Generator,
                             dtype,
                             renormalize: bool) -> LayeredBlock:
    """Build a :class:`LayeredBlock` by backward expansion from the seeds.

    ``fanout`` follows :func:`~repro.graph.subgraph.resolve_fanout`
    semantics: ``schedule[0]`` caps the first expansion away from the
    seeds (i.e. the neighbors aggregated by the *last* layer).
    """
    schedule = resolve_fanout(fanout, hops)
    users = [np.unique(np.asarray(seed_users, dtype=np.int64))]
    items = [np.unique(np.asarray(seed_items, dtype=np.int64))]
    for hop_fanout in schedule:
        # the level-l computation pulls from sampled neighbors of level l's
        # node sets; union with the current sets keeps levels nested so
        # residual connections can restrict instead of re-gather
        next_items = _expand(user_matrices, users[-1], hop_fanout, rng)
        next_users = _expand(item_matrices, items[-1], hop_fanout, rng)
        users.append(np.union1d(users[-1], next_users))
        items.append(np.union1d(items[-1], next_items))
    # built seed-first; level 0 must be the widest set
    users.reverse()
    items.reverse()
    k = len(user_matrices)
    user_hops = [
        _BipartiteHop(_fused_slice(user_matrices, users[level + 1],
                                   items[level], renormalize, dtype),
                      num_dst=users[level + 1].size, num_behaviors=k)
        for level in range(hops)
    ]
    item_hops = [
        _BipartiteHop(_fused_slice(item_matrices, items[level + 1],
                                   users[level], renormalize, dtype),
                      num_dst=items[level + 1].size, num_behaviors=k)
        for level in range(hops)
    ]
    return LayeredBlock(users, items, user_hops, item_hops, num_behaviors=k)


def sample_layered_square(matrix: sp.csr_matrix, seed_nodes: np.ndarray,
                          hops: int, fanout,
                          rng: np.random.Generator,
                          dtype) -> LayeredNodeBlocks:
    """Layered counterpart of ``sample_square_block`` (single-graph mode)."""
    schedule = resolve_fanout(fanout, hops)
    levels = [np.unique(np.asarray(seed_nodes, dtype=np.int64))]
    for hop_fanout in schedule:
        neighbors = _expand([matrix], levels[-1], hop_fanout, rng)
        levels.append(np.union1d(levels[-1], neighbors))
    levels.reverse()
    slices = [
        SparseAdjacency(_slice_block(matrix, levels[level + 1], levels[level],
                                     renormalize=False),
                        dtype=dtype, precompute_transpose=True)
        for level in range(hops)
    ]
    return LayeredNodeBlocks(levels, slices)

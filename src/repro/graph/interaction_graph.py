"""The multi-behavior user–item interaction graph G = {U, V, E}.

The paper's computation graph: nodes are the union of users and items; an
edge (u_i, v_j, k) exists when x^k_{ij} = 1. We store one CSR adjacency per
behavior type (users × items), plus cached normalized variants used by the
message-passing layers, and a merged "any behavior" view used by
single-graph baselines such as NGCF.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.tensor.sparse import SparseAdjacency


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics in the format of the paper's Table I."""

    num_users: int
    num_items: int
    num_interactions: int
    behavior_names: tuple[str, ...]
    interactions_per_behavior: dict[str, int] = field(default_factory=dict)
    density: float = 0.0

    def as_row(self) -> dict[str, object]:
        """One Table-I row: dataset sizes and the behavior-type inventory."""
        return {
            "User #": self.num_users,
            "Item #": self.num_items,
            "Interaction #": self.num_interactions,
            "Interactive Behavior Type": "{" + ", ".join(self.behavior_names) + "}",
        }


class MultiBehaviorGraph:
    """Per-behavior bipartite adjacency over users and items.

    Parameters
    ----------
    num_users, num_items:
        Node counts (users indexed 0..I-1, items 0..J-1).
    behavior_names:
        Ordered behavior-type names; index in this tuple is the behavior id
        ``k``. By convention the *target* behavior is the last entry unless
        stated otherwise by the dataset.
    interactions:
        Mapping behavior name → (user_idx, item_idx) integer arrays.
    """

    def __init__(self, num_users: int, num_items: int,
                 behavior_names: tuple[str, ...] | list[str],
                 interactions: dict[str, tuple[np.ndarray, np.ndarray]]):
        self.num_users = int(num_users)
        self.num_items = int(num_items)
        self.behavior_names = tuple(behavior_names)
        if set(interactions) != set(self.behavior_names):
            raise ValueError(
                f"interaction keys {sorted(interactions)} do not match "
                f"behavior names {sorted(self.behavior_names)}"
            )
        self._adjacency: dict[str, SparseAdjacency] = {}
        for name in self.behavior_names:
            users, items = interactions[name]
            users = np.asarray(users, dtype=np.int64)
            items = np.asarray(items, dtype=np.int64)
            if users.size and (users.min() < 0 or users.max() >= num_users):
                raise ValueError(f"user index out of range for behavior {name!r}")
            if items.size and (items.min() < 0 or items.max() >= num_items):
                raise ValueError(f"item index out of range for behavior {name!r}")
            matrix = sp.csr_matrix(
                (np.ones(users.size), (users, items)),
                shape=(num_users, num_items),
            )
            # collapse duplicate (u, i) pairs to a single binary edge
            matrix.data[:] = 1.0
            matrix.sum_duplicates()
            matrix.data[:] = 1.0
            self._adjacency[name] = SparseAdjacency(matrix)
        self._norm_cache: dict[tuple[str, str], SparseAdjacency] = {}
        self._merged_cache: SparseAdjacency | None = None

    # ------------------------------------------------------------------
    @property
    def num_behaviors(self) -> int:
        return len(self.behavior_names)

    def behavior_index(self, name: str) -> int:
        return self.behavior_names.index(name)

    def adjacency(self, behavior: str) -> SparseAdjacency:
        """Raw binary users×items adjacency for one behavior type."""
        return self._adjacency[behavior]

    def normalized_adjacency(self, behavior: str, mode: str = "row") -> SparseAdjacency:
        """Degree-normalized adjacency (cached)."""
        key = (behavior, mode)
        if key not in self._norm_cache:
            self._norm_cache[key] = self._adjacency[behavior].normalized(mode)
        return self._norm_cache[key]

    def merged_adjacency(self) -> SparseAdjacency:
        """Union over behavior types (binary), for single-graph baselines."""
        if self._merged_cache is None:
            total = None
            for name in self.behavior_names:
                m = self._adjacency[name].matrix
                total = m if total is None else total + m
            total = total.tocsr()
            total.data[:] = 1.0
            self._merged_cache = SparseAdjacency(total)
        return self._merged_cache

    # ------------------------------------------------------------------
    def user_degree(self, behavior: str) -> np.ndarray:
        return self._adjacency[behavior].row_degrees()

    def item_degree(self, behavior: str) -> np.ndarray:
        return self._adjacency[behavior].col_degrees()

    def user_items(self, behavior: str, user: int) -> np.ndarray:
        """Item neighbors N(i, k) of a user under one behavior."""
        matrix = self._adjacency[behavior].matrix
        return matrix.indices[matrix.indptr[user]:matrix.indptr[user + 1]]

    def has_edge(self, behavior: str, user: int, item: int) -> bool:
        return item in self.user_items(behavior, user)

    def interaction_count(self, behavior: str | None = None) -> int:
        if behavior is not None:
            return int(self._adjacency[behavior].nnz)
        return int(sum(self._adjacency[b].nnz for b in self.behavior_names))

    def stats(self) -> GraphStats:
        per_behavior = {b: int(self._adjacency[b].nnz) for b in self.behavior_names}
        total = sum(per_behavior.values())
        cells = self.num_users * self.num_items * self.num_behaviors
        return GraphStats(
            num_users=self.num_users,
            num_items=self.num_items,
            num_interactions=total,
            behavior_names=self.behavior_names,
            interactions_per_behavior=per_behavior,
            density=total / cells if cells else 0.0,
        )

    # ------------------------------------------------------------------
    def subgraph_without(self, behaviors: list[str] | tuple[str, ...]) -> "MultiBehaviorGraph":
        """Copy of the graph with the given behavior types removed.

        Used for the Table-IV "w/o <behavior>" ablations.
        """
        drop = set(behaviors)
        keep = [b for b in self.behavior_names if b not in drop]
        if not keep:
            raise ValueError("cannot drop every behavior type")
        interactions = {}
        for b in keep:
            coo = self._adjacency[b].matrix.tocoo()
            interactions[b] = (coo.row.astype(np.int64), coo.col.astype(np.int64))
        return MultiBehaviorGraph(self.num_users, self.num_items, tuple(keep), interactions)

    def to_interaction_tensor(self) -> np.ndarray:
        """Dense X ∈ {0,1}^{I×J×K}; only safe for small graphs (tests)."""
        x = np.zeros((self.num_users, self.num_items, self.num_behaviors))
        for k, b in enumerate(self.behavior_names):
            x[:, :, k] = self._adjacency[b].to_dense()
        return x

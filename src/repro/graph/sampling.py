"""Sampling utilities for pairwise training (Algorithm 1 of the paper).

Each training step samples seed users, then for each user ``S`` positive
items (interacted under the target behavior) and ``S`` negative items
(never interacted under the target behavior).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.interaction_graph import MultiBehaviorGraph


@dataclass
class PairwiseBatch:
    """A mini-batch of (user, positive item, negative item) triples."""

    users: np.ndarray
    pos_items: np.ndarray
    neg_items: np.ndarray

    def __len__(self) -> int:
        return len(self.users)


class NegativeSampler:
    """Uniform negative sampler with rejection against observed positives.

    Positives are defined w.r.t. a fixed behavior (usually the target).
    The per-user positive sets are *views into the behavior's CSR arrays*
    — construction is O(1) Python work regardless of the user count
    (formerly an O(U) loop materializing one hash set per user), and
    rejection tests an entire draw vector at once with a ``searchsorted``
    membership check against the user's sorted positive row.
    """

    def __init__(self, graph: MultiBehaviorGraph, behavior: str,
                 extra_exclude: dict[int, set[int]] | None = None):
        self.num_items = graph.num_items
        matrix = graph.adjacency(behavior).matrix
        if not matrix.has_sorted_indices:
            matrix.sort_indices()
        self._indptr = matrix.indptr
        self._indices = matrix.indices.astype(np.int64, copy=False)
        # users with extra exclusions get a private merged (sorted) row;
        # everyone else keeps the zero-copy CSR slice
        self._overrides: dict[int, np.ndarray] = {}
        if extra_exclude:
            for user, items in extra_exclude.items():
                base = self._csr_row(user)
                self._overrides[user] = np.union1d(
                    base, np.fromiter(items, dtype=np.int64, count=len(items)))

    def _csr_row(self, user: int) -> np.ndarray:
        return self._indices[self._indptr[user]:self._indptr[user + 1]]

    def _positive_row(self, user: int) -> np.ndarray:
        """Sorted array of the user's excluded items (view, not a copy)."""
        override = self._overrides.get(user)
        return override if override is not None else self._csr_row(user)

    def positives(self, user: int) -> set[int]:
        return set(self._positive_row(user).tolist())

    def can_sample(self, user: int) -> bool:
        """Whether the user has at least one non-interacted item left."""
        return self._positive_row(user).size < self.num_items

    def sample(self, user: int, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` items the user never interacted with."""
        exclude = self._positive_row(user)
        if exclude.size >= self.num_items:
            raise ValueError(f"user {user} interacted with every item; cannot sample negatives")
        out = np.empty(count, dtype=np.int64)
        filled = 0
        while filled < count:
            draw = rng.integers(0, self.num_items, size=max(count - filled, 8))
            if exclude.size:
                # vectorized membership: position of each draw in the
                # sorted positive row; a hit means the row holds that item
                slots = np.searchsorted(exclude, draw)
                hit = ((slots < exclude.size)
                       & (exclude[np.minimum(slots, exclude.size - 1)] == draw))
                accepted = draw[~hit]
            else:
                accepted = draw
            take = min(accepted.size, count - filled)
            out[filled:filled + take] = accepted[:take]
            filled += take
        return out


def sample_seed_nodes(num_nodes: int, count: int, rng: np.random.Generator) -> np.ndarray:
    """Sample seed node ids without replacement (Algorithm 1, line 3)."""
    count = min(count, num_nodes)
    return rng.choice(num_nodes, size=count, replace=False)


def sample_pairwise_batch(graph: MultiBehaviorGraph, behavior: str,
                          sampler: NegativeSampler, batch_users: int,
                          per_user: int, rng: np.random.Generator,
                          eligible_users: np.ndarray | None = None) -> PairwiseBatch:
    """Sample a pairwise training batch.

    Parameters
    ----------
    graph:
        The interaction graph providing positive items.
    behavior:
        Target behavior type (positives come from here).
    sampler:
        Negative sampler (shared across steps to reuse its hash sets).
    batch_users:
        Number of distinct seed users per batch.
    per_user:
        ``S`` — positives and negatives sampled per user.
    eligible_users:
        Restrict seeds to these users (defaults to users with ≥1 positive).
    """
    if eligible_users is None:
        degrees = graph.user_degree(behavior)
        eligible_users = np.flatnonzero(degrees > 0)
    if eligible_users.size == 0:
        raise ValueError(f"no user has any {behavior!r} interaction")
    seeds = rng.choice(eligible_users, size=min(batch_users, eligible_users.size), replace=False)

    users: list[int] = []
    pos: list[int] = []
    neg: list[int] = []
    for user in seeds:
        items = graph.user_items(behavior, int(user))
        if items.size == 0 or not sampler.can_sample(int(user)):
            continue
        chosen = rng.choice(items, size=per_user, replace=items.size < per_user)
        negatives = sampler.sample(int(user), per_user, rng)
        users.extend([int(user)] * per_user)
        pos.extend(chosen.tolist())
        neg.extend(negatives.tolist())
    return PairwiseBatch(
        users=np.asarray(users, dtype=np.int64),
        pos_items=np.asarray(pos, dtype=np.int64),
        neg_items=np.asarray(neg, dtype=np.int64),
    )

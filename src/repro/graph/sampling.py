"""Sampling utilities for pairwise training (Algorithm 1 of the paper).

Each training step samples seed users, then for each user ``S`` positive
items (interacted under the target behavior) and ``S`` negative items
(never interacted under the target behavior).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.interaction_graph import MultiBehaviorGraph


@dataclass
class PairwiseBatch:
    """A mini-batch of (user, positive item, negative item) triples."""

    users: np.ndarray
    pos_items: np.ndarray
    neg_items: np.ndarray

    def __len__(self) -> int:
        return len(self.users)


class NegativeSampler:
    """Uniform negative sampler with rejection against observed positives.

    Positives are defined w.r.t. a fixed behavior (usually the target).
    Rejection uses per-user hash sets, so sampling stays O(1) per draw even
    for heavy users.
    """

    def __init__(self, graph: MultiBehaviorGraph, behavior: str,
                 extra_exclude: dict[int, set[int]] | None = None):
        self.num_items = graph.num_items
        self._positives: list[set[int]] = [
            set(graph.user_items(behavior, u).tolist()) for u in range(graph.num_users)
        ]
        if extra_exclude:
            for user, items in extra_exclude.items():
                self._positives[user] |= set(items)

    def positives(self, user: int) -> set[int]:
        return self._positives[user]

    def can_sample(self, user: int) -> bool:
        """Whether the user has at least one non-interacted item left."""
        return len(self._positives[user]) < self.num_items

    def sample(self, user: int, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` items the user never interacted with."""
        exclude = self._positives[user]
        if len(exclude) >= self.num_items:
            raise ValueError(f"user {user} interacted with every item; cannot sample negatives")
        out = np.empty(count, dtype=np.int64)
        filled = 0
        while filled < count:
            draw = rng.integers(0, self.num_items, size=max(count - filled, 8))
            for item in draw:
                if item not in exclude:
                    out[filled] = item
                    filled += 1
                    if filled == count:
                        break
        return out


def sample_seed_nodes(num_nodes: int, count: int, rng: np.random.Generator) -> np.ndarray:
    """Sample seed node ids without replacement (Algorithm 1, line 3)."""
    count = min(count, num_nodes)
    return rng.choice(num_nodes, size=count, replace=False)


def sample_pairwise_batch(graph: MultiBehaviorGraph, behavior: str,
                          sampler: NegativeSampler, batch_users: int,
                          per_user: int, rng: np.random.Generator,
                          eligible_users: np.ndarray | None = None) -> PairwiseBatch:
    """Sample a pairwise training batch.

    Parameters
    ----------
    graph:
        The interaction graph providing positive items.
    behavior:
        Target behavior type (positives come from here).
    sampler:
        Negative sampler (shared across steps to reuse its hash sets).
    batch_users:
        Number of distinct seed users per batch.
    per_user:
        ``S`` — positives and negatives sampled per user.
    eligible_users:
        Restrict seeds to these users (defaults to users with ≥1 positive).
    """
    if eligible_users is None:
        degrees = graph.user_degree(behavior)
        eligible_users = np.flatnonzero(degrees > 0)
    if eligible_users.size == 0:
        raise ValueError(f"no user has any {behavior!r} interaction")
    seeds = rng.choice(eligible_users, size=min(batch_users, eligible_users.size), replace=False)

    users: list[int] = []
    pos: list[int] = []
    neg: list[int] = []
    for user in seeds:
        items = graph.user_items(behavior, int(user))
        if items.size == 0 or not sampler.can_sample(int(user)):
            continue
        chosen = rng.choice(items, size=per_user, replace=items.size < per_user)
        negatives = sampler.sample(int(user), per_user, rng)
        users.extend([int(user)] * per_user)
        pos.extend(chosen.tolist())
        neg.extend(negatives.tolist())
    return PairwiseBatch(
        users=np.asarray(users, dtype=np.int64),
        pos_items=np.asarray(pos, dtype=np.int64),
        neg_items=np.asarray(neg, dtype=np.int64),
    )

"""Multi-behavior user–item interaction graph substrate."""

from repro.graph.interaction_graph import MultiBehaviorGraph, GraphStats
from repro.graph.sampling import (
    NegativeSampler,
    sample_pairwise_batch,
    sample_seed_nodes,
    PairwiseBatch,
)

__all__ = [
    "MultiBehaviorGraph",
    "GraphStats",
    "NegativeSampler",
    "sample_pairwise_batch",
    "sample_seed_nodes",
    "PairwiseBatch",
]

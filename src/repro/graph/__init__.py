"""Multi-behavior user–item interaction graph substrate.

Besides the graph container this package hosts the
:class:`~repro.graph.engine.PropagationEngine` — the shared message-passing
engine (fused multi-behavior SpMM, normalization, propagation cache) that
every graph recommender builds on.
"""

from repro.graph.interaction_graph import MultiBehaviorGraph, GraphStats
from repro.graph.engine import PropagationEngine, bipartite_laplacian
from repro.graph.layered import LayeredBlock, LayeredNodeBlocks
from repro.graph.subgraph import (
    SubgraphBlock,
    SingleSubgraph,
    sample_neighbors,
    resolve_fanout,
    parse_fanout,
    validate_fanout,
)
from repro.graph.sampling import (
    NegativeSampler,
    sample_pairwise_batch,
    sample_seed_nodes,
    PairwiseBatch,
)

__all__ = [
    "MultiBehaviorGraph",
    "GraphStats",
    "PropagationEngine",
    "bipartite_laplacian",
    "SubgraphBlock",
    "SingleSubgraph",
    "LayeredBlock",
    "LayeredNodeBlocks",
    "sample_neighbors",
    "resolve_fanout",
    "parse_fanout",
    "validate_fanout",
    "NegativeSampler",
    "sample_pairwise_batch",
    "sample_seed_nodes",
    "PairwiseBatch",
]

"""Ranking metrics: HR@N and NDCG@N (plus MRR / precision / recall).

The protocol places exactly one positive among the candidates of each test
user, so HR@N is the fraction of users whose positive ranks within the top
N, and NDCG@N reduces to 1 / log2(rank + 1) averaged over users (0 when the
positive falls outside the top N) — exactly the quantities in Tables II/III.
"""

from __future__ import annotations

import numpy as np


def rank_of_positive(scores: np.ndarray, positive_index: int = 0) -> int:
    """0-based rank of the positive candidate under descending scores.

    Ties are broken pessimistically (the positive loses), which keeps the
    metric conservative and deterministic.
    """
    scores = np.asarray(scores, dtype=np.float64)
    positive_score = scores[positive_index]
    better = np.sum(scores > positive_score)
    ties = np.sum(scores == positive_score) - 1  # exclude the positive itself
    return int(better + ties)


def ranks_of_positives(scores: np.ndarray, positive_index: int = 0) -> np.ndarray:
    """Vectorized :func:`rank_of_positive` over a (users × candidates) matrix.

    One comparison pass over the whole matrix replaces the per-row Python
    loop — the difference between milliseconds and seconds on full-catalog
    evaluation. Tie-breaking is identical (pessimistic).
    """
    scores = np.asarray(scores, dtype=np.float64)
    positive = scores[:, positive_index][:, None]
    better = np.sum(scores > positive, axis=1)
    ties = np.sum(scores == positive, axis=1) - 1  # exclude the positive itself
    return (better + np.maximum(ties, 0)).astype(np.int64)


def hit_ratio(ranks: np.ndarray, top_n: int) -> float:
    """HR@N: fraction of test users whose positive is in the top N."""
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        return 0.0
    return float(np.mean(ranks < top_n))


def ndcg(ranks: np.ndarray, top_n: int) -> float:
    """NDCG@N with a single relevant item: mean of 1/log2(rank+2) if hit."""
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        return 0.0
    gains = np.where(ranks < top_n, 1.0 / np.log2(ranks + 2.0), 0.0)
    return float(np.mean(gains))


def mrr(ranks: np.ndarray) -> float:
    """Mean reciprocal rank of the positive."""
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        return 0.0
    return float(np.mean(1.0 / (ranks + 1.0)))


def auc(ranks: np.ndarray, num_candidates: int) -> float:
    """Mean AUC: probability the positive outranks a random negative.

    With one positive at 0-based rank r among ``num_candidates`` items,
    per-user AUC = 1 − r / (num_candidates − 1).
    """
    ranks = np.asarray(ranks)
    if ranks.size == 0 or num_candidates < 2:
        return 0.0
    return float(np.mean(1.0 - ranks / (num_candidates - 1)))


def precision(ranks: np.ndarray, top_n: int) -> float:
    """Precision@N with one relevant item: hits / N averaged over users."""
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        return 0.0
    return float(np.mean((ranks < top_n) / top_n))


def recall(ranks: np.ndarray, top_n: int) -> float:
    """Recall@N — identical to HR@N under the 1-positive protocol."""
    return hit_ratio(ranks, top_n)

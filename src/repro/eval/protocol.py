"""The sampled ranking evaluation protocol (1 positive vs 99 negatives)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.data.negatives import EvalCandidates
from repro.eval import metrics as M


class Scorer(Protocol):
    """Anything that can score (user, item) pairs — all recommenders do."""

    def score(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Return preference scores for parallel user/item index arrays."""
        ...


@dataclass
class EvaluationResult:
    """Metrics over a candidate set, queryable at any cutoff N.

    ``ranks`` holds the 0-based rank of each user's positive, from which all
    reported metrics are derived.
    """

    ranks: np.ndarray
    top_ns: tuple[int, ...] = (1, 3, 5, 7, 9, 10)
    _cache: dict[str, float] = field(default_factory=dict, repr=False)

    def hr(self, n: int = 10) -> float:
        key = f"hr@{n}"
        if key not in self._cache:
            self._cache[key] = M.hit_ratio(self.ranks, n)
        return self._cache[key]

    def ndcg(self, n: int = 10) -> float:
        key = f"ndcg@{n}"
        if key not in self._cache:
            self._cache[key] = M.ndcg(self.ranks, n)
        return self._cache[key]

    def recall(self, n: int = 10) -> float:
        """Recall@N — equals HR@N under the one-positive protocol, and is
        the conventional name under full-catalog ranking."""
        return self.hr(n)

    def mrr(self) -> float:
        if "mrr" not in self._cache:
            self._cache["mrr"] = M.mrr(self.ranks)
        return self._cache["mrr"]

    def as_dict(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for n in self.top_ns:
            out[f"HR@{n}"] = self.hr(n)
            out[f"NDCG@{n}"] = self.ndcg(n)
        out["MRR"] = self.mrr()
        return out

    def __len__(self) -> int:
        return len(self.ranks)


def evaluate_ranking(scores: np.ndarray) -> EvaluationResult:
    """Compute ranks from a (users × candidates) score matrix.

    Column 0 must hold the positive candidate (the
    :class:`~repro.data.negatives.EvalCandidates` convention). Ranks are
    computed with one vectorized comparison pass over the whole matrix.
    """
    return EvaluationResult(ranks=M.ranks_of_positives(scores))


def evaluate_full_ranking(model: Scorer, train, test_users: np.ndarray,
                          test_items: np.ndarray,
                          batch_users: int = 64,
                          use_serving: bool = True,
                          retriever: str = "exact",
                          ann: dict | None = None) -> EvaluationResult:
    """Rank each held-out positive against the *entire* catalog.

    The sampled 99-negative protocol (the paper's) is cheap but noisy; this
    mode ranks against every item the user has not interacted with under
    the target behavior — the strict Recall@K/NDCG@K variant used by later
    work, and exactly the workload the serving layer optimizes. Scoring
    runs through :mod:`repro.serve` backends: a blocked matmul over the
    model's serving embeddings when it has them, brute-force pairwise
    scoring otherwise; known training positives are suppressed with one
    vectorized CSR exclusion pass per block.

    Parameters
    ----------
    train:
        The training :class:`~repro.data.dataset.InteractionDataset`,
        used to mask out known positives.
    use_serving:
        Allow the factored fast path (``False`` forces brute force, e.g.
        to cross-check the serving embeddings).
    retriever:
        ``"exact"`` (default) — exhaustive ranks, exactly as served by
        the blocked scan. ``"ivf"`` — ranks through
        :class:`~repro.serve.ann.ApproxRetriever` (requires a factored
        model): each positive's rank is its position in the retrieved
        top-``eval_k`` list, or ``num_items`` when the approximate
        shortlist missed it, so metrics are exact at every cutoff
        ``N ≤ eval_k`` given the retrieval and measure the *deployed*
        approximate quality (recall loss included).
    ann:
        Options for ``retriever="ivf"``: ``nprobe``, ``quant``,
        ``num_lists``, ``shortlist_k``, ``seed`` (index/search dials) and
        ``eval_k`` (retrieval depth, default 100).
    """
    from repro.serve import ExclusionMask, ScorerBackend, backend_for

    test_users = np.asarray(test_users, dtype=np.int64)
    test_items = np.asarray(test_items, dtype=np.int64)
    num_items = train.num_items
    if use_serving:
        backend = backend_for(model, num_items=num_items)
    else:
        backend = ScorerBackend(model, num_items=num_items)
    seen = ExclusionMask.from_dataset(train, behaviors="target")
    if retriever == "ivf":
        return _evaluate_approx_ranking(backend, seen, test_users,
                                        test_items, num_items,
                                        batch_users, ann)
    if retriever != "exact":
        raise ValueError(f"unknown retriever {retriever!r}; "
                         "expected 'exact' or 'ivf'")
    ranks = np.empty(test_users.size, dtype=np.int64)
    for start in range(0, test_users.size, batch_users):
        stop = min(start + batch_users, test_users.size)
        block = test_users[start:stop]
        scores = np.asarray(backend.score_block(block), dtype=np.float64)
        positives = test_items[start:stop]
        positive_scores = scores[np.arange(block.size), positives]
        # mask known positives so they never rank as competitors (the
        # held-out positive itself is absent from the training graph, so
        # its score is read before masking and stays untouched)
        seen.apply(block, scores)
        better = np.sum(scores > positive_scores[:, None], axis=1)
        ties = np.sum(scores == positive_scores[:, None], axis=1) - 1
        ranks[start:stop] = better + np.maximum(ties, 0)
    return EvaluationResult(ranks=ranks)


def _evaluate_approx_ranking(backend, seen, test_users, test_items,
                             num_items: int, batch_users: int,
                             ann: dict | None) -> EvaluationResult:
    """Positive ranks under truncated approximate retrieval."""
    from repro.serve import ApproxRetriever

    options = dict(ann or {})
    eval_k = int(options.pop("eval_k", 100))
    approx = ApproxRetriever(backend, exclude=seen,
                             batch_users=batch_users, **options)
    result = approx.retrieve(test_users, eval_k)
    # rank = position of the held-out positive in the retrieved list;
    # shortlist misses count as num_items (a miss at every cutoff)
    ranks = np.full(test_users.size, num_items, dtype=np.int64)
    hit_rows, hit_cols = np.nonzero(result.items == test_items[:, None])
    ranks[hit_rows] = hit_cols
    return EvaluationResult(ranks=ranks)


def evaluate_model(model: Scorer, candidates: EvalCandidates,
                   batch_size: int = 512) -> EvaluationResult:
    """Score every candidate list with ``model`` and rank the positives.

    Scoring is batched over users to bound peak memory for wide candidate
    sets; each batch flattens (user, item) pairs into parallel index arrays.
    """
    num_users, width = candidates.items.shape
    ranks = np.empty(num_users, dtype=np.int64)
    for start in range(0, num_users, batch_size):
        stop = min(start + batch_size, num_users)
        block_users = np.repeat(candidates.users[start:stop], width)
        block_items = candidates.items[start:stop].reshape(-1)
        scores = model.score(block_users, block_items).reshape(stop - start, width)
        ranks[start:stop] = M.ranks_of_positives(scores)
    return EvaluationResult(ranks=ranks)

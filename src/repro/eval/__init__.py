"""Evaluation: ranking metrics and the sampled candidate protocol."""

from repro.eval.metrics import (
    auc,
    hit_ratio,
    mrr,
    ndcg,
    precision,
    rank_of_positive,
    recall,
)
from repro.eval.protocol import (
    EvaluationResult,
    evaluate_full_ranking,
    evaluate_model,
    evaluate_ranking,
)

__all__ = [
    "auc",
    "hit_ratio",
    "ndcg",
    "mrr",
    "precision",
    "recall",
    "rank_of_positive",
    "EvaluationResult",
    "evaluate_ranking",
    "evaluate_model",
    "evaluate_full_ranking",
]

"""Model checkpointing: state dicts ↔ compressed ``.npz`` files.

Parameter names contain dots (module paths), which ``np.savez`` handles
fine as keys; metadata (model name, step, metrics) rides along as a JSON
string under a reserved key. Every save also records a per-array sha256
fingerprint (``array_sha256`` metadata key) that :func:`load_checkpoint`
verifies, so a corrupted or hand-edited archive fails loudly instead of
silently serving garbage embeddings. Checkpoints written before the
fingerprints existed still load (no hashes → no verification).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.utils.integrity import array_sha256

_META_KEY = "__checkpoint_meta__"
_HASH_KEY = "array_sha256"


class CheckpointIntegrityError(ValueError):
    """A checkpoint array's content hash did not match its metadata."""


def save_arrays(path: str | Path, arrays: dict[str, np.ndarray],
                metadata: dict | None = None) -> Path:
    """Atomically write a named-array archive (.npz) with fingerprints.

    The archive is written to a temp file in the destination directory and
    moved into place with ``os.replace``, so a crash (even SIGKILL) mid-save
    leaves either the previous file or the complete new one — never a torn
    archive. Every array gets a sha256 fingerprint in the metadata that
    :func:`load_arrays` verifies on read.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    arrays = dict(arrays)
    if _META_KEY in arrays:
        raise ValueError(f"array name collides with reserved key {_META_KEY}")
    meta = dict(metadata or {})
    meta[_HASH_KEY] = {name: array_sha256(np.asarray(value))
                       for name, value in arrays.items()}
    payload = dict(arrays)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **payload)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def load_arrays(path: str | Path,
                verify: bool = True) -> tuple[dict[str, np.ndarray], dict]:
    """Read an archive written by :func:`save_arrays` → (arrays, metadata).

    Verifies each array's sha256 fingerprint unless ``verify=False``;
    a mismatch raises :class:`CheckpointIntegrityError`.
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        metadata: dict = {}
        arrays: dict[str, np.ndarray] = {}
        for key in archive.files:
            if key == _META_KEY:
                metadata = json.loads(bytes(archive[key]).decode("utf-8"))
            else:
                arrays[key] = archive[key]
    expected = metadata.get(_HASH_KEY)
    if verify and expected:
        bad = [name for name, value in arrays.items()
               if expected.get(name) not in (None, array_sha256(value))]
        if bad:
            raise CheckpointIntegrityError(
                f"archive {path} failed integrity verification: array "
                f"content hash mismatch for {sorted(bad)} — the file was "
                "corrupted or modified after save_arrays wrote it")
    return arrays, metadata


def save_checkpoint(model, path: str | Path,
                    metadata: dict | None = None) -> Path:
    """Write ``model.state_dict()`` (plus metadata) to ``path`` (.npz).

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module`.
    metadata:
        JSON-serializable extras (epoch, metrics, config echo, ...).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    state = model.state_dict()
    if _META_KEY in state:
        raise ValueError(f"parameter name collides with reserved key {_META_KEY}")
    payload = dict(state)
    meta = dict(metadata or {})
    meta.setdefault("num_parameters", int(sum(v.size for v in state.values())))
    meta[_HASH_KEY] = {name: array_sha256(value) for name, value in state.items()}
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def peek_checkpoint(path: str | Path) -> dict:
    """Read only the metadata of a checkpoint, without a model.

    Lets tools (the CLI ``recommend`` command) discover how to reconstruct
    the model — name, dataset, scale, dtype — before building anything.
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        if _META_KEY in archive.files:
            return json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
    return {}


def load_checkpoint(model, path: str | Path, verify: bool = True) -> dict:
    """Load parameters saved by :func:`save_checkpoint`; returns metadata.

    When the metadata carries per-array fingerprints (every checkpoint
    written since they were introduced), each array is re-hashed before it
    reaches the model and a mismatch raises
    :class:`CheckpointIntegrityError`. Pass ``verify=False`` to skip the
    check (e.g. deliberately patched archives).
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        metadata: dict = {}
        state: dict[str, np.ndarray] = {}
        for key in archive.files:
            if key == _META_KEY:
                metadata = json.loads(bytes(archive[key]).decode("utf-8"))
            else:
                state[key] = archive[key]
    expected = metadata.get(_HASH_KEY)
    if verify and expected:
        bad = [name for name, value in state.items()
               if expected.get(name) not in (None, array_sha256(value))]
        if bad:
            raise CheckpointIntegrityError(
                f"checkpoint {path} failed integrity verification: "
                f"array content hash mismatch for {sorted(bad)} — the file "
                "was corrupted or modified after save_checkpoint wrote it")
    model.load_state_dict(state)
    return metadata

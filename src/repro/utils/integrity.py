"""Content hashing for embedding tables and checkpoint arrays.

One canonical fingerprint — sha256 over each array's dtype, shape, and raw
bytes — shared by the serving snapshot integrity check
(:class:`repro.serve.EmbeddingStore`) and checkpoint save/load
(:mod:`repro.utils.checkpoint`). Hashing the dtype and shape alongside the
payload means a transposed, reshaped, or down-cast table never collides
with the original.
"""

from __future__ import annotations

import hashlib

import numpy as np


def array_sha256(*arrays: np.ndarray) -> str:
    """Hex sha256 fingerprint of one or more arrays (order-sensitive)."""
    digest = hashlib.sha256()
    for array in arrays:
        array = np.ascontiguousarray(array)
        digest.update(f"{array.dtype.str}|{array.shape}|".encode("ascii"))
        digest.update(array.data)
    return digest.hexdigest()

"""Tiny timing helper used by examples and the experiment harness."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring wall-clock seconds.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0
    True
    """

    def __init__(self):
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.elapsed:.2f}s"

"""Utility helpers: checkpointing, content hashing, and timing."""

from repro.utils.checkpoint import (
    CheckpointIntegrityError,
    load_checkpoint,
    peek_checkpoint,
    save_checkpoint,
)
from repro.utils.integrity import array_sha256
from repro.utils.timing import Timer

__all__ = ["save_checkpoint", "load_checkpoint", "peek_checkpoint",
           "CheckpointIntegrityError", "array_sha256", "Timer"]

"""Utility helpers: checkpointing and timing."""

from repro.utils.checkpoint import save_checkpoint, load_checkpoint, peek_checkpoint
from repro.utils.timing import Timer

__all__ = ["save_checkpoint", "load_checkpoint", "peek_checkpoint", "Timer"]

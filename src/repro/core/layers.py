"""The three building blocks of a GNMR propagation layer (paper §III).

Shapes: I users, J items, K behavior types, d embedding dim, C memory
dimensions, S attention heads. Propagation is full-graph and vectorized:
user-side and item-side messages are computed symmetrically.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init as init_schemes
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F
from repro.tensor.sparse import SparseAdjacency
from repro.tensor.tensor import stack


class BehaviorEmbeddingLayer(Module):
    """η(·): type-specific behavior embedding with memory gating (Eq. 2).

    Given the aggregated neighbor message m = Σ_{j∈N(i,k)} H_j, computes
    per-memory-dimension gates α_{c,k} = ReLU(W1 m + b1)_c and returns
    Σ_c α_{c,k} · (W2,c m). The C memory transforms are shared across
    behavior types; type specificity enters through the per-behavior
    messages and their gates — the "memory neural module" of the paper.

    Initialization: the memory transforms start as identity plus small
    noise (``identity_init``), so messages initially *preserve* the
    neighbor embedding directions — the property that makes collaborative
    signals usable from step one (cf. LightGCN's transform-free design) —
    and training then learns the per-memory deviations.
    """

    def __init__(self, dim: int, memory_dims: int, rng: np.random.Generator,
                 identity_init: bool = True, identity_noise: float = 0.1):
        super().__init__()
        self.dim = dim
        self.memory_dims = memory_dims
        self.w1 = Parameter(init_schemes.xavier_uniform((memory_dims, dim), rng), name="w1")
        self.b1 = Parameter(np.zeros(memory_dims), name="b1")
        # W2: (C, d, d) memory transforms, flattened to (d, C·d) for one matmul
        if identity_init:
            w2 = np.stack([
                np.eye(dim) + identity_noise * init_schemes.xavier_uniform((dim, dim), rng)
                for _ in range(memory_dims)
            ])
        else:
            w2 = np.stack([init_schemes.xavier_uniform((dim, dim), rng)
                           for _ in range(memory_dims)])
        self.w2 = Parameter(w2, name="w2")

    def forward(self, aggregated: Tensor) -> Tensor:
        """Apply memory gating to aggregated messages of shape (N, d)."""
        n = aggregated.shape[0]
        alpha = (aggregated.matmul(self.w1.T) + self.b1).relu()      # (N, C)
        # (N, d) @ (d, C·d) -> (N, C, d): all memory transforms at once
        w2_flat = self.w2.transpose(1, 0, 2).reshape(self.dim, self.memory_dims * self.dim)
        projected = aggregated.matmul(w2_flat).reshape(n, self.memory_dims, self.dim)
        gated = projected * alpha.reshape(n, self.memory_dims, 1)
        return gated.sum(axis=1)                                     # (N, d)


class CrossBehaviorAttention(Module):
    """ξ(·): multi-head attention across the K behavior-type messages (Eq. 3).

    Input (N, K, d): each node's K type-specific messages. Relevance
    β^s_{k,k'} = softmax_k'((Q_s H_k)·(K_s H_{k'}) / sqrt(d/S)); the output
    concatenates the S recalibrated sub-space messages and residual-adds the
    original, implementing Ĥ = (‖_s Σ_{k'} β^s V_s H_{k'}) ⊕ H.
    """

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError("num_heads must divide dim")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q = Parameter(init_schemes.xavier_uniform((dim, dim), rng), name="q")
        self.k = Parameter(init_schemes.xavier_uniform((dim, dim), rng), name="k")
        self.v = Parameter(init_schemes.xavier_uniform((dim, dim), rng), name="v")

    def _split_heads(self, x: Tensor, n: int, k: int) -> Tensor:
        """(N, K, d) → (N, S, K, dh)."""
        return x.reshape(n, k, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, messages: Tensor) -> tuple[Tensor, Tensor]:
        """Recalibrate; returns (updated (N, K, d), attention (N, S, K, K))."""
        n, k, _ = messages.shape
        q = self._split_heads(messages.matmul(self.q), n, k)
        key = self._split_heads(messages.matmul(self.k), n, k)
        v = self._split_heads(messages.matmul(self.v), n, k)
        scale = float(np.sqrt(self.head_dim))
        scores = q.matmul(key.swapaxes(-1, -2)) * (1.0 / scale)      # (N, S, K, K)
        weights = F.softmax(scores, axis=-1)
        mixed = weights.matmul(v)                                    # (N, S, K, dh)
        merged = mixed.transpose(0, 2, 1, 3).reshape(n, k, self.dim)
        return merged + messages, weights


class GatedMessageAggregation(Module):
    """ψ(·): importance-weighted fusion over behavior types (Eq. 4–5).

    γ_k = w2ᵀ ReLU(W3 Ĥ_k + b2) + b3 per node, softmax over k, then the
    fused embedding is Σ_k γ̂_k Ĥ_k.
    """

    def __init__(self, dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.w3 = Parameter(init_schemes.xavier_uniform((hidden_dim, dim), rng), name="w3")
        self.b2 = Parameter(np.zeros(hidden_dim), name="b2")
        self.w2 = Parameter(init_schemes.xavier_uniform((hidden_dim,), rng), name="w2")
        self.b3 = Parameter(np.zeros(1), name="b3")

    def forward(self, messages: Tensor) -> tuple[Tensor, Tensor]:
        """Fuse (N, K, d) → (N, d); also returns the weights (N, K)."""
        hidden = (messages.matmul(self.w3.T) + self.b2).relu()       # (N, K, h)
        gamma = hidden.matmul(self.w2) + self.b3                     # (N, K)
        weights = F.softmax(gamma, axis=-1)
        n, k, d = messages.shape
        fused = (messages * weights.reshape(n, k, 1)).sum(axis=1)
        return fused, weights


class GNMRPropagationLayer(Module):
    """One full GNMR layer: η → ξ → ψ on both graph sides.

    The layer owns one set of η/ξ/ψ parameters shared between the user and
    item sides (messages flow items→users and users→items through the same
    transforms, as in the paper's symmetric formulation).

    Ablation flags reproduce the paper's §IV-C variants:
    ``use_behavior_embedding=False`` → GNMR-be (plain aggregation),
    ``use_message_attention=False`` → GNMR-ma (no cross-type attention).
    """

    def __init__(self, dim: int, memory_dims: int, num_heads: int,
                 rng: np.random.Generator,
                 use_behavior_embedding: bool = True,
                 use_message_attention: bool = True,
                 use_gated_aggregation: bool = True):
        super().__init__()
        self.use_behavior_embedding = use_behavior_embedding
        self.use_message_attention = use_message_attention
        self.use_gated_aggregation = use_gated_aggregation
        self.behavior_embedding = (
            BehaviorEmbeddingLayer(dim, memory_dims, rng)
            if use_behavior_embedding else None
        )
        self.attention = (
            CrossBehaviorAttention(dim, num_heads, rng)
            if use_message_attention else None
        )
        self.aggregation = (
            GatedMessageAggregation(dim, dim, rng)
            if use_gated_aggregation else None
        )

    def type_specific(self, stacked: Tensor) -> Tensor:
        """Apply η to a per-behavior message stack ``(N, K, d)``.

        The memory transforms are shared across behavior types, so the K
        per-type applications collapse into one batched pass over the
        flattened ``(N·K, d)`` messages.
        """
        if self.behavior_embedding is None:
            return stacked
        n, k, d = stacked.shape
        return self.behavior_embedding(stacked.reshape(n * k, d)).reshape(n, k, d)

    def forward(self, stacked: Tensor) -> Tensor:
        """Fuse a per-behavior message stack ``(N, K, d)`` into ``(N, d)``.

        The stack comes from
        :meth:`repro.graph.engine.PropagationEngine.propagate_user` /
        ``propagate_item`` (one fused SpMM for all K behaviors); this layer
        applies η → ξ → ψ on top.
        """
        stacked = self.type_specific(stacked)
        if self.attention is not None:
            stacked, _ = self.attention(stacked)
        if self.aggregation is not None:
            fused, _ = self.aggregation(stacked)
        else:
            fused = stacked.mean(axis=1)
        return fused

    def propagate_side(self, adjacencies: list[SparseAdjacency],
                       source: Tensor) -> Tensor:
        """Messages for one side from explicit per-behavior adjacencies.

        Convenience path (tests, ad-hoc use): aggregates with K separate
        SpMMs and defers to :meth:`forward`. Models go through the
        :class:`~repro.graph.engine.PropagationEngine`, which fuses the K
        products into one stacked SpMM instead.
        """
        per_type = [adjacency.matmul(source) for adjacency in adjacencies]
        return self.forward(stack(per_type, axis=1))

"""Autoencoder pre-training of the order-0 node embeddings (paper §III-A).

The paper initializes H⁰ "by leveraging Autoencoder-based pre-training
scheme [AutoRec] for generating low-dimensional representations based on
multi-behavior interaction tensor X". We reproduce that: a one-hidden-layer
autoencoder compresses each user's (behavior-weighted) interaction profile
over items to d dimensions, and symmetrically each item's profile over
users; the encoder outputs seed the embedding tables.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.tensor import Tensor


class AutoencoderPretrainer(Module):
    """One-hidden-layer autoencoder: x → σ(Wx+b) → W'h+b'.

    Trained with MSE on the full profile vectors (they are dense binary
    aggregates, so full reconstruction is the AutoRec objective with
    observed-everything weighting — appropriate for implicit data).
    """

    def __init__(self, input_dim: int, embedding_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.encoder = Linear(input_dim, embedding_dim, rng=rng)
        self.decoder = Linear(embedding_dim, input_dim, rng=rng)

    def encode(self, x: Tensor) -> Tensor:
        return self.encoder(x).sigmoid()

    def forward(self, x: Tensor) -> Tensor:
        return self.decoder(self.encode(x))

    def fit(self, profiles: np.ndarray, epochs: int, lr: float,
            batch_size: int, rng: np.random.Generator) -> list[float]:
        """Train; returns the per-epoch reconstruction losses."""
        optimizer = Adam(self.parameters(), lr=lr)
        losses: list[float] = []
        n = profiles.shape[0]
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch_size):
                rows = order[start:start + batch_size]
                x = Tensor(profiles[rows])
                recon = self(x)
                diff = recon - x
                loss = (diff * diff).mean()
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += float(loss.data) * len(rows)
            losses.append(epoch_loss / n)
        return losses

    def embeddings(self, profiles: np.ndarray) -> np.ndarray:
        """Encoder outputs, centered and variance-normalized for use as H⁰."""
        from repro.tensor import no_grad

        with no_grad():
            codes = self.encode(Tensor(profiles)).data
        codes = codes - codes.mean(axis=0, keepdims=True)
        std = codes.std()
        if std > 1e-8:
            codes = codes / (std * 10.0)  # small init scale, like xavier
        return codes


def _behavior_weighted_profiles(dataset: InteractionDataset) -> tuple[np.ndarray, np.ndarray]:
    """Compress X ∈ {0,1}^{I×J×K} to user (I×J) and item (J×I) profiles.

    Behaviors are weighted geometrically with the target behavior heaviest,
    so the profile keeps multi-behavior information in a single matrix.
    """
    from repro.tensor import get_default_dtype

    graph = dataset.graph()
    num_behaviors = dataset.num_behaviors
    user_profiles = np.zeros((dataset.num_users, dataset.num_items),
                             dtype=get_default_dtype())
    for k, behavior in enumerate(dataset.behavior_names):
        weight = 1.0 if behavior == dataset.target_behavior else 0.5 ** (num_behaviors - k)
        user_profiles += weight * graph.adjacency(behavior).to_dense()
    return user_profiles, user_profiles.T.copy()


def pretrain_embeddings(dataset: InteractionDataset, embedding_dim: int,
                        epochs: int = 30, lr: float = 1e-2,
                        batch_size: int = 64,
                        seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Produce (user_embeddings, item_embeddings) seeds for GNMR.

    Returns arrays of shape (I, d) and (J, d).
    """
    rng = np.random.default_rng(seed)
    user_profiles, item_profiles = _behavior_weighted_profiles(dataset)

    user_ae = AutoencoderPretrainer(dataset.num_items, embedding_dim, rng)
    user_ae.fit(user_profiles, epochs=epochs, lr=lr, batch_size=batch_size, rng=rng)
    item_ae = AutoencoderPretrainer(dataset.num_users, embedding_dim, rng)
    item_ae.fit(item_profiles, epochs=epochs, lr=lr, batch_size=batch_size, rng=rng)
    return user_ae.embeddings(user_profiles), item_ae.embeddings(item_profiles)

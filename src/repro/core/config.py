"""GNMR hyperparameter configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class GNMRConfig:
    """All GNMR knobs, defaulting to the paper's settings (§IV-A.4).

    Attributes
    ----------
    embedding_dim:
        d — node embedding size (paper: 16).
    memory_dims:
        C — latent dimensions of the memory neural module in η (paper: 8).
    num_heads:
        S — attention sub-spaces in ξ; must divide ``embedding_dim``.
    num_layers:
        L — propagation depth (paper's best: 2; Figure 3 sweeps 0–3).
    aggregator:
        Neighbor aggregation inside η: ``"mean"`` (degree-normalized, the
        numerically stable default) or ``"sum"`` (the literal Eq. 2).
    self_connection:
        Add the node's previous-order embedding to each propagated layer
        (H^{l+1} ← ψ(·) ⊕ H^l). This is the standard GNN self-loop (NGCF
        adds L+I; the paper's Figure 1 draws residual links between
        multi-order embeddings) and lets multi-order matching capture
        cross-order signals such as "this user already viewed this item".
    dropout:
        Message dropout rate applied after each propagation layer
        (default 0.2 — GNMR overfits sparse targets without it; NGCF
        uses the same device).
    use_behavior_embedding:
        False → the GNMR-be ablation (η replaced by plain aggregation).
    use_message_attention:
        False → the GNMR-ma ablation (ξ removed).
    use_gated_aggregation:
        False → uniform mean over behavior types instead of ψ.
    layer_combination:
        How multi-order embeddings are matched: ``"sum"`` adds the per-layer
        inner products; ``"mean"`` averages them.
    pretrain:
        Initialize node embeddings with the autoencoder scheme of §III-A.
    pretrain_epochs, pretrain_lr:
        Autoencoder pre-training schedule.
    fanout:
        The model's neighbor-sampling schedule for the sampled/async
        training paths: an ``int`` applied at every hop, ``None`` for no
        cap, or a per-hop schedule such as ``(10, 5)`` (GraphSAGE-style —
        first hop away from the seeds first). Applies whenever the caller
        doesn't pass a fanout explicitly — including trainer runs, since
        :class:`~repro.train.TrainConfig` defaults to ``fanout="model"``
        (defer to this knob); an explicit ``TrainConfig.fanout`` wins for
        that run.
    graph_behaviors:
        Behavior types whose edges participate in message passing; ``None``
        means all of the dataset's behaviors. Lets Table IV's "w/o like"
        variant remove the *target* behavior from propagation while still
        training/predicting it.
    use_side_features:
        Extension (the paper's stated future work): when the dataset
        carries ``user_features`` / ``item_features``, project them into
        the embedding space and add them to the order-0 embeddings.
    dtype:
        Compute precision of the whole model — parameters, adjacencies and
        propagation: ``"float64"`` (bit-reproducible default), ``"float32"``
        (the fast path: half the memory bandwidth on the SpMM-bound hot
        loops), or ``None`` to inherit the ambient tensor default dtype.
    shards:
        Partition the user/item embedding tables across K logical shards
        (:class:`~repro.shard.ShardedEmbedding`, parameter-server layout).
        ``None`` (default) keeps the plain unsharded tables; ``shards=1``
        runs the sharded machinery with one shard and bit-matches the
        unsharded float64 path; ``shards=K`` matches ``shards=1`` exactly
        under SGD and within documented tolerance under Adam (see
        ``docs/training.md``).
    shard_strategy:
        Row partitioning: ``"range"`` (contiguous row ranges) or
        ``"hash"`` (modulo — load-balances skewed id distributions).
    seed:
        Parameter initialization seed.
    """

    embedding_dim: int = 16
    memory_dims: int = 8
    num_heads: int = 2
    num_layers: int = 2
    aggregator: str = "mean"
    self_connection: bool = True
    dropout: float = 0.2
    use_behavior_embedding: bool = True
    use_message_attention: bool = True
    use_gated_aggregation: bool = True
    layer_combination: str = "sum"
    fanout: int | tuple[int | None, ...] | None = 10
    pretrain: bool = True
    pretrain_epochs: int = 30
    pretrain_lr: float = 1e-2
    graph_behaviors: tuple[str, ...] | None = None
    use_side_features: bool = False
    dtype: str | None = "float64"
    shards: int | None = None
    shard_strategy: str = "range"
    seed: int = 0

    def __post_init__(self):
        if self.dtype is not None and self.dtype not in ("float32", "float64"):
            raise ValueError("dtype must be 'float32', 'float64', or None")
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be >= 1 (or None for unsharded)")
        from repro.shard import STRATEGIES

        if self.shard_strategy not in STRATEGIES:
            raise ValueError(f"shard_strategy must be one of {STRATEGIES}")
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if self.num_heads <= 0 or self.embedding_dim % self.num_heads != 0:
            raise ValueError("num_heads must divide embedding_dim")
        if self.memory_dims <= 0:
            raise ValueError("memory_dims must be positive")
        if self.num_layers < 0:
            raise ValueError("num_layers must be >= 0")
        if self.aggregator not in ("mean", "sum"):
            raise ValueError("aggregator must be 'mean' or 'sum'")
        if self.layer_combination not in ("sum", "mean"):
            raise ValueError("layer_combination must be 'sum' or 'mean'")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        from repro.graph.subgraph import resolve_fanout, validate_fanout

        validate_fanout(self.fanout)
        if isinstance(self.fanout, (list, tuple)):
            # both knobs live here, so a schedule/num_layers mismatch can
            # fail at construction instead of mid-training (async mode
            # would otherwise surface it from a background worker)
            resolve_fanout(self.fanout, self.num_layers)

    def variant(self, **overrides) -> "GNMRConfig":
        """Copy with some fields replaced (used heavily by the ablations)."""
        from dataclasses import replace

        return replace(self, **overrides)

"""The GNMR recommender (paper §III, Figure 1).

Full-graph propagation: starting from (pre-trained) order-0 embeddings, L
:class:`~repro.core.layers.GNMRPropagationLayer` applications produce
multi-order user/item embeddings H⁰..H^L; the preference score is the
multi-order matching Σ_l H^l_u · H^l_v, trained with the pairwise hinge
loss of Eq. (7).

All adjacency handling, the fused multi-behavior SpMM, and the propagation
cache live in the shared :class:`~repro.graph.engine.PropagationEngine`;
this class owns the parameters and the multi-order matching. Precision is
governed by ``config.dtype`` — float64 for bit-reproducible runs, float32
for the bandwidth-bound fast path.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import GNMRConfig
from repro.core.layers import GNMRPropagationLayer
from repro.core.pretrain import pretrain_embeddings
from repro.data.dataset import InteractionDataset
from repro.graph.engine import PropagationEngine
from repro.models.base import Recommender
from repro.nn import init as init_schemes
from repro.nn.layers import Dropout
from repro.nn.module import ModuleList, Parameter
from repro.shard import ShardedEmbedding, table_rows, table_tensor
from repro.tensor import Tensor, default_dtype, no_grad

#: sentinel meaning "use ``config.fanout``" — ``None`` already means "no cap"
_CONFIG_FANOUT = object()


class GNMR(Recommender):
    """Graph Neural Multi-Behavior Enhanced Recommendation.

    Parameters
    ----------
    dataset:
        Training dataset; its interaction graph defines the propagation
        structure and its ``target_behavior`` the prediction task.
    config:
        Hyperparameters (see :class:`~repro.core.config.GNMRConfig`).

    Notes
    -----
    The ablations of §IV-C/D/E map to configuration, not separate classes:

    * GNMR-be — ``config.variant(use_behavior_embedding=False)``;
    * GNMR-ma — ``config.variant(use_message_attention=False)``;
    * depth sweep — ``config.variant(num_layers=L)``;
    * behavior subsets — ``dataset.drop_behaviors([...])`` / ``only_target()``;
    * fast path — ``config.variant(dtype="float32")``.
    """

    name = "GNMR"

    def __init__(self, dataset: InteractionDataset, config: GNMRConfig | None = None):
        super().__init__(dataset.num_users, dataset.num_items)
        self.config = config or GNMRConfig()
        self.dataset = dataset
        cfg = self.config
        if cfg.graph_behaviors is None:
            self.behavior_names = dataset.behavior_names
        else:
            unknown = set(cfg.graph_behaviors) - set(dataset.behavior_names)
            if unknown:
                raise ValueError(f"graph_behaviors not in dataset: {sorted(unknown)}")
            self.behavior_names = tuple(cfg.graph_behaviors)

        with default_dtype(cfg.dtype):  # None → ambient default
            self._build(dataset, cfg)

    def _build(self, dataset: InteractionDataset, cfg: GNMRConfig) -> None:
        """Construct engine, embeddings and layers under the dtype scope."""
        rng = np.random.default_rng(cfg.seed)
        self.engine = PropagationEngine(
            dataset.graph(),
            behaviors=self.behavior_names,
            normalization="row" if cfg.aggregator == "mean" else None,
        )

        # order-0 embeddings (autoencoder pre-training per §III-A)
        if cfg.pretrain:
            user_init, item_init = pretrain_embeddings(
                dataset, cfg.embedding_dim, epochs=cfg.pretrain_epochs,
                lr=cfg.pretrain_lr, seed=cfg.seed,
            )
        else:
            user_init = init_schemes.xavier_normal((self.num_users, cfg.embedding_dim), rng)
            item_init = init_schemes.xavier_normal((self.num_items, cfg.embedding_dim), rng)
        if cfg.shards is None:
            self.user_embeddings = Parameter(user_init, name="user_embeddings")
            self.item_embeddings = Parameter(item_init, name="item_embeddings")
        else:
            # parameter-server layout: the same init arrays, sliced row-wise
            # into shard-local tables (shards=1 bit-matches the plain path)
            self.user_embeddings = ShardedEmbedding(
                user_init, num_shards=cfg.shards,
                strategy=cfg.shard_strategy, name="user_embeddings")
            self.item_embeddings = ShardedEmbedding(
                item_init, num_shards=cfg.shards,
                strategy=cfg.shard_strategy, name="item_embeddings")

        # optional attribute extension (paper's future work): project side
        # features into the embedding space and add them at order 0
        self.user_feature_proj = None
        self.item_feature_proj = None
        self._user_feature_input: Tensor | None = None
        self._item_feature_input: Tensor | None = None
        if cfg.use_side_features:
            if dataset.user_features is None or dataset.item_features is None:
                raise ValueError("use_side_features requires dataset features "
                                 "(see repro.data.synthesize_attributes)")
            from repro.nn.layers import Linear

            self.user_feature_proj = Linear(dataset.user_features.shape[1],
                                            cfg.embedding_dim, rng=rng)
            self.item_feature_proj = Linear(dataset.item_features.shape[1],
                                            cfg.embedding_dim, rng=rng)
            self._user_feature_input = Tensor(dataset.user_features,
                                              dtype=self.engine.dtype)
            self._item_feature_input = Tensor(dataset.item_features,
                                              dtype=self.engine.dtype)

        self.layers = ModuleList([
            GNMRPropagationLayer(
                cfg.embedding_dim, cfg.memory_dims, cfg.num_heads, rng,
                use_behavior_embedding=cfg.use_behavior_embedding,
                use_message_attention=cfg.use_message_attention,
                use_gated_aggregation=cfg.use_gated_aggregation,
            )
            for _ in range(cfg.num_layers)
        ])
        self.dropout = Dropout(cfg.dropout, rng=rng) if cfg.dropout > 0 else None

    # ------------------------------------------------------------------
    # compatibility views (per-behavior adjacency lists live on the engine)
    # ------------------------------------------------------------------
    @property
    def _user_adjacencies(self):
        return self.engine.user_adjacencies

    @property
    def _item_adjacencies(self):
        return self.engine.item_adjacencies

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------
    def _order0(self) -> tuple[Tensor, Tensor]:
        """Order-0 embeddings, with projected side features when enabled."""
        h_user: Tensor = table_tensor(self.user_embeddings)
        h_item: Tensor = table_tensor(self.item_embeddings)
        if self.user_feature_proj is not None:
            h_user = h_user + self.user_feature_proj(self._user_feature_input)
            h_item = h_item + self.item_feature_proj(self._item_feature_input)
        return h_user, h_item

    def _run_layer_stack(self, h_user: Tensor, h_item: Tensor,
                         propagate_user, propagate_item,
                         restrict_user, restrict_item,
                         ) -> tuple[list[Tensor], list[Tensor]]:
        """The one L-layer η/ξ/ψ loop behind every propagation mode.

        ``propagate_*(level, h)`` produces the level's ``(n, K, d)``
        message stack; ``restrict_*(level, h)`` maps the previous level's
        tensor onto the rows the next level keeps (identity for full-graph
        and monolithic blocks, a row gather for shrinking layered blocks).
        Full, sampled, and async paths share this loop by construction —
        change the layer recipe here and every mode follows.
        """
        user_layers: list[Tensor] = [h_user]
        item_layers: list[Tensor] = [h_item]
        for level, layer in enumerate(self.layers):
            next_user = layer(propagate_user(level, h_item))
            next_item = layer(propagate_item(level, h_user))
            if self.config.self_connection:
                next_user = next_user + restrict_user(level, h_user)
                next_item = next_item + restrict_item(level, h_item)
            if self.dropout is not None:
                next_user = self.dropout(next_user)
                next_item = self.dropout(next_item)
            user_layers.append(next_user)
            item_layers.append(next_item)
            h_user, h_item = next_user, next_item
        return user_layers, item_layers

    def _propagate_layers(self, propagator, h_user: Tensor,
                          h_item: Tensor) -> tuple[list[Tensor], list[Tensor]]:
        """Layer stack over a level-uniform propagation provider.

        ``propagator`` is either the full-graph engine or a sampled
        :class:`~repro.graph.subgraph.SubgraphBlock` — both expose the same
        ``propagate_user`` / ``propagate_item`` ``(n, K, d)`` contract at
        every level, with no row restriction between levels.
        """
        return self._run_layer_stack(
            h_user, h_item,
            lambda level, h: propagator.propagate_user(h),
            lambda level, h: propagator.propagate_item(h),
            lambda level, h: h,
            lambda level, h: h)

    def propagate(self) -> tuple[list[Tensor], list[Tensor]]:
        """Compute multi-order embeddings [H⁰..H^L] for users and items."""
        h_user, h_item = self._order0()
        return self._propagate_layers(self.engine, h_user, h_item)

    def _match(self, user_layers: list[Tensor], item_layers: list[Tensor],
               users: np.ndarray, items: np.ndarray) -> Tensor:
        """Multi-order matching: Σ_l ⟨H^l_u, H^l_v⟩ for index pairs."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        total: Tensor | None = None
        for h_user, h_item in zip(user_layers, item_layers):
            picked_u = h_user.gather_rows(users)
            picked_v = h_item.gather_rows(items)
            dot = (picked_u * picked_v).sum(axis=1)
            total = dot if total is None else total + dot
        if self.config.layer_combination == "mean":
            total = total * (1.0 / (self.config.num_layers + 1))
        return total

    # ------------------------------------------------------------------
    # Recommender interface
    # ------------------------------------------------------------------
    def score_tensor(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        user_layers, item_layers = self.propagate()
        return self._match(user_layers, item_layers, users, items)

    def batch_scores(self, users: np.ndarray, pos_items: np.ndarray,
                     neg_items: np.ndarray) -> tuple[Tensor, Tensor]:
        """One propagation pass shared by the positive and negative sides."""
        user_layers, item_layers = self.propagate()
        pos = self._match(user_layers, item_layers, users, pos_items)
        neg = self._match(user_layers, item_layers, users, neg_items)
        return pos, neg

    # ------------------------------------------------------------------
    # sampled (mini-batch) propagation
    # ------------------------------------------------------------------
    def _order0_rows(self, block) -> tuple[Tensor, Tensor]:
        """Order-0 embeddings of the block's nodes, gathered row-sparsely.

        ``embedding_rows`` makes the backward pass emit a
        :class:`~repro.tensor.RowSparseGrad` holding only the block rows,
        so Adam's per-step work scales with the subgraph, not the tables.
        """
        h_user = table_rows(self.user_embeddings, block.users)
        h_item = table_rows(self.item_embeddings, block.items)
        if self.user_feature_proj is not None:
            h_user = h_user + self.user_feature_proj(
                Tensor(self._user_feature_input.data[block.users],
                       dtype=self.engine.dtype))
            h_item = h_item + self.item_feature_proj(
                Tensor(self._item_feature_input.data[block.items],
                       dtype=self.engine.dtype))
        return h_user, h_item

    def propagate_block(self, block) -> tuple[list[Tensor], list[Tensor]]:
        """Multi-order embeddings [H⁰..H^L] over a sampled subgraph block."""
        h_user, h_item = self._order0_rows(block)
        return self._propagate_layers(block, h_user, h_item)

    def sampled_batch_scores(self, users: np.ndarray, pos_items: np.ndarray,
                             neg_items: np.ndarray, *,
                             fanout=_CONFIG_FANOUT,
                             rng: np.random.Generator | None = None,
                             ) -> tuple[Tensor, Tensor]:
        """Batch scores from L-layer propagation over a sampled block only.

        Seeds are the batch users plus their positive/negative items; the
        engine expands them L hops with per-(node, behavior) fanout caps
        (scalar or per-hop schedule; defaults to ``config.fanout``) and the
        usual layer stack runs on the induced block. Step cost scales with
        ``batch × fanout^L`` instead of the graph size.
        """
        if fanout is _CONFIG_FANOUT:
            fanout = self.config.fanout
        users = np.asarray(users, dtype=np.int64)
        pos_items = np.asarray(pos_items, dtype=np.int64)
        neg_items = np.asarray(neg_items, dtype=np.int64)
        block = self.engine.subgraph(
            users, np.concatenate([pos_items, neg_items]),
            hops=self.config.num_layers, fanout=fanout, rng=rng)
        user_layers, item_layers = self.propagate_block(block)
        local_users = block.localize_users(users)
        pos = self._match(user_layers, item_layers, local_users,
                          block.localize_items(pos_items))
        neg = self._match(user_layers, item_layers, local_users,
                          block.localize_items(neg_items))
        return pos, neg

    # ------------------------------------------------------------------
    # layered (async-pipeline) propagation
    # ------------------------------------------------------------------
    def extract_block(self, users: np.ndarray, pos_items: np.ndarray,
                      neg_items: np.ndarray, *, fanout=_CONFIG_FANOUT,
                      rng: np.random.Generator | None = None):
        """Prefetchable per-hop :class:`~repro.graph.LayeredBlock`.

        Pure graph work — no parameters are read — so the training pipeline
        runs it on a background worker while the optimizer applies the
        previous step. :meth:`block_batch_scores` consumes the result.
        """
        if fanout is _CONFIG_FANOUT:
            fanout = self.config.fanout
        users = np.asarray(users, dtype=np.int64)
        seed_items = np.concatenate([
            np.asarray(pos_items, dtype=np.int64),
            np.asarray(neg_items, dtype=np.int64)])
        return self.engine.layered_subgraph(
            users, seed_items, hops=self.config.num_layers,
            fanout=fanout, rng=rng)

    def propagate_layered(self, block) -> tuple[list[Tensor], list[Tensor]]:
        """Seed-focused multi-order embeddings over per-hop blocks.

        Level-``l`` tensors live on ``block.user_levels[l]`` /
        ``block.item_levels[l]`` — each layer computes only the rows the
        next one aggregates, down to the seeds, instead of re-evaluating
        the whole sampled node set at every order.
        """
        h_user = table_rows(self.user_embeddings, block.user_levels[0])
        h_item = table_rows(self.item_embeddings, block.item_levels[0])
        if self.user_feature_proj is not None:
            h_user = h_user + self.user_feature_proj(
                Tensor(self._user_feature_input.data[block.user_levels[0]],
                       dtype=self.engine.dtype))
            h_item = h_item + self.item_feature_proj(
                Tensor(self._item_feature_input.data[block.item_levels[0]],
                       dtype=self.engine.dtype))
        return self._run_layer_stack(
            h_user, h_item,
            lambda level, h: block.user_hops[level].propagate(h),
            lambda level, h: block.item_hops[level].propagate(h),
            lambda level, h: h.gather_rows(block.restrict_users(level + 1)),
            lambda level, h: h.gather_rows(block.restrict_items(level + 1)))

    def block_batch_scores(self, users: np.ndarray, pos_items: np.ndarray,
                           neg_items: np.ndarray, block,
                           ) -> tuple[Tensor, Tensor]:
        """Batch scores over a prefetched layered block.

        The multi-order matching gathers each order's seed rows from its
        own (shrinking) level tensor; level ``L`` already holds seeds only.
        """
        users = np.asarray(users, dtype=np.int64)
        pos_items = np.asarray(pos_items, dtype=np.int64)
        neg_items = np.asarray(neg_items, dtype=np.int64)
        user_layers, item_layers = self.propagate_layered(block)

        def match(items: np.ndarray) -> Tensor:
            total: Tensor | None = None
            for level, (h_user, h_item) in enumerate(zip(user_layers,
                                                         item_layers)):
                picked_u = h_user.gather_rows(block.localize_users(level, users))
                picked_v = h_item.gather_rows(block.localize_items(level, items))
                dot = (picked_u * picked_v).sum(axis=1)
                total = dot if total is None else total + dot
            if self.config.layer_combination == "mean":
                total = total * (1.0 / (self.config.num_layers + 1))
            return total

        return match(pos_items), match(neg_items)

    def l2_batch(self, users: np.ndarray, pos_items: np.ndarray,
                 neg_items: np.ndarray, weight: float) -> Tensor:
        """λ‖Θ_batch‖²: batch embedding rows + the always-touched layers."""
        return self._embedding_l2_batch(self.user_embeddings,
                                        self.item_embeddings,
                                        users, pos_items, neg_items, weight)

    def score(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Inference scores using engine-cached propagated embeddings."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        user_arrays, item_arrays = self._propagated_arrays()
        total = np.zeros(users.shape, dtype=user_arrays[0].dtype)
        for hu, hv in zip(user_arrays, item_arrays):
            total += np.sum(hu[users] * hv[items], axis=1)
        if self.config.layer_combination == "mean":
            total /= (self.config.num_layers + 1)
        return total

    def _propagated_arrays(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Forward-propagated embedding tables, cached per engine version."""
        def compute():
            was_training = self.training
            if was_training:
                self.eval()  # dropout must be off for cached inference
            try:
                with no_grad():
                    user_layers, item_layers = self.propagate()
            finally:
                if was_training:
                    self.train()
            return ([t.data for t in user_layers], [t.data for t in item_layers])

        return self.engine.cached("gnmr.layers", compute)

    def serving_embeddings(self) -> tuple[np.ndarray, np.ndarray]:
        """Multi-order embeddings concatenated into one serving table pair.

        Σ_l ⟨H^l_u, H^l_v⟩ equals ⟨concat_l H^l_u, concat_l H^l_v⟩, so the
        full multi-order matching collapses to a single inner product —
        exactly what the blocked top-K retriever needs. The concatenation
        is memoized on the engine alongside the propagated layers, so
        repeated snapshots between training steps are free. The ``mean``
        layer combination folds its 1/(L+1) factor into the user side.
        """
        def compute():
            user_arrays, item_arrays = self._propagated_arrays()
            user_matrix = np.concatenate(user_arrays, axis=1)
            item_matrix = np.concatenate(item_arrays, axis=1)
            if self.config.layer_combination == "mean":
                user_matrix = user_matrix / (self.config.num_layers + 1)
            return user_matrix, item_matrix

        return self.engine.cached("gnmr.serving", compute)

    def cold_user_embeddings(self, users: np.ndarray) -> np.ndarray:
        """Serving rows for a few users, freshly extracted on demand.

        Single-seed layered extraction (``fanout=None`` → the exact
        backward neighborhood, no sampling) followed by the usual layer
        stack computes just these users' multi-order rows from the
        *current* parameters — matching the corresponding rows of
        :meth:`serving_embeddings` after the next snapshot to within a
        float64 ulp (the sliced-CSR hop kernels may sum a row in a
        different order than the fused full-graph SpMM), at the cost of
        one L-hop neighborhood instead of the whole graph. This is the
        serving tier's cold-user path: users who entered the graph after
        the last snapshot get a real embedding instead of waiting.
        """
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        block = self.engine.layered_subgraph(
            users, np.empty(0, dtype=np.int64),
            hops=self.config.num_layers, fanout=None)
        was_training = self.training
        if was_training:
            self.eval()  # dropout must be off, matching cached inference
        try:
            with no_grad():
                user_layers, _ = self.propagate_layered(block)
        finally:
            if was_training:
                self.train()
        rows = [h.data[block.localize_users(level, users)]
                for level, h in enumerate(user_layers)]
        matrix = np.concatenate(rows, axis=1)
        if self.config.layer_combination == "mean":
            matrix = matrix / (self.config.num_layers + 1)
        return matrix

    def on_step_end(self) -> None:
        """Parameters changed — drop the cached propagation."""
        self.engine.invalidate()

    # ------------------------------------------------------------------
    # introspection (used by examples and tests)
    # ------------------------------------------------------------------
    def _first_layer_stack(self) -> Tensor:
        """η-transformed first-layer user-side messages ``(I, K, d)``."""
        return self.layers[0].type_specific(
            self.engine.propagate_user(table_tensor(self.item_embeddings)))

    def behavior_attention(self) -> np.ndarray:
        """Average cross-behavior attention matrix of the first layer.

        Returns an array of shape (K, K) — how much each behavior type
        attends to each other when recalibrating messages; useful for
        inspecting learned behavior dependencies.
        """
        if not self.layers or self.layers[0].attention is None:
            raise RuntimeError("model has no attention layer (GNMR-ma or 0 layers)")
        with no_grad():
            _, weights = self.layers[0].attention(self._first_layer_stack())
        return weights.data.mean(axis=(0, 1))

    def behavior_importance(self) -> np.ndarray:
        """Average ψ gate weights per behavior type (K,) on the user side."""
        if not self.layers or self.layers[0].aggregation is None:
            raise RuntimeError("model has no gated aggregation")
        with no_grad():
            layer = self.layers[0]
            stacked = self._first_layer_stack()
            if layer.attention is not None:
                stacked, _ = layer.attention(stacked)
            _, weights = layer.aggregation(stacked)
        return weights.data.mean(axis=0)

"""GNMR — the paper's primary contribution.

The model is assembled from three layers (paper §III):

* :class:`~repro.core.layers.BehaviorEmbeddingLayer` — η(·), the
  memory-gated type-specific message constructor (Eq. 2);
* :class:`~repro.core.layers.CrossBehaviorAttention` — ξ(·), multi-head
  attention over behavior types (Eq. 3);
* :class:`~repro.core.layers.GatedMessageAggregation` — ψ(·), the
  importance-weighted fusion across behavior types (Eq. 4–5);

stacked L times by :class:`~repro.core.gnmr.GNMR`, scored by multi-order
matching, trained with the pairwise hinge loss (Eq. 7), and initialized by
the autoencoder pre-training scheme in :mod:`repro.core.pretrain`.
"""

from repro.core.config import GNMRConfig
from repro.core.gnmr import GNMR
from repro.core.layers import (
    BehaviorEmbeddingLayer,
    CrossBehaviorAttention,
    GatedMessageAggregation,
    GNMRPropagationLayer,
)
from repro.core.pretrain import AutoencoderPretrainer, pretrain_embeddings

__all__ = [
    "GNMR",
    "GNMRConfig",
    "BehaviorEmbeddingLayer",
    "CrossBehaviorAttention",
    "GatedMessageAggregation",
    "GNMRPropagationLayer",
    "AutoencoderPretrainer",
    "pretrain_embeddings",
]

"""AutoRec baseline (Sedhain et al., WWW 2015).

User-based AutoRec: an autoencoder reconstructs each user's target-behavior
interaction vector; the reconstructed value at item i is the preference
score. Trained with the reconstruction objective (not the pairwise loss),
so :meth:`fit` is overridden.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.models.base import Recommender
from repro.nn.layers import Linear
from repro.nn.optim import Adam
from repro.nn.losses import l2_regularization
from repro.tensor import Tensor, no_grad
from repro.train.callbacks import HistoryRecorder
from repro.train.trainer import TrainConfig


class AutoRec(Recommender):
    """U-AutoRec: h(x) = W' σ(W x + b) + b' with MSE reconstruction."""

    name = "AutoRec"

    def __init__(self, dataset: InteractionDataset, hidden_dim: int = 32,
                 seed: int = 0):
        super().__init__(dataset.num_users, dataset.num_items)
        rng = np.random.default_rng(seed)
        matrix = dataset.graph().adjacency(dataset.target_behavior).to_dense()
        self._profiles = matrix
        self.encoder = Linear(self.num_items, hidden_dim, rng=rng)
        self.decoder = Linear(hidden_dim, self.num_items, rng=rng)
        self._recon_cache: np.ndarray | None = None

    def forward(self, x: Tensor) -> Tensor:
        return self.decoder(self.encoder(x).sigmoid())

    # ------------------------------------------------------------------
    def fit(self, train: InteractionDataset, config: TrainConfig | None = None,
            eval_fn=None) -> HistoryRecorder:
        """Reconstruction training over user profiles."""
        config = config or TrainConfig()
        rng = np.random.default_rng(config.seed)
        optimizer = Adam(self.parameters(), lr=config.lr)
        history = HistoryRecorder()
        batch = max(8, config.batch_users)
        self.train()
        for epoch in range(config.epochs):
            order = rng.permutation(self.num_users)
            total = 0.0
            for start in range(0, self.num_users, batch):
                rows = order[start:start + batch]
                x = Tensor(self._profiles[rows])
                recon = self(x)
                diff = recon - x
                # implicit-feedback weighting: positives weighted higher
                weights = Tensor(1.0 + 4.0 * self._profiles[rows])
                loss = (weights * diff * diff).mean()
                loss = loss + l2_regularization(self.parameters(), config.l2_weight)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                total += float(loss.data) * len(rows)
            self._recon_cache = None
            record = {"epoch": epoch, "loss": total / self.num_users}
            if eval_fn is not None:
                self.eval()
                record["metric"] = float(eval_fn())
                self.train()
            history.record(**record)
        self.eval()
        self._recon_cache = None
        return history

    # ------------------------------------------------------------------
    def _reconstruction(self) -> np.ndarray:
        if self._recon_cache is None:
            with no_grad():
                self._recon_cache = self(Tensor(self._profiles)).data
        return self._recon_cache

    def score_tensor(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        recon = self(Tensor(self._profiles[users]))
        return recon[np.arange(users.size), items]

    def score(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        return self._reconstruction()[users, items]

    def on_step_end(self) -> None:
        self._recon_cache = None

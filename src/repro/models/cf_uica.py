"""CF-UIcA baseline (Du et al., AAAI 2018).

User–Item Co-Autoregression: the score of (u, i) combines two
autoregressive conditionals — over the user's item history and over the
item's user history — so collaborative signal flows along both axes:

``score(u, i) = V_i · tanh(c + Σ_{j∈hist(u)\\{i}} W_j)
              + U_u · tanh(d + Σ_{v∈hist(i)\\{u}} Z_v)``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import InteractionDataset
from repro.models.base import Recommender
from repro.nn import init as init_schemes
from repro.nn.module import Parameter
from repro.tensor import Tensor
from repro.tensor.sparse import SparseAdjacency


class CFUIcA(Recommender):
    """Co-autoregressive collaborative filtering."""

    name = "CF-UIcA"

    def __init__(self, dataset: InteractionDataset, hidden_dim: int = 32,
                 seed: int = 0):
        super().__init__(dataset.num_users, dataset.num_items)
        rng = np.random.default_rng(seed)
        graph = dataset.graph()
        self._user_histories: list[np.ndarray] = [
            graph.user_items(dataset.target_behavior, u) for u in range(self.num_users)
        ]
        matrix_t = graph.adjacency(dataset.target_behavior).matrix.T.tocsr()
        self._item_histories: list[np.ndarray] = [
            matrix_t.indices[matrix_t.indptr[i]:matrix_t.indptr[i + 1]]
            for i in range(self.num_items)
        ]
        # user-axis autoregression parameters
        self.w_item = Parameter(
            init_schemes.normal((self.num_items, hidden_dim), rng, std=0.05), name="W")
        self.c_user = Parameter(np.zeros(hidden_dim), name="c")
        self.v_item = Parameter(
            init_schemes.normal((self.num_items, hidden_dim), rng, std=0.05), name="V")
        # item-axis autoregression parameters
        self.z_user = Parameter(
            init_schemes.normal((self.num_users, hidden_dim), rng, std=0.05), name="Z")
        self.d_item = Parameter(np.zeros(hidden_dim), name="d")
        self.u_user = Parameter(
            init_schemes.normal((self.num_users, hidden_dim), rng, std=0.05), name="U")
        self.bias = Parameter(np.zeros(self.num_items), name="b")

    def _conditioned_hidden(self, table: Parameter, bias: Parameter,
                            histories: list[np.ndarray], anchors: np.ndarray,
                            exclude: np.ndarray) -> Tensor:
        """tanh(bias + Σ history rows), excluding the predicted partner."""
        anchors = np.asarray(anchors, dtype=np.int64)
        picked: list[np.ndarray] = []
        lengths: list[int] = []
        for row, anchor in enumerate(anchors):
            history = histories[int(anchor)]
            history = history[history != exclude[row]]
            picked.append(history)
            lengths.append(history.size)
        if sum(lengths) == 0:
            ones = Tensor(np.ones((anchors.size, 1)))
            return (bias * ones).tanh()
        flat = np.concatenate([h for h in picked if h.size])
        rows = table.gather_rows(flat)
        segment = np.repeat(np.arange(anchors.size), lengths)
        scatter = sp.csr_matrix(
            (np.ones(segment.size), (segment, np.arange(segment.size))),
            shape=(anchors.size, segment.size),
        )
        summed = SparseAdjacency(scatter).matmul(rows)
        return (summed + bias).tanh()

    def score_tensor(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        user_hidden = self._conditioned_hidden(
            self.w_item, self.c_user, self._user_histories, users, items)
        item_hidden = self._conditioned_hidden(
            self.z_user, self.d_item, self._item_histories, items, users)
        user_term = (user_hidden * self.v_item.gather_rows(items)).sum(axis=1)
        item_term = (item_hidden * self.u_user.gather_rows(users)).sum(axis=1)
        return user_term + item_term + self.b_lookup(items)

    def b_lookup(self, items: np.ndarray) -> Tensor:
        return self.bias.gather_rows(items)

"""NMTR baseline (Gao et al., ICDE 2019).

Neural Multi-Task Recommendation: one shared embedding layer; one NCF-style
interaction function per behavior type; predictions are *cascaded* along
the behavior funnel — the logit for behavior k adds the logit for behavior
k−1, encoding "later behaviors presuppose earlier ones". Training is
multi-task: a pairwise loss per behavior, weighted and summed, so the
:meth:`fit` is overridden to sample batches per behavior.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.graph.sampling import NegativeSampler, sample_pairwise_batch
from repro.models.base import Recommender
from repro.nn.layers import Embedding, Linear
from repro.nn.losses import l2_regularization, pairwise_hinge_loss
from repro.nn.module import ModuleList
from repro.nn.optim import Adam
from repro.nn.schedulers import ExponentialDecay
from repro.tensor import Tensor
from repro.train.callbacks import HistoryRecorder
from repro.train.trainer import TrainConfig


class NMTR(Recommender):
    """Cascaded multi-task NCF over behavior types."""

    name = "NMTR"

    def __init__(self, dataset: InteractionDataset, embedding_dim: int = 16,
                 seed: int = 0, task_weights: list[float] | None = None):
        super().__init__(dataset.num_users, dataset.num_items)
        rng = np.random.default_rng(seed)
        self.behavior_names = dataset.behavior_names
        self.target_behavior = dataset.target_behavior
        self._target_index = self.behavior_names.index(self.target_behavior)
        self.user_embeddings = Embedding(self.num_users, embedding_dim, rng=rng)
        self.item_embeddings = Embedding(self.num_items, embedding_dim, rng=rng)
        # per-behavior GMF-style interaction head
        self.heads = ModuleList([
            Linear(embedding_dim, 1, rng=rng) for _ in self.behavior_names
        ])
        if task_weights is None:
            task_weights = [1.0] * len(self.behavior_names)
        if len(task_weights) != len(self.behavior_names):
            raise ValueError("task_weights must match the number of behaviors")
        self.task_weights = list(task_weights)

    # ------------------------------------------------------------------
    def _cascaded_logits(self, users: np.ndarray, items: np.ndarray,
                         upto: int) -> Tensor:
        """Logit of behavior ``upto`` = Σ_{k ≤ upto} head_k(p ⊙ q)."""
        p = self.user_embeddings(users)
        q = self.item_embeddings(items)
        product = p * q
        total: Tensor | None = None
        for k in range(upto + 1):
            logit = self.heads[k](product).squeeze(-1)
            total = logit if total is None else total + logit
        return total

    def score_tensor(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        return self._cascaded_logits(np.asarray(users), np.asarray(items),
                                     self._target_index)

    # ------------------------------------------------------------------
    def fit(self, train: InteractionDataset, config: TrainConfig | None = None,
            eval_fn=None) -> HistoryRecorder:
        """Multi-task pairwise training across all behavior types."""
        config = config or TrainConfig()
        rng = np.random.default_rng(config.seed)
        graph = train.graph()
        samplers = {b: NegativeSampler(graph, b) for b in self.behavior_names}
        eligible = {
            b: np.flatnonzero(graph.user_degree(b) > 0) for b in self.behavior_names
        }
        optimizer = Adam(self.parameters(), lr=config.lr)
        scheduler = ExponentialDecay(optimizer, rate=config.lr_decay)
        history = HistoryRecorder()

        self.train()
        for epoch in range(config.epochs):
            total_loss = 0.0
            count = 0
            for _ in range(config.steps_per_epoch):
                loss: Tensor | None = None
                for k, behavior in enumerate(self.behavior_names):
                    if eligible[behavior].size == 0:
                        continue
                    batch = sample_pairwise_batch(
                        graph, behavior, samplers[behavior],
                        config.batch_users, config.per_user, rng,
                        eligible_users=eligible[behavior],
                    )
                    if len(batch) == 0:
                        continue
                    pos = self._cascaded_logits(batch.users, batch.pos_items, k)
                    neg = self._cascaded_logits(batch.users, batch.neg_items, k)
                    task_loss = pairwise_hinge_loss(pos, neg, margin=config.margin)
                    task_loss = task_loss * self.task_weights[k]
                    loss = task_loss if loss is None else loss + task_loss
                    count += len(batch)
                if loss is None:
                    continue
                loss = loss + l2_regularization(self.parameters(), config.l2_weight)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                total_loss += float(loss.data)
            lr = scheduler.step()
            record = {"epoch": epoch, "loss": total_loss / max(count, 1), "lr": lr}
            if eval_fn is not None:
                self.eval()
                record["metric"] = float(eval_fn())
                self.train()
            history.record(**record)
        self.eval()
        return history

"""All baseline recommenders from the paper's Table II, plus the shared
:class:`~repro.models.base.Recommender` interface.

=============  =========================================================
Model          Source
=============  =========================================================
BiasMF         Koren et al., Computer 2009
DMF            Xue et al., IJCAI 2017
NCF-G/M/N      He et al., WWW 2017 (GMF / MLP / NeuMF variants)
AutoRec        Sedhain et al., WWW 2015
CDAE           Wu et al., WSDM 2016
NADE           Zheng et al., ICML 2016 (CF-NADE style)
CF-UIcA        Du et al., AAAI 2018
NGCF           Wang et al., SIGIR 2019
NMTR           Gao et al., ICDE 2019 (multi-behavior, cascaded)
DIPN           Guo et al., KDD 2019 (multi-behavior, sequential)
=============  =========================================================

GNMR itself lives in :mod:`repro.core`.
"""

from repro.models.base import Recommender
from repro.models.biasmf import BiasMF
from repro.models.dmf import DMF
from repro.models.ncf import NCFGMF, NCFMLP, NeuMF
from repro.models.autorec import AutoRec
from repro.models.cdae import CDAE
from repro.models.nade import NADE
from repro.models.cf_uica import CFUIcA
from repro.models.ngcf import NGCF
from repro.models.nmtr import NMTR
from repro.models.dipn import DIPN

__all__ = [
    "Recommender",
    "BiasMF",
    "DMF",
    "NCFGMF",
    "NCFMLP",
    "NeuMF",
    "AutoRec",
    "CDAE",
    "NADE",
    "CFUIcA",
    "NGCF",
    "NMTR",
    "DIPN",
]

"""CDAE baseline (Wu et al., WSDM 2016).

Collaborative Denoising Auto-Encoder: a user-specific input node is added
to a denoising autoencoder over the user's interaction vector —
``h = σ(Wᵀ x̃ + V_u + b)``, reconstruction ``ŷ = W' h + b'`` — trained on
corrupted inputs with implicit-feedback weighting.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.models.base import Recommender
from repro.nn.layers import Embedding, Linear
from repro.nn.losses import l2_regularization
from repro.nn.optim import Adam
from repro.tensor import Tensor, no_grad
from repro.train.callbacks import HistoryRecorder
from repro.train.trainer import TrainConfig


class CDAE(Recommender):
    """Denoising autoencoder with a per-user latent input node."""

    name = "CDAE"

    def __init__(self, dataset: InteractionDataset, hidden_dim: int = 32,
                 corruption: float = 0.3, seed: int = 0):
        super().__init__(dataset.num_users, dataset.num_items)
        if not 0.0 <= corruption < 1.0:
            raise ValueError("corruption must be in [0, 1)")
        rng = np.random.default_rng(seed)
        self._rng = rng
        self.corruption = corruption
        matrix = dataset.graph().adjacency(dataset.target_behavior).to_dense()
        self._profiles = matrix
        self.encoder = Linear(self.num_items, hidden_dim, rng=rng)
        self.user_node = Embedding(self.num_users, hidden_dim, rng=rng)
        self.decoder = Linear(hidden_dim, self.num_items, rng=rng)
        self._recon_cache: np.ndarray | None = None

    def forward(self, x: Tensor, users: np.ndarray) -> Tensor:
        hidden = (self.encoder(x) + self.user_node(users)).sigmoid()
        return self.decoder(hidden)

    # ------------------------------------------------------------------
    def fit(self, train: InteractionDataset, config: TrainConfig | None = None,
            eval_fn=None) -> HistoryRecorder:
        """Denoising reconstruction training."""
        config = config or TrainConfig()
        rng = np.random.default_rng(config.seed)
        optimizer = Adam(self.parameters(), lr=config.lr)
        history = HistoryRecorder()
        batch = max(8, config.batch_users)
        self.train()
        for epoch in range(config.epochs):
            order = rng.permutation(self.num_users)
            total = 0.0
            for start in range(0, self.num_users, batch):
                rows = order[start:start + batch]
                clean = self._profiles[rows]
                mask = rng.random(clean.shape) >= self.corruption
                corrupted = clean * mask / (1.0 - self.corruption)
                recon = self(Tensor(corrupted), rows)
                diff = recon - Tensor(clean)
                weights = Tensor(1.0 + 4.0 * clean)
                loss = (weights * diff * diff).mean()
                loss = loss + l2_regularization(self.parameters(), config.l2_weight)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                total += float(loss.data) * len(rows)
            self._recon_cache = None
            record = {"epoch": epoch, "loss": total / self.num_users}
            if eval_fn is not None:
                self.eval()
                record["metric"] = float(eval_fn())
                self.train()
            history.record(**record)
        self.eval()
        self._recon_cache = None
        return history

    # ------------------------------------------------------------------
    def _reconstruction(self) -> np.ndarray:
        if self._recon_cache is None:
            with no_grad():
                users = np.arange(self.num_users)
                self._recon_cache = self(Tensor(self._profiles), users).data
        return self._recon_cache

    def score_tensor(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        recon = self(Tensor(self._profiles[users]), users)
        return recon[np.arange(users.size), items]

    def score(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        return self._reconstruction()[users, items]

    def on_step_end(self) -> None:
        self._recon_cache = None

"""BiasMF baseline (Koren et al., 2009).

Matrix factorization with user/item bias terms:
``score(u, i) = μ + b_u + b_i + p_u · q_i``, trained on the target behavior
with the shared pairwise objective.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import Recommender
from repro.nn import init as init_schemes
from repro.nn.module import Parameter
from repro.tensor import Tensor


class BiasMF(Recommender):
    """Biased matrix factorization."""

    name = "BiasMF"

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 16,
                 seed: int = 0):
        super().__init__(num_users, num_items)
        rng = np.random.default_rng(seed)
        self.user_factors = Parameter(
            init_schemes.normal((num_users, embedding_dim), rng, std=0.05), name="P")
        self.item_factors = Parameter(
            init_schemes.normal((num_items, embedding_dim), rng, std=0.05), name="Q")
        self.user_bias = Parameter(np.zeros(num_users), name="b_u")
        self.item_bias = Parameter(np.zeros(num_items), name="b_i")
        self.global_bias = Parameter(np.zeros(1), name="mu")

    def score_tensor(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        p = self.user_factors.gather_rows(users)
        q = self.item_factors.gather_rows(items)
        interaction = (p * q).sum(axis=1)
        return (interaction
                + self.user_bias.gather_rows(users)
                + self.item_bias.gather_rows(items)
                + self.global_bias.gather_rows(np.zeros_like(users)))

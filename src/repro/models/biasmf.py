"""BiasMF baseline (Koren et al., 2009).

Matrix factorization with user/item bias terms:
``score(u, i) = μ + b_u + b_i + p_u · q_i``, trained on the target behavior
with the shared pairwise objective. In sampled/async training mode every
table — factors *and* the 1-D bias vectors — is gathered with the
row-sparse ``embedding_rows`` op, so the optimizer touches only the batch
rows instead of sweeping the full tables each step.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import Recommender
from repro.nn import init as init_schemes
from repro.nn.module import Parameter
from repro.shard import ShardedEmbedding, table_rows, table_tensor
from repro.tensor import Tensor


class BiasMF(Recommender):
    """Biased matrix factorization."""

    name = "BiasMF"

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 16,
                 seed: int = 0, shards: int | None = None,
                 shard_strategy: str = "range"):
        super().__init__(num_users, num_items)
        rng = np.random.default_rng(seed)
        tables = {
            "P": init_schemes.normal((num_users, embedding_dim), rng, std=0.05),
            "Q": init_schemes.normal((num_items, embedding_dim), rng, std=0.05),
            "b_u": np.zeros(num_users),
            "b_i": np.zeros(num_items),
        }
        if shards is None:
            built = {name: Parameter(init, name=name)
                     for name, init in tables.items()}
        else:
            # every row-indexed table shards — the 1-D bias vectors too
            built = {name: ShardedEmbedding(init, num_shards=shards,
                                            strategy=shard_strategy, name=name)
                     for name, init in tables.items()}
        self.user_factors = built["P"]
        self.item_factors = built["Q"]
        self.user_bias = built["b_u"]
        self.item_bias = built["b_i"]
        self.global_bias = Parameter(np.zeros(1), name="mu")

    def score_tensor(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        p = table_tensor(self.user_factors).gather_rows(users)
        q = table_tensor(self.item_factors).gather_rows(items)
        interaction = (p * q).sum(axis=1)
        return (interaction
                + table_tensor(self.user_bias).gather_rows(users)
                + table_tensor(self.item_bias).gather_rows(items)
                + self.global_bias.gather_rows(np.zeros_like(users)))

    # ------------------------------------------------------------------
    # sampled (row-sparse) training path
    # ------------------------------------------------------------------
    def _sparse_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """``score_tensor`` with row-sparse gathers (1-D bias rows too)."""
        p = table_rows(self.user_factors, users)
        q = table_rows(self.item_factors, items)
        interaction = (p * q).sum(axis=1)
        return (interaction
                + table_rows(self.user_bias, users)
                + table_rows(self.item_bias, items)
                + self.global_bias.gather_rows(np.zeros_like(users)))

    def sampled_batch_scores(self, users: np.ndarray, pos_items: np.ndarray,
                             neg_items: np.ndarray, *,
                             fanout=10,
                             rng: np.random.Generator | None = None,
                             ) -> tuple[Tensor, Tensor]:
        """Batch scores whose backward stays row-sparse on all four tables.

        No propagation to sample (``fanout``/``rng`` are unused); the point
        of overriding the fallback is that gradients reach ``P``/``Q`` and
        the bias vectors as ``RowSparseGrad``s, so sampled-mode optimizer
        work scales with the batch instead of the user/item counts.
        """
        del fanout, rng
        users = np.asarray(users, dtype=np.int64)
        pos_items = np.asarray(pos_items, dtype=np.int64)
        neg_items = np.asarray(neg_items, dtype=np.int64)
        return (self._sparse_scores(users, pos_items),
                self._sparse_scores(users, neg_items))

    def l2_batch(self, users: np.ndarray, pos_items: np.ndarray,
                 neg_items: np.ndarray, weight: float) -> Tensor:
        """λ‖Θ_batch‖² over the touched rows of all four tables + μ."""
        items = np.concatenate([np.asarray(pos_items, dtype=np.int64),
                                np.asarray(neg_items, dtype=np.int64)])
        users = np.asarray(users, dtype=np.int64)
        return self._tables_l2_batch(
            [(self.user_factors, users), (self.item_factors, items),
             (self.user_bias, users), (self.item_bias, items)], weight)

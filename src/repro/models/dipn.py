"""DIPN baseline (Guo et al., KDD 2019).

Deep Intent Prediction Network: predicts purchasing intent from the user's
recent multi-behavior interaction *sequence* using a recurrent encoder with
attention pooling. Our faithful-at-scale variant: each user's last T
interactions (item embedding + behavior-type embedding) feed a GRU; an
attention layer pools the hidden states into an intent vector; the score of
(u, i) is ⟨intent_u + p_u, q_i⟩ with a trained attention query.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.models.base import Recommender
from repro.nn import init as init_schemes
from repro.nn.layers import Embedding, GRUCell, Linear
from repro.nn.module import Parameter
from repro.tensor import Tensor, functional as F, no_grad
from repro.tensor.tensor import stack


class DIPN(Recommender):
    """GRU + attention over per-user behavior sequences."""

    name = "DIPN"

    def __init__(self, dataset: InteractionDataset, embedding_dim: int = 16,
                 max_seq_len: int = 10, seed: int = 0):
        super().__init__(dataset.num_users, dataset.num_items)
        rng = np.random.default_rng(seed)
        self.max_seq_len = max_seq_len
        self.behavior_names = dataset.behavior_names
        self.user_embeddings = Embedding(self.num_users, embedding_dim, rng=rng)
        self.item_embeddings = Embedding(self.num_items, embedding_dim, rng=rng)
        self.behavior_embeddings = Embedding(len(self.behavior_names), embedding_dim, rng=rng)
        self.gru = GRUCell(2 * embedding_dim, embedding_dim, rng=rng)
        self.attention_query = Parameter(
            init_schemes.xavier_uniform((embedding_dim,), rng), name="attn_q")
        self.attention_proj = Linear(embedding_dim, embedding_dim, rng=rng)
        self._sequences = self._build_sequences(dataset)
        self._intent_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _build_sequences(self, dataset: InteractionDataset) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-user (item_ids, behavior_ids, mask) of the last T events."""
        events: list[list[tuple[float, int, int]]] = [[] for _ in range(self.num_users)]
        for k, behavior in enumerate(self.behavior_names):
            users, items, timestamps = dataset.arrays(behavior)
            for u, i, t in zip(users, items, timestamps):
                events[int(u)].append((float(t), int(i), k))
        t_len = self.max_seq_len
        item_seq = np.zeros((self.num_users, t_len), dtype=np.int64)
        behavior_seq = np.zeros((self.num_users, t_len), dtype=np.int64)
        mask = np.zeros((self.num_users, t_len), dtype=np.float64)
        for user, user_events in enumerate(events):
            user_events.sort(key=lambda e: e[0])
            recent = user_events[-t_len:]
            for pos, (_, item, behavior) in enumerate(recent):
                item_seq[user, pos] = item
                behavior_seq[user, pos] = behavior
                mask[user, pos] = 1.0
        return item_seq, behavior_seq, mask

    def _intent(self, users: np.ndarray) -> Tensor:
        """Attention-pooled GRU states over each user's event sequence."""
        users = np.asarray(users, dtype=np.int64)
        item_seq, behavior_seq, mask = self._sequences
        items = item_seq[users]
        behaviors = behavior_seq[users]
        seq_mask = mask[users]
        batch = users.size
        hidden = self.gru.initial_state(batch)
        states: list[Tensor] = []
        from repro.tensor.tensor import concat

        for t in range(self.max_seq_len):
            step_input = concat([
                self.item_embeddings(items[:, t]),
                self.behavior_embeddings(behaviors[:, t]),
            ], axis=-1)
            new_hidden = self.gru(step_input, hidden)
            keep = Tensor(seq_mask[:, t:t + 1])
            hidden = keep * new_hidden + (1.0 - keep) * hidden
            states.append(hidden)
        stacked = stack(states, axis=1)                      # (B, T, d)
        keys = self.attention_proj(stacked).tanh()
        scores = keys.matmul(self.attention_query)           # (B, T)
        # mask out padded steps before softmax
        neg_inf = Tensor((1.0 - seq_mask) * -1e9)
        weights = F.softmax(scores + neg_inf, axis=-1)
        return (stacked * weights.reshape(batch, self.max_seq_len, 1)).sum(axis=1)

    # ------------------------------------------------------------------
    def score_tensor(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        intent = self._intent(users)
        profile = intent + self.user_embeddings(users)
        q = self.item_embeddings(items)
        return (profile * q).sum(axis=1)

    def batch_scores(self, users: np.ndarray, pos_items: np.ndarray,
                     neg_items: np.ndarray) -> tuple[Tensor, Tensor]:
        """Share the expensive sequence encoding between pos and neg sides."""
        users = np.asarray(users, dtype=np.int64)
        intent = self._intent(users)
        profile = intent + self.user_embeddings(users)
        pos_q = self.item_embeddings(np.asarray(pos_items, dtype=np.int64))
        neg_q = self.item_embeddings(np.asarray(neg_items, dtype=np.int64))
        return (profile * pos_q).sum(axis=1), (profile * neg_q).sum(axis=1)

    def score(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Inference with per-user intent cached across calls."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if self._intent_cache is None:
            with no_grad():
                unique = np.arange(self.num_users)
                self._intent_cache = (
                    self._intent(unique) + self.user_embeddings(unique)
                ).data
        profiles = self._intent_cache[users]
        q = self.item_embeddings.weight.data[items]
        return np.sum(profiles * q, axis=1)

    def on_step_end(self) -> None:
        self._intent_cache = None

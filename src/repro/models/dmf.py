"""Deep Matrix Factorization baseline (Xue et al., IJCAI 2017).

Two MLP towers project the user's interaction profile (their row of the
interaction matrix) and the item's profile (its column) into a shared
space; the score is the cosine similarity. Profiles come from the target
behavior's interaction matrix, as in the original single-behavior setting.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.models.base import Recommender
from repro.nn.layers import MLP
from repro.tensor import Tensor, functional as F


class DMF(Recommender):
    """Deep matrix factorization with cosine matching."""

    name = "DMF"

    def __init__(self, dataset: InteractionDataset, embedding_dim: int = 16,
                 hidden_dim: int = 32, seed: int = 0):
        super().__init__(dataset.num_users, dataset.num_items)
        rng = np.random.default_rng(seed)
        matrix = dataset.graph().adjacency(dataset.target_behavior).to_dense()
        self._user_profiles = matrix              # (I, J)
        self._item_profiles = matrix.T.copy()     # (J, I)
        self.user_tower = MLP([self.num_items, hidden_dim, embedding_dim],
                              out_activation="identity", rng=rng)
        self.item_tower = MLP([self.num_users, hidden_dim, embedding_dim],
                              out_activation="identity", rng=rng)

    def score_tensor(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        u = self.user_tower(Tensor(self._user_profiles[users]))
        v = self.item_tower(Tensor(self._item_profiles[items]))
        u = F.l2_normalize(u, axis=-1)
        v = F.l2_normalize(v, axis=-1)
        return (u * v).sum(axis=1)

"""NGCF baseline (Wang et al., SIGIR 2019).

Neural Graph Collaborative Filtering: embedding propagation over the
user–item graph with the bi-interaction message
``E^{l+1} = LeakyReLU(L̂ E^l W1 + (L̂ E^l) ⊙ E^l W2)`` where L̂ is the
symmetrically normalized bipartite adjacency with self-loops. NGCF cannot
differentiate behavior types; ``graph_mode`` selects whether it sees only
the target behavior or the type-collapsed union of all behaviors
(default — the stronger variant).

Adjacency construction and propagation run through the shared
:class:`~repro.graph.engine.PropagationEngine` (single-graph mode), which
also provides the version-keyed cache behind :meth:`NGCF.score` and the
``dtype`` fast path.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.graph.engine import PropagationEngine
from repro.models.base import Recommender
from repro.nn import init as init_schemes
from repro.nn.layers import Linear
from repro.nn.module import ModuleList, Parameter
from repro.shard import ShardedEmbedding, table_rows, table_tensor
from repro.tensor import Tensor, default_dtype, no_grad


class NGCF(Recommender):
    """Graph collaborative filtering on a single (type-blind) graph."""

    name = "NGCF"

    def __init__(self, dataset: InteractionDataset, embedding_dim: int = 16,
                 num_layers: int = 2, graph_mode: str = "merged", seed: int = 0,
                 dtype: str | None = None, shards: int | None = None,
                 shard_strategy: str = "range"):
        super().__init__(dataset.num_users, dataset.num_items)
        if graph_mode not in ("merged", "target"):
            raise ValueError("graph_mode must be 'merged' or 'target'")
        with default_dtype(dtype):  # None → ambient default
            rng = np.random.default_rng(seed)
            behavior = None if graph_mode == "merged" else dataset.target_behavior
            self.engine = PropagationEngine.bipartite(dataset.graph(), behavior)
            user_init = init_schemes.xavier_normal(
                (self.num_users, embedding_dim), rng)
            item_init = init_schemes.xavier_normal(
                (self.num_items, embedding_dim), rng)
            if shards is None:
                self.user_embeddings = Parameter(user_init, name="E_u")
                self.item_embeddings = Parameter(item_init, name="E_v")
            else:
                self.user_embeddings = ShardedEmbedding(
                    user_init, num_shards=shards, strategy=shard_strategy,
                    name="E_u")
                self.item_embeddings = ShardedEmbedding(
                    item_init, num_shards=shards, strategy=shard_strategy,
                    name="E_v")
            self.w1 = ModuleList([Linear(embedding_dim, embedding_dim, rng=rng)
                                  for _ in range(num_layers)])
            self.w2 = ModuleList([Linear(embedding_dim, embedding_dim, rng=rng)
                                  for _ in range(num_layers)])
        self.num_layers = num_layers

    @property
    def _laplacian(self):
        """The engine's normalized bipartite Laplacian (compat view)."""
        return self.engine.adjacency

    # ------------------------------------------------------------------
    def _bi_interaction_stack(self, ego: Tensor, propagate,
                              restrict) -> list[Tensor]:
        """The one W1/W2 bi-interaction loop behind every propagation mode.

        ``propagate(level, h)`` produces the level's aggregated messages;
        ``restrict(level, h)`` maps the previous level's tensor onto the
        rows the next level keeps (identity for full-graph and monolithic
        blocks, a row gather for shrinking layered blocks). Full, sampled,
        and async paths share this loop by construction.
        """
        layers = [ego]
        current = ego
        for level, (w1, w2) in enumerate(zip(self.w1, self.w2)):
            side = propagate(level, current)
            messages = w1(side) + w2(side * restrict(level, current))
            current = messages.leaky_relu(0.2)
            layers.append(current)
        return layers

    def _bi_interaction_layers(self, propagator, ego: Tensor) -> Tensor:
        """W1/W2 bi-interaction stack, concatenated across layers (§3.3).

        ``propagator`` exposes ``propagate(h)`` — the full-graph engine or a
        sampled :class:`~repro.graph.subgraph.SingleSubgraph` — with no row
        restriction between levels.
        """
        from repro.tensor.tensor import concat

        layers = self._bi_interaction_stack(
            ego, lambda level, h: propagator.propagate(h),
            lambda level, h: h)
        return concat(layers, axis=1)

    def propagate(self) -> tuple[Tensor, Tensor]:
        """Multi-order embeddings concatenated across layers (NGCF §3.3)."""
        from repro.tensor.tensor import concat

        ego = concat([table_tensor(self.user_embeddings),
                      table_tensor(self.item_embeddings)], axis=0)
        all_layers = self._bi_interaction_layers(self.engine, ego)
        users = all_layers[np.arange(self.num_users)]
        items = all_layers[np.arange(self.num_users, self.num_users + self.num_items)]
        return users, items

    def score_tensor(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        user_table, item_table = self.propagate()
        picked_u = user_table.gather_rows(np.asarray(users, dtype=np.int64))
        picked_v = item_table.gather_rows(np.asarray(items, dtype=np.int64))
        return (picked_u * picked_v).sum(axis=1)

    def batch_scores(self, users: np.ndarray, pos_items: np.ndarray,
                     neg_items: np.ndarray) -> tuple[Tensor, Tensor]:
        user_table, item_table = self.propagate()
        users = np.asarray(users, dtype=np.int64)
        u = user_table.gather_rows(users)
        pos = (u * item_table.gather_rows(np.asarray(pos_items, dtype=np.int64))).sum(axis=1)
        neg = (u * item_table.gather_rows(np.asarray(neg_items, dtype=np.int64))).sum(axis=1)
        return pos, neg

    # ------------------------------------------------------------------
    # sampled (mini-batch) propagation
    # ------------------------------------------------------------------
    def sampled_batch_scores(self, users: np.ndarray, pos_items: np.ndarray,
                             neg_items: np.ndarray, *,
                             fanout: int | None = 10,
                             rng: np.random.Generator | None = None,
                             ) -> tuple[Tensor, Tensor]:
        """Batch scores propagated over a sampled square block only.

        Seeds are the batch's user nodes and item nodes in the Laplacian's
        joint (users+items) index space; the engine expands them
        ``num_layers`` hops with a fanout cap. The block's local ego table
        is gathered with row-sparse ``embedding_rows`` — node ids below
        ``num_users`` from the user table, the rest from the item table —
        and the usual W1/W2 bi-interaction layers run at block scale.
        """
        users = np.asarray(users, dtype=np.int64)
        pos_items = np.asarray(pos_items, dtype=np.int64)
        neg_items = np.asarray(neg_items, dtype=np.int64)
        item_nodes = self.num_users + np.concatenate([pos_items, neg_items])
        sub = self.engine.subgraph_nodes(
            np.concatenate([users, item_nodes]),
            hops=self.num_layers, fanout=fanout, rng=rng)
        # sorted joint node ids split cleanly: user rows first, item rows after
        ego = self._ego_rows(sub.nodes)
        all_layers = self._bi_interaction_layers(sub, ego)
        u = all_layers.gather_rows(sub.localize(users))
        pos = (u * all_layers.gather_rows(
            sub.localize(self.num_users + pos_items))).sum(axis=1)
        neg = (u * all_layers.gather_rows(
            sub.localize(self.num_users + neg_items))).sum(axis=1)
        return pos, neg

    def l2_batch(self, users: np.ndarray, pos_items: np.ndarray,
                 neg_items: np.ndarray, weight: float) -> Tensor:
        """λ‖Θ_batch‖²: batch embedding rows + the W1/W2 layer weights."""
        return self._embedding_l2_batch(self.user_embeddings,
                                        self.item_embeddings,
                                        users, pos_items, neg_items, weight)

    # ------------------------------------------------------------------
    # layered (async-pipeline) propagation
    # ------------------------------------------------------------------
    def extract_block(self, users: np.ndarray, pos_items: np.ndarray,
                      neg_items: np.ndarray, *, fanout=10,
                      rng: np.random.Generator | None = None):
        """Prefetchable per-hop blocks in the joint (users+items) space."""
        users = np.asarray(users, dtype=np.int64)
        item_nodes = self.num_users + np.concatenate([
            np.asarray(pos_items, dtype=np.int64),
            np.asarray(neg_items, dtype=np.int64)])
        return self.engine.layered_subgraph_nodes(
            np.concatenate([users, item_nodes]),
            hops=self.num_layers, fanout=fanout, rng=rng)

    def _ego_rows(self, nodes: np.ndarray) -> Tensor:
        """Row-sparse gather of the split ego table for a joint node set."""
        from repro.tensor.tensor import concat

        user_rows = nodes[nodes < self.num_users]
        item_rows = nodes[nodes >= self.num_users] - self.num_users
        pieces = []
        if user_rows.size:
            pieces.append(table_rows(self.user_embeddings, user_rows))
        if item_rows.size:
            pieces.append(table_rows(self.item_embeddings, item_rows))
        return pieces[0] if len(pieces) == 1 else concat(pieces, axis=0)

    def block_batch_scores(self, users: np.ndarray, pos_items: np.ndarray,
                           neg_items: np.ndarray, block,
                           ) -> tuple[Tensor, Tensor]:
        """Batch scores over prefetched per-hop blocks.

        Each bi-interaction layer computes only the next (shrinking) level
        set; the final NGCF concatenation gathers every level's seed rows.
        """
        from repro.tensor.tensor import concat

        users = np.asarray(users, dtype=np.int64)
        pos_items = np.asarray(pos_items, dtype=np.int64)
        neg_items = np.asarray(neg_items, dtype=np.int64)
        levels = self._bi_interaction_stack(
            self._ego_rows(block.levels[0]),
            lambda level, h: block.propagate(level, h),
            lambda level, h: h.gather_rows(block.restrict(level + 1)))

        def embed(node_ids: np.ndarray) -> Tensor:
            return concat([
                h.gather_rows(block.localize(level, node_ids))
                for level, h in enumerate(levels)], axis=1)

        u = embed(users)
        pos = (u * embed(self.num_users + pos_items)).sum(axis=1)
        neg = (u * embed(self.num_users + neg_items)).sum(axis=1)
        return pos, neg

    def _tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Engine-cached propagated embedding tables (inference mode)."""
        def compute():
            with no_grad():
                user_table, item_table = self.propagate()
            return user_table.data, item_table.data

        return self.engine.cached("ngcf.tables", compute)

    def score(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        user_table, item_table = self._tables()
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        return np.sum(user_table[users] * item_table[items], axis=1)

    def serving_embeddings(self) -> tuple[np.ndarray, np.ndarray]:
        """The concatenated multi-layer tables already used by ``score``."""
        return self._tables()

    def cold_user_embeddings(self, users: np.ndarray) -> np.ndarray:
        """Serving rows for a few users, freshly extracted on demand.

        The cold-user path for the serving tier: an exact backward
        neighborhood (``fanout=None``) in the joint node space, the usual
        bi-interaction stack, and the per-level seed rows concatenated —
        matching those users' rows in :meth:`serving_embeddings`
        recomputed from current parameters to within a float64 ulp.
        """
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        block = self.engine.layered_subgraph_nodes(
            users, hops=self.num_layers, fanout=None)
        with no_grad():
            levels = self._bi_interaction_stack(
                self._ego_rows(block.levels[0]),
                lambda level, h: block.propagate(level, h),
                lambda level, h: h.gather_rows(block.restrict(level + 1)))
        return np.concatenate([h.data[block.localize(level, users)]
                               for level, h in enumerate(levels)], axis=1)

    def on_step_end(self) -> None:
        self.engine.invalidate()

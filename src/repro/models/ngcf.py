"""NGCF baseline (Wang et al., SIGIR 2019).

Neural Graph Collaborative Filtering: embedding propagation over the
user–item graph with the bi-interaction message
``E^{l+1} = LeakyReLU(L̂ E^l W1 + (L̂ E^l) ⊙ E^l W2)`` where L̂ is the
symmetrically normalized bipartite adjacency with self-loops. NGCF cannot
differentiate behavior types; ``graph_mode`` selects whether it sees only
the target behavior or the type-collapsed union of all behaviors
(default — the stronger variant).

Adjacency construction and propagation run through the shared
:class:`~repro.graph.engine.PropagationEngine` (single-graph mode), which
also provides the version-keyed cache behind :meth:`NGCF.score` and the
``dtype`` fast path.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.graph.engine import PropagationEngine
from repro.models.base import Recommender
from repro.nn import init as init_schemes
from repro.nn.layers import Linear
from repro.nn.module import ModuleList, Parameter
from repro.tensor import Tensor, default_dtype, no_grad


class NGCF(Recommender):
    """Graph collaborative filtering on a single (type-blind) graph."""

    name = "NGCF"

    def __init__(self, dataset: InteractionDataset, embedding_dim: int = 16,
                 num_layers: int = 2, graph_mode: str = "merged", seed: int = 0,
                 dtype: str | None = None):
        super().__init__(dataset.num_users, dataset.num_items)
        if graph_mode not in ("merged", "target"):
            raise ValueError("graph_mode must be 'merged' or 'target'")
        with default_dtype(dtype):  # None → ambient default
            rng = np.random.default_rng(seed)
            behavior = None if graph_mode == "merged" else dataset.target_behavior
            self.engine = PropagationEngine.bipartite(dataset.graph(), behavior)
            self.user_embeddings = Parameter(
                init_schemes.xavier_normal((self.num_users, embedding_dim), rng),
                name="E_u")
            self.item_embeddings = Parameter(
                init_schemes.xavier_normal((self.num_items, embedding_dim), rng),
                name="E_v")
            self.w1 = ModuleList([Linear(embedding_dim, embedding_dim, rng=rng)
                                  for _ in range(num_layers)])
            self.w2 = ModuleList([Linear(embedding_dim, embedding_dim, rng=rng)
                                  for _ in range(num_layers)])
        self.num_layers = num_layers

    @property
    def _laplacian(self):
        """The engine's normalized bipartite Laplacian (compat view)."""
        return self.engine.adjacency

    # ------------------------------------------------------------------
    def propagate(self) -> tuple[Tensor, Tensor]:
        """Multi-order embeddings concatenated across layers (NGCF §3.3)."""
        from repro.tensor.tensor import concat

        ego = concat([self.user_embeddings, self.item_embeddings], axis=0)
        layers = [ego]
        current = ego
        for w1, w2 in zip(self.w1, self.w2):
            side = self.engine.propagate(current)
            messages = w1(side) + w2(side * current)
            current = messages.leaky_relu(0.2)
            layers.append(current)
        all_layers = concat(layers, axis=1)
        users = all_layers[np.arange(self.num_users)]
        items = all_layers[np.arange(self.num_users, self.num_users + self.num_items)]
        return users, items

    def score_tensor(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        user_table, item_table = self.propagate()
        picked_u = user_table.gather_rows(np.asarray(users, dtype=np.int64))
        picked_v = item_table.gather_rows(np.asarray(items, dtype=np.int64))
        return (picked_u * picked_v).sum(axis=1)

    def batch_scores(self, users: np.ndarray, pos_items: np.ndarray,
                     neg_items: np.ndarray) -> tuple[Tensor, Tensor]:
        user_table, item_table = self.propagate()
        users = np.asarray(users, dtype=np.int64)
        u = user_table.gather_rows(users)
        pos = (u * item_table.gather_rows(np.asarray(pos_items, dtype=np.int64))).sum(axis=1)
        neg = (u * item_table.gather_rows(np.asarray(neg_items, dtype=np.int64))).sum(axis=1)
        return pos, neg

    def _tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Engine-cached propagated embedding tables (inference mode)."""
        def compute():
            with no_grad():
                user_table, item_table = self.propagate()
            return user_table.data, item_table.data

        return self.engine.cached("ngcf.tables", compute)

    def score(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        user_table, item_table = self._tables()
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        return np.sum(user_table[users] * item_table[items], axis=1)

    def serving_embeddings(self) -> tuple[np.ndarray, np.ndarray]:
        """The concatenated multi-layer tables already used by ``score``."""
        return self._tables()

    def on_step_end(self) -> None:
        self.engine.invalidate()

"""CF-NADE-style baseline (Zheng et al., ICML 2016).

A neural autoregressive model over each user's item set: the probability of
the next item conditions on the already-observed items through a shared
hidden state ``h(obs) = tanh(c + Σ_{j∈obs} W_j)`` and per-item output
weights, with the parameter-sharing strategy of CF-NADE. For implicit
feedback we train the conditional ``P(item | subset of the user's other
items)`` with a sampled softmax-free pairwise surrogate — the held-out
positive must outscore sampled negatives — which preserves NADE's
autoregressive structure while fitting the common evaluation protocol.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.models.base import Recommender
from repro.nn import init as init_schemes
from repro.nn.module import Parameter
from repro.tensor import Tensor


class NADE(Recommender):
    """Autoregressive scorer: V_i · tanh(c + Σ_{j∈hist(u)\\{i}} W_j) + b_i."""

    name = "NADE"

    def __init__(self, dataset: InteractionDataset, hidden_dim: int = 32,
                 seed: int = 0):
        super().__init__(dataset.num_users, dataset.num_items)
        rng = np.random.default_rng(seed)
        graph = dataset.graph()
        self._histories: list[np.ndarray] = [
            graph.user_items(dataset.target_behavior, u) for u in range(self.num_users)
        ]
        self.w_in = Parameter(
            init_schemes.normal((self.num_items, hidden_dim), rng, std=0.05), name="W")
        self.c = Parameter(np.zeros(hidden_dim), name="c")
        self.v_out = Parameter(
            init_schemes.normal((self.num_items, hidden_dim), rng, std=0.05), name="V")
        self.b_out = Parameter(np.zeros(self.num_items), name="b")
        self._rng = rng

    def _hidden(self, users: np.ndarray, held_out: np.ndarray | None) -> Tensor:
        """Hidden state from each user's history, excluding the held-out item.

        Excluding the predicted item from its own conditioning set is what
        makes the model autoregressive rather than autoencoding.
        """
        users = np.asarray(users, dtype=np.int64)
        gather_indices: list[np.ndarray] = []
        offsets = []
        for row, user in enumerate(users):
            history = self._histories[int(user)]
            if held_out is not None:
                history = history[history != held_out[row]]
            gather_indices.append(history)
            offsets.append(history.size)
        if sum(offsets) == 0:
            return (self.c * Tensor(np.ones((users.size, 1)))).tanh()
        flat = np.concatenate([h for h in gather_indices if h.size])
        rows = self.w_in.gather_rows(flat)
        # segment-sum the flattened history rows back per user
        segment = np.repeat(np.arange(users.size), offsets)
        summed = _segment_sum(rows, segment, users.size)
        return (summed + self.c).tanh()

    def score_tensor(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        hidden = self._hidden(users, held_out=items)
        v = self.v_out.gather_rows(items)
        return (hidden * v).sum(axis=1) + self.b_out.gather_rows(items)


def _segment_sum(rows: Tensor, segment: np.ndarray, num_segments: int) -> Tensor:
    """Differentiable segment sum via a binary scatter matrix product."""
    import scipy.sparse as sp

    from repro.tensor.sparse import SparseAdjacency

    matrix = sp.csr_matrix(
        (np.ones(segment.size), (segment, np.arange(segment.size))),
        shape=(num_segments, segment.size),
    )
    return SparseAdjacency(matrix).matmul(rows)

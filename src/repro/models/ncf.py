"""Neural Collaborative Filtering baselines (He et al., WWW 2017).

Three variants as evaluated in the paper's Table II:

* ``NCF-G`` (GMF) — fixed element-wise product of user/item embeddings,
  projected to a scalar;
* ``NCF-M`` (MLP) — multi-layer perceptron over the concatenated
  embeddings;
* ``NCF-N`` (NeuMF) — fusion of a GMF branch and an MLP branch.

All three override ``sampled_batch_scores`` to gather their embedding
tables with the row-sparse ``Embedding.rows`` lookup — same forward
values as the dense path, but the backward emits ``RowSparseGrad``s so
sampled-mode optimizer work scales with the batch, not the tables.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import Recommender
from repro.nn.layers import Embedding, MLP, Linear
from repro.shard import ShardedEmbedding
from repro.tensor import Tensor
from repro.tensor.tensor import concat


def _batch_arrays(users, pos_items, neg_items):
    return (np.asarray(users, dtype=np.int64),
            np.asarray(pos_items, dtype=np.int64),
            np.asarray(neg_items, dtype=np.int64))


def _make_table(num_rows: int, dim: int, rng, shards: int | None,
                strategy: str, name: str):
    """An ``nn.Embedding`` or its sharded drop-in, same init stream.

    ``ShardedEmbedding.init`` draws the full table with the same scheme and
    rng consumption as ``nn.Embedding`` before slicing it, so sharded and
    unsharded models start from bit-identical weights.
    """
    if shards is None:
        return Embedding(num_rows, dim, rng=rng)
    return ShardedEmbedding.init(num_rows, dim, rng, num_shards=shards,
                                 strategy=strategy, name=name)


class NCFGMF(Recommender):
    """NCF-G: generalized matrix factorization branch alone."""

    name = "NCF-G"

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 16,
                 seed: int = 0, shards: int | None = None,
                 shard_strategy: str = "range"):
        super().__init__(num_users, num_items)
        rng = np.random.default_rng(seed)
        self.user_embeddings = _make_table(num_users, embedding_dim, rng,
                                           shards, shard_strategy, "gmf_user")
        self.item_embeddings = _make_table(num_items, embedding_dim, rng,
                                           shards, shard_strategy, "gmf_item")
        self.output = Linear(embedding_dim, 1, rng=rng)

    def _combine(self, p: Tensor, q: Tensor) -> Tensor:
        return self.output(p * q).squeeze(-1)

    def score_tensor(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        return self._combine(self.user_embeddings(users),
                             self.item_embeddings(items))

    def sampled_batch_scores(self, users, pos_items, neg_items, *,
                             fanout=10, rng=None) -> tuple[Tensor, Tensor]:
        """Row-sparse-gathered batch scores (no propagation to sample)."""
        del fanout, rng
        users, pos_items, neg_items = _batch_arrays(users, pos_items, neg_items)
        p = self.user_embeddings.rows(users)
        return (self._combine(p, self.item_embeddings.rows(pos_items)),
                self._combine(p, self.item_embeddings.rows(neg_items)))

    def l2_batch(self, users, pos_items, neg_items, weight: float) -> Tensor:
        return self._embedding_l2_batch(
            self.user_embeddings, self.item_embeddings,
            users, pos_items, neg_items, weight)


class NCFMLP(Recommender):
    """NCF-M: MLP over concatenated user/item embeddings."""

    name = "NCF-M"

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 16,
                 hidden_sizes: tuple[int, ...] = (32, 16), seed: int = 0,
                 shards: int | None = None, shard_strategy: str = "range"):
        super().__init__(num_users, num_items)
        rng = np.random.default_rng(seed)
        self.user_embeddings = _make_table(num_users, embedding_dim, rng,
                                           shards, shard_strategy, "mlp_user")
        self.item_embeddings = _make_table(num_items, embedding_dim, rng,
                                           shards, shard_strategy, "mlp_item")
        self.mlp = MLP([2 * embedding_dim, *hidden_sizes, 1], rng=rng)

    def _combine(self, p: Tensor, q: Tensor) -> Tensor:
        return self.mlp(concat([p, q], axis=-1)).squeeze(-1)

    def score_tensor(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        return self._combine(self.user_embeddings(users),
                             self.item_embeddings(items))

    def sampled_batch_scores(self, users, pos_items, neg_items, *,
                             fanout=10, rng=None) -> tuple[Tensor, Tensor]:
        """Row-sparse-gathered batch scores (no propagation to sample)."""
        del fanout, rng
        users, pos_items, neg_items = _batch_arrays(users, pos_items, neg_items)
        p = self.user_embeddings.rows(users)
        return (self._combine(p, self.item_embeddings.rows(pos_items)),
                self._combine(p, self.item_embeddings.rows(neg_items)))

    def l2_batch(self, users, pos_items, neg_items, weight: float) -> Tensor:
        return self._embedding_l2_batch(
            self.user_embeddings, self.item_embeddings,
            users, pos_items, neg_items, weight)


class NeuMF(Recommender):
    """NCF-N: NeuMF — fused GMF + MLP branches with separate embeddings."""

    name = "NCF-N"

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 16,
                 hidden_sizes: tuple[int, ...] = (32, 16), seed: int = 0,
                 shards: int | None = None, shard_strategy: str = "range"):
        super().__init__(num_users, num_items)
        rng = np.random.default_rng(seed)
        self.gmf_user = _make_table(num_users, embedding_dim, rng,
                                    shards, shard_strategy, "gmf_user")
        self.gmf_item = _make_table(num_items, embedding_dim, rng,
                                    shards, shard_strategy, "gmf_item")
        self.mlp_user = _make_table(num_users, embedding_dim, rng,
                                    shards, shard_strategy, "mlp_user")
        self.mlp_item = _make_table(num_items, embedding_dim, rng,
                                    shards, shard_strategy, "mlp_item")
        self.mlp = MLP([2 * embedding_dim, *hidden_sizes], out_activation="relu", rng=rng)
        self.output = Linear(embedding_dim + hidden_sizes[-1], 1, rng=rng)

    def _combine(self, gmf_u: Tensor, gmf_i: Tensor,
                 mlp_u: Tensor, mlp_i: Tensor) -> Tensor:
        gmf_vector = gmf_u * gmf_i
        mlp_vector = self.mlp(concat([mlp_u, mlp_i], axis=-1))
        return self.output(concat([gmf_vector, mlp_vector], axis=-1)).squeeze(-1)

    def score_tensor(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        return self._combine(self.gmf_user(users), self.gmf_item(items),
                             self.mlp_user(users), self.mlp_item(items))

    def sampled_batch_scores(self, users, pos_items, neg_items, *,
                             fanout=10, rng=None) -> tuple[Tensor, Tensor]:
        """Row-sparse gathers across all four embedding tables."""
        del fanout, rng
        users, pos_items, neg_items = _batch_arrays(users, pos_items, neg_items)
        gmf_u = self.gmf_user.rows(users)
        mlp_u = self.mlp_user.rows(users)

        def score(items: np.ndarray) -> Tensor:
            return self._combine(gmf_u, self.gmf_item.rows(items),
                                 mlp_u, self.mlp_item.rows(items))

        return score(pos_items), score(neg_items)

    def l2_batch(self, users, pos_items, neg_items, weight: float) -> Tensor:
        users, pos_items, neg_items = _batch_arrays(users, pos_items, neg_items)
        items = np.concatenate([pos_items, neg_items])
        return self._tables_l2_batch(
            [(self.gmf_user, users), (self.mlp_user, users),
             (self.gmf_item, items), (self.mlp_item, items)],
            weight)

"""Neural Collaborative Filtering baselines (He et al., WWW 2017).

Three variants as evaluated in the paper's Table II:

* ``NCF-G`` (GMF) — fixed element-wise product of user/item embeddings,
  projected to a scalar;
* ``NCF-M`` (MLP) — multi-layer perceptron over the concatenated
  embeddings;
* ``NCF-N`` (NeuMF) — fusion of a GMF branch and an MLP branch.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import Recommender
from repro.nn.layers import Embedding, MLP, Linear
from repro.tensor import Tensor
from repro.tensor.tensor import concat


class NCFGMF(Recommender):
    """NCF-G: generalized matrix factorization branch alone."""

    name = "NCF-G"

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 16,
                 seed: int = 0):
        super().__init__(num_users, num_items)
        rng = np.random.default_rng(seed)
        self.user_embeddings = Embedding(num_users, embedding_dim, rng=rng)
        self.item_embeddings = Embedding(num_items, embedding_dim, rng=rng)
        self.output = Linear(embedding_dim, 1, rng=rng)

    def score_tensor(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        p = self.user_embeddings(users)
        q = self.item_embeddings(items)
        return self.output(p * q).squeeze(-1)


class NCFMLP(Recommender):
    """NCF-M: MLP over concatenated user/item embeddings."""

    name = "NCF-M"

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 16,
                 hidden_sizes: tuple[int, ...] = (32, 16), seed: int = 0):
        super().__init__(num_users, num_items)
        rng = np.random.default_rng(seed)
        self.user_embeddings = Embedding(num_users, embedding_dim, rng=rng)
        self.item_embeddings = Embedding(num_items, embedding_dim, rng=rng)
        self.mlp = MLP([2 * embedding_dim, *hidden_sizes, 1], rng=rng)

    def score_tensor(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        p = self.user_embeddings(users)
        q = self.item_embeddings(items)
        return self.mlp(concat([p, q], axis=-1)).squeeze(-1)


class NeuMF(Recommender):
    """NCF-N: NeuMF — fused GMF + MLP branches with separate embeddings."""

    name = "NCF-N"

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 16,
                 hidden_sizes: tuple[int, ...] = (32, 16), seed: int = 0):
        super().__init__(num_users, num_items)
        rng = np.random.default_rng(seed)
        self.gmf_user = Embedding(num_users, embedding_dim, rng=rng)
        self.gmf_item = Embedding(num_items, embedding_dim, rng=rng)
        self.mlp_user = Embedding(num_users, embedding_dim, rng=rng)
        self.mlp_item = Embedding(num_items, embedding_dim, rng=rng)
        self.mlp = MLP([2 * embedding_dim, *hidden_sizes], out_activation="relu", rng=rng)
        self.output = Linear(embedding_dim + hidden_sizes[-1], 1, rng=rng)

    def score_tensor(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        gmf_vector = self.gmf_user(users) * self.gmf_item(items)
        mlp_vector = self.mlp(concat([self.mlp_user(users), self.mlp_item(items)], axis=-1))
        return self.output(concat([gmf_vector, mlp_vector], axis=-1)).squeeze(-1)

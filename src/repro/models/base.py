"""Shared recommender interface.

Every model — GNMR and all Table-II baselines — subclasses
:class:`Recommender`, so the experiment harness can train and evaluate them
uniformly:

* :meth:`Recommender.fit` — pairwise training via :class:`repro.train.Trainer`
  (reconstruction-style models override ``fit`` entirely);
* :meth:`Recommender.score` — numpy scoring for evaluation;
* :meth:`Recommender.score_tensor` — differentiable scoring for training;
* :meth:`Recommender.recommend` — top-N item lists for applications.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.nn.module import Module
from repro.tensor import Tensor, no_grad
from repro.train.callbacks import HistoryRecorder
from repro.train.trainer import TrainConfig, Trainer


class Recommender(Module):
    """Base class for all recommenders in the reproduction."""

    #: human-readable name used in result tables
    name: str = "recommender"

    def __init__(self, num_users: int, num_items: int):
        super().__init__()
        self.num_users = int(num_users)
        self.num_items = int(num_items)

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def score_tensor(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Differentiable scores for parallel (user, item) index arrays."""
        raise NotImplementedError

    def batch_scores(self, users: np.ndarray, pos_items: np.ndarray,
                     neg_items: np.ndarray) -> tuple[Tensor, Tensor]:
        """Score positive and negative pairs for one training batch.

        Graph models override this to share one propagation pass between the
        positive and negative sides.
        """
        return self.score_tensor(users, pos_items), self.score_tensor(users, neg_items)

    def sampled_batch_scores(self, users: np.ndarray, pos_items: np.ndarray,
                             neg_items: np.ndarray, *,
                             fanout: int | None = 10,
                             rng: np.random.Generator | None = None,
                             ) -> tuple[Tensor, Tensor]:
        """Batch scores under sampled (sublinear) propagation.

        Graph models (GNMR, NGCF) override this to propagate over a
        fanout-capped sampled subgraph and gather embeddings with the
        row-sparse ``embedding_rows`` op, making the step cost a function
        of batch size and fanout. The default is the brute-force fallback:
        non-graph baselines have no propagation to sample — their
        ``batch_scores`` already touches only batch-sized activations — so
        the dense path is reused unchanged.
        """
        del fanout, rng  # no propagation to sample in the fallback
        return self.batch_scores(users, pos_items, neg_items)

    def extract_block(self, users: np.ndarray, pos_items: np.ndarray,
                      neg_items: np.ndarray, *, fanout=10,
                      rng: np.random.Generator | None = None):
        """Parameter-free sampled-propagation block for one batch.

        The async training pipeline (:mod:`repro.train.pipeline`) calls
        this on a background worker — extraction reads only the graph
        structure and the rng, never the parameters, so it can run while
        the optimizer is still applying the previous step. Graph models
        return a layered block consumed by :meth:`block_batch_scores`;
        the default returns ``None`` — non-graph models have nothing to
        prefetch beyond the batch itself.
        """
        del users, pos_items, neg_items, fanout, rng
        return None

    def block_batch_scores(self, users: np.ndarray, pos_items: np.ndarray,
                           neg_items: np.ndarray, block,
                           ) -> tuple[Tensor, Tensor]:
        """Score one batch over a block prefetched by :meth:`extract_block`.

        ``block=None`` (the non-graph fallback) routes to
        :meth:`sampled_batch_scores`, which for embedding-table baselines
        gathers with the row-sparse path.
        """
        if block is not None:
            raise NotImplementedError(
                f"{type(self).__name__} returned a block from extract_block "
                "but does not implement block_batch_scores")
        return self.sampled_batch_scores(users, pos_items, neg_items)

    def l2_batch(self, users: np.ndarray, pos_items: np.ndarray,
                 neg_items: np.ndarray, weight: float) -> Tensor:
        """Batch-local λ‖Θ_batch‖² for the sampled training path.

        Models with embedding tables override this (via
        :func:`repro.nn.losses.l2_regularization_batch`) to penalize only
        the rows the step touched, keeping the regularizer's gradient
        row-sparse. The fallback penalizes every parameter — correct for
        models whose parameters are all dense-touched each step.
        """
        del users, pos_items, neg_items
        from repro.nn.losses import l2_regularization

        return l2_regularization(self.parameters(), weight)

    def _tables_l2_batch(self, entries: list[tuple[Tensor, np.ndarray]],
                         weight: float) -> Tensor:
        """Batch-local L2 over ``(table, touched_rows)`` pairs.

        Penalizes each table's touched rows via row-sparse gathers, plus
        every parameter *not* listed as a table densely (layer weights are
        touched each step regardless of sampling). A table may be a raw
        ``Parameter``, an ``nn.Embedding``, or a
        :class:`~repro.shard.ShardedEmbedding` — for the latter two every
        parameter behind the table (the weight, or all K shard blocks) is
        excluded from the dense sweep.
        """
        from repro.nn.losses import l2_regularization_batch
        from repro.shard import table_parameters

        table_params = [p for table, _ in entries
                        for p in table_parameters(table)]
        dense = [p for p in self.parameters()
                 if not any(p is q for q in table_params)]
        return l2_regularization_batch(entries, dense, weight)

    def _embedding_l2_batch(self, user_table, item_table,
                            users: np.ndarray, pos_items: np.ndarray,
                            neg_items: np.ndarray, weight: float) -> Tensor:
        """Shared ``l2_batch`` recipe for two-table embedding models."""
        return self._tables_l2_batch(
            [(user_table, users),
             (item_table, np.concatenate([pos_items, neg_items]))], weight)

    def score(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Inference-mode scores (no autograd graph, dropout disabled)."""
        was_training = self.training
        if was_training:
            self.eval()
        try:
            with no_grad():
                return self.score_tensor(np.asarray(users), np.asarray(items)).data
        finally:
            if was_training:
                self.train()

    def on_step_end(self) -> None:
        """Hook called after each optimizer step (cache invalidation)."""

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, train: InteractionDataset, config: TrainConfig | None = None,
            eval_fn=None, resume_from: str | None = None) -> HistoryRecorder:
        """Train with the paper's pairwise objective; returns history.

        ``resume_from`` continues bit-exactly from a training-state file a
        previous run wrote via ``TrainConfig.save_state``.
        """
        config = config or TrainConfig()
        trainer = Trainer(self, train, config, eval_fn=eval_fn)
        return trainer.run(resume_from=resume_from)

    # ------------------------------------------------------------------
    # serving API
    # ------------------------------------------------------------------
    def serving_embeddings(self) -> tuple[np.ndarray, np.ndarray] | None:
        """(user_matrix, item_matrix) whose inner product is ``score``.

        Factored models (GNMR, NGCF) override this so the serving layer
        can snapshot their embedding tables and rank the full catalog with
        one blocked matmul. ``None`` (the default) means the model has no
        such form — serving falls back to brute-force pairwise scoring.
        """
        return None

    def cold_user_embeddings(self, users) -> np.ndarray | None:
        """Fresh serving rows for a few users, or ``None`` if unsupported.

        Graph models (GNMR, NGCF) override this with single-seed layered
        extraction so the serving tier can embed users absent from the
        current snapshot on demand instead of waiting for the next one.
        The contract: the returned (U, D) rows match those users' rows in
        :meth:`serving_embeddings` recomputed from the current parameters
        to within a float64 ulp (same ranking).
        """
        return None

    def recommend_topk(self, users, k: int = 10, *, train=None,
                       exclude: str | tuple | list | None = "target",
                       batch_users: int = 256, dtype=None):
        """Batched top-K recommendations through the serving subsystem.

        Convenience wrapper building a one-shot
        :class:`~repro.serve.RecommendationService`; long-lived serving
        should construct the service once and reuse it across requests.

        Parameters
        ----------
        users:
            One user id or an array of them.
        train:
            Training dataset providing the seen-item exclusion mask
            (``None`` → nothing excluded).
        exclude:
            Which behaviors make items non-recommendable (see
            :class:`~repro.serve.ExclusionMask.from_dataset`).
        dtype:
            Snapshot precision; ``None`` keeps the model's own dtype so
            results match ``score`` exactly.

        Returns
        -------
        repro.serve.TopKResult
        """
        from repro.serve import RecommendationService

        service = RecommendationService(self, train=train, dtype=dtype,
                                        k_default=k, batch_users=batch_users,
                                        exclude=exclude, auto_refresh=False)
        return service.recommend(users, k)

    # ------------------------------------------------------------------
    # application API
    # ------------------------------------------------------------------
    def recommend(self, user: int, top_n: int = 10,
                  exclude_items: set[int] | None = None,
                  candidate_items: np.ndarray | None = None) -> list[tuple[int, float]]:
        """Top-N (item, score) recommendations for one user.

        Parameters
        ----------
        exclude_items:
            Items to filter out (typically the user's training positives).
        candidate_items:
            Restrict scoring to these items (defaults to the full catalog).
        """
        if candidate_items is None:
            candidate_items = np.arange(self.num_items)
        candidate_items = np.asarray(candidate_items, dtype=np.int64)
        if exclude_items:
            mask = np.array([i not in exclude_items for i in candidate_items])
            candidate_items = candidate_items[mask]
        if candidate_items.size == 0:
            return []
        users = np.full(candidate_items.size, int(user), dtype=np.int64)
        scores = self.score(users, candidate_items)
        order = np.argsort(-scores)[:top_n]
        return [(int(candidate_items[i]), float(scores[i])) for i in order]

"""Seed-replicated evaluation of a model spec."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.analysis.stats import mean_std
from repro.data import build_eval_candidates, leave_one_out_split
from repro.data.dataset import InteractionDataset
from repro.eval import evaluate_model
from repro.train import TrainConfig


@dataclass
class ReplicateResult:
    """Aggregated metrics across replicate runs.

    ``per_run`` holds one metrics dict per seed;
    ``ranks`` the per-user positive ranks of each run (for paired tests).
    """

    per_run: list[dict[str, float]] = field(default_factory=list)
    ranks: list[np.ndarray] = field(default_factory=list)

    def summary(self) -> dict[str, tuple[float, float]]:
        """metric → (mean, std) across runs."""
        if not self.per_run:
            return {}
        keys = self.per_run[0].keys()
        return {key: mean_std([run[key] for run in self.per_run]) for key in keys}

    def __len__(self) -> int:
        return len(self.per_run)


def replicate(dataset_factory: Callable[[int], InteractionDataset],
              model_factory: Callable[[InteractionDataset], object],
              train_config: TrainConfig,
              seeds: tuple[int, ...] = (0, 1, 2),
              num_negatives: int = 99,
              top_ns: tuple[int, ...] = (10,)) -> ReplicateResult:
    """Train and evaluate a model spec across data seeds.

    Parameters
    ----------
    dataset_factory:
        seed → dataset (e.g. ``lambda s: taobao_like(seed=s)``).
    model_factory:
        training dataset → untrained model. A fresh model per replicate.
    train_config:
        Shared training hyperparameters.
    """
    result = ReplicateResult()
    for seed in seeds:
        dataset = dataset_factory(seed)
        split = leave_one_out_split(dataset, rng=np.random.default_rng(seed))
        candidates = build_eval_candidates(
            split.train, split.test_users, split.test_items,
            num_negatives=num_negatives, rng=np.random.default_rng(seed + 1))
        model = model_factory(split.train)
        model.fit(split.train, train_config)
        outcome = evaluate_model(model, candidates)
        metrics = {}
        for n in top_ns:
            metrics[f"HR@{n}"] = outcome.hr(n)
            metrics[f"NDCG@{n}"] = outcome.ndcg(n)
        result.per_run.append(metrics)
        result.ranks.append(outcome.ranks)
    return result

"""Statistical helpers for comparing recommenders fairly."""

from __future__ import annotations

import numpy as np


def mean_std(values) -> tuple[float, float]:
    """Sample mean and (ddof=1) standard deviation; std 0 for singletons."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("mean_std needs at least one value")
    mean = float(values.mean())
    std = float(values.std(ddof=1)) if values.size > 1 else 0.0
    return mean, std


def metric_std_error(metric_value: float, num_users: int) -> float:
    """Binomial standard error of a per-user hit metric (e.g. HR@N).

    HR@N is a mean of Bernoulli(p) indicators over test users, so its
    sampling std is sqrt(p(1−p)/U) — the noise floor any single-run
    comparison must clear.
    """
    if num_users <= 0:
        raise ValueError("num_users must be positive")
    p = min(max(metric_value, 0.0), 1.0)
    return float(np.sqrt(p * (1.0 - p) / num_users))


def bootstrap_paired_difference(ranks_a: np.ndarray, ranks_b: np.ndarray,
                                top_n: int = 10, num_samples: int = 2000,
                                seed: int = 0) -> dict[str, float]:
    """Paired bootstrap over users for ΔHR@N between two models.

    Both rank arrays must come from the *same* test users and candidate
    sets (the standard paired design). Returns the observed difference
    (A − B), the bootstrap std, and a two-sided p-value for Δ = 0.
    """
    ranks_a = np.asarray(ranks_a)
    ranks_b = np.asarray(ranks_b)
    if ranks_a.shape != ranks_b.shape:
        raise ValueError("paired comparison needs equal-length rank arrays")
    hits_a = (ranks_a < top_n).astype(np.float64)
    hits_b = (ranks_b < top_n).astype(np.float64)
    observed = float(hits_a.mean() - hits_b.mean())
    rng = np.random.default_rng(seed)
    n = ranks_a.size
    diffs = np.empty(num_samples)
    per_user = hits_a - hits_b
    for s in range(num_samples):
        sample = rng.integers(0, n, size=n)
        diffs[s] = per_user[sample].mean()
    std = float(diffs.std(ddof=1))
    # two-sided p-value: how often the bootstrapped difference crosses zero
    if observed >= 0:
        tail = float(np.mean(diffs <= 0.0))
    else:
        tail = float(np.mean(diffs >= 0.0))
    p_value = min(1.0, 2.0 * tail)
    return {"difference": observed, "std": std, "p_value": p_value}

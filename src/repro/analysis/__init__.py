"""Result analysis: seed replication, summary statistics, significance.

Sampled-metric evaluation on small candidate sets is noisy (HR@10 std is
≈ sqrt(p(1−p)/U) ≈ 0.04 at U = 150 test users), so single-run comparisons
between close models are unreliable. This package provides the tooling a
careful user needs: run a model spec across seeds, aggregate mean ± std,
and compare two models with a paired bootstrap on per-user ranks.
"""

from repro.analysis.replication import ReplicateResult, replicate
from repro.analysis.stats import (
    bootstrap_paired_difference,
    mean_std,
    metric_std_error,
)
from repro.analysis.curves import learning_curve

__all__ = [
    "replicate",
    "ReplicateResult",
    "mean_std",
    "metric_std_error",
    "bootstrap_paired_difference",
    "learning_curve",
]

"""Learning-curve extraction: metric-vs-epoch from a trained history."""

from __future__ import annotations

from typing import Callable

from repro.data.dataset import InteractionDataset
from repro.eval import evaluate_model
from repro.train import TrainConfig
from repro.train.callbacks import HistoryRecorder


def learning_curve(model, train: InteractionDataset, candidates,
                   config: TrainConfig,
                   metric: Callable | None = None) -> HistoryRecorder:
    """Train ``model`` with a per-epoch evaluation callback.

    Returns the history whose ``metric`` series is the learning curve
    (default metric: HR@10 on ``candidates``).
    """
    if metric is None:
        def metric() -> float:
            return evaluate_model(model, candidates).hr(10)

    return model.fit(train, config, eval_fn=metric)

"""Plain-text table formatting for experiment results."""

from __future__ import annotations

from typing import Mapping


def format_table(results: Mapping[str, Mapping[str, float]], title: str = "",
                 float_fmt: str = "{:.3f}", name_header: str = "model") -> str:
    """Render {row → {column → value}} as an aligned text table."""
    rows = list(results)
    columns: list[str] = []
    for row in rows:
        for column in results[row]:
            if column not in columns:
                columns.append(column)
    widths = {c: max(len(str(c)), 8) for c in columns}
    name_width = max([len(r) for r in rows] + [len(name_header)])

    def fmt(value) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    lines = []
    if title:
        lines.append(title)
    header = name_header.ljust(name_width) + "  " + "  ".join(
        str(c).rjust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = "  ".join(
            fmt(results[row].get(c, "")).rjust(widths[c]) for c in columns)
        lines.append(row.ljust(name_width) + "  " + cells)
    return "\n".join(lines)


def format_comparison(measured: Mapping[str, Mapping[str, float]],
                      paper: Mapping[str, tuple[float, float]],
                      title: str = "") -> str:
    """Side-by-side measured vs. paper-reported HR@10/NDCG@10 table.

    ``paper[model] = (hr, ndcg)``; models missing on either side are shown
    with blanks so the rows always line up with the paper's roster.
    """
    merged: dict[str, dict[str, object]] = {}
    for model in list(paper) + [m for m in measured if m not in paper]:
        row: dict[str, object] = {}
        if model in measured:
            row["HR@10 (ours)"] = measured[model].get("HR@10", "")
            row["NDCG@10 (ours)"] = measured[model].get("NDCG@10", "")
        if model in paper:
            row["HR@10 (paper)"] = paper[model][0]
            row["NDCG@10 (paper)"] = paper[model][1]
        merged[model] = row
    return format_table(merged, title=title)

"""Experiment harness: one runner per table/figure of the paper.

========  =============================================  ====================
ID        Paper artifact                                 Runner
========  =============================================  ====================
table1    Dataset statistics                             :func:`run_table1`
table2    HR@10/NDCG@10, 13 models × 3 datasets          :func:`run_table2`
table3    HR@N/NDCG@N sweep on Yelp                      :func:`run_table3`
fig2      GNMR-be / GNMR-ma ablation                     :func:`run_fig2`
table4    Behavior-type ablation                         :func:`run_table4`
fig3      Propagation-depth sweep                        :func:`run_fig3`
ext       Extension ablations (init / loss / aggregator) :func:`run_ext_ablation`
========  =============================================  ====================

Each runner returns structured results and can print the paper-formatted
table; ``benchmarks/`` wraps them with pytest-benchmark.
"""

from repro.experiments.specs import (
    ExperimentScale,
    SMALL_SCALE,
    TINY_SCALE,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    dataset_by_name,
    make_model,
    MODEL_NAMES,
    MULTI_BEHAVIOR_MODELS,
)
from repro.experiments.runners import (
    run_table1,
    run_table2,
    run_table3,
    run_fig2,
    run_table4,
    run_fig3,
    run_ext_ablation,
    train_and_evaluate,
)
from repro.experiments.reporting import format_table, format_comparison

__all__ = [
    "ExperimentScale",
    "SMALL_SCALE",
    "TINY_SCALE",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "dataset_by_name",
    "make_model",
    "MODEL_NAMES",
    "MULTI_BEHAVIOR_MODELS",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_fig2",
    "run_table4",
    "run_fig3",
    "run_ext_ablation",
    "train_and_evaluate",
    "format_table",
    "format_comparison",
]

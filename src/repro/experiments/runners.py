"""Runners reproducing every table and figure of the paper's evaluation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data import InteractionDataset, build_eval_candidates, leave_one_out_split
from repro.eval import EvaluationResult, evaluate_model
from repro.experiments.specs import (
    ExperimentScale,
    MODEL_NAMES,
    SMALL_SCALE,
    dataset_by_name,
    make_model,
)


@dataclass
class ExperimentRun:
    """Everything shared by the runners for one dataset instance."""

    dataset: InteractionDataset
    train: InteractionDataset
    candidates: object
    scale: ExperimentScale


def _prepare(dataset: InteractionDataset, scale: ExperimentScale) -> ExperimentRun:
    split = leave_one_out_split(dataset, rng=np.random.default_rng(scale.seed))
    candidates = build_eval_candidates(
        split.train, split.test_users, split.test_items,
        num_negatives=scale.num_negatives, rng=np.random.default_rng(scale.seed + 1),
    )
    return ExperimentRun(dataset=dataset, train=split.train,
                         candidates=candidates, scale=scale)


def train_and_evaluate(model_name: str, run: ExperimentRun,
                       gnmr_overrides: dict | None = None,
                       train_dataset: InteractionDataset | None = None) -> EvaluationResult:
    """Build, train and evaluate one model on a prepared run."""
    train = train_dataset if train_dataset is not None else run.train
    model = make_model(model_name, train, run.scale, gnmr_overrides=gnmr_overrides)
    model.fit(train, run.scale.train_config())
    return evaluate_model(model, run.candidates)


# ----------------------------------------------------------------------
# Table I — dataset statistics
# ----------------------------------------------------------------------

def run_table1(scale: ExperimentScale = SMALL_SCALE) -> dict[str, dict[str, object]]:
    """Schema/statistics rows for the three (synthetic) datasets."""
    rows: dict[str, dict[str, object]] = {}
    for name in ("yelp", "movielens", "taobao"):
        dataset = dataset_by_name(name, scale)
        stats = dataset.graph().stats()
        row = stats.as_row()
        row["per-behavior"] = stats.interactions_per_behavior
        row["density"] = round(stats.density, 5)
        rows[dataset.name] = row
    return rows


# ----------------------------------------------------------------------
# Table II — overall performance comparison
# ----------------------------------------------------------------------

def run_table2(dataset_name: str, scale: ExperimentScale = SMALL_SCALE,
               models: tuple[str, ...] = MODEL_NAMES) -> dict[str, dict[str, float]]:
    """HR@10 / NDCG@10 for every model on one dataset."""
    run = _prepare(dataset_by_name(dataset_name, scale), scale)
    results: dict[str, dict[str, float]] = {}
    for model_name in models:
        outcome = train_and_evaluate(model_name, run)
        results[model_name] = {"HR@10": outcome.hr(10), "NDCG@10": outcome.ndcg(10)}
    return results


# ----------------------------------------------------------------------
# Table III — top-N sweep on Yelp
# ----------------------------------------------------------------------

TABLE3_MODELS: tuple[str, ...] = (
    "BiasMF", "NCF-N", "AutoRec", "NADE", "CF-UIcA", "NMTR", "GNMR",
)


def run_table3(scale: ExperimentScale = SMALL_SCALE,
               top_ns: tuple[int, ...] = (1, 3, 5, 7, 9),
               models: tuple[str, ...] = TABLE3_MODELS) -> dict[str, dict[str, dict[int, float]]]:
    """HR@N / NDCG@N with N swept, on the Yelp-like dataset."""
    run = _prepare(dataset_by_name("yelp", scale), scale)
    results: dict[str, dict[str, dict[int, float]]] = {}
    for model_name in models:
        outcome = train_and_evaluate(model_name, run)
        results[model_name] = {
            "HR": {n: outcome.hr(n) for n in top_ns},
            "NDCG": {n: outcome.ndcg(n) for n in top_ns},
        }
    return results


# ----------------------------------------------------------------------
# Figure 2 — component ablation (GNMR-be / GNMR-ma)
# ----------------------------------------------------------------------

FIG2_VARIANTS: dict[str, dict] = {
    "GNMR-be": {"use_behavior_embedding": False},
    "GNMR-ma": {"use_message_attention": False},
    "GNMR": {},
}


def run_fig2(dataset_name: str, scale: ExperimentScale = SMALL_SCALE) -> dict[str, dict[str, float]]:
    """HR@10 / NDCG@10 for GNMR vs its component-removed variants."""
    run = _prepare(dataset_by_name(dataset_name, scale), scale)
    results: dict[str, dict[str, float]] = {}
    for variant, overrides in FIG2_VARIANTS.items():
        outcome = train_and_evaluate("GNMR", run, gnmr_overrides=overrides)
        results[variant] = {"HR@10": outcome.hr(10), "NDCG@10": outcome.ndcg(10)}
    return results


# ----------------------------------------------------------------------
# Table IV — behavior-type ablation
# ----------------------------------------------------------------------

def behavior_variants(dataset: InteractionDataset) -> dict[str, tuple[str, ...]]:
    """The paper's Table-IV variants for a dataset's behavior inventory.

    Each maps a label to the behavior subset used as propagation edges.
    "w/o <target>" keeps training on the target but removes its edges
    from the graph; "only <target>" keeps only target edges.
    """
    target = dataset.target_behavior
    names = dataset.behavior_names
    variants: dict[str, tuple[str, ...]] = {}
    for behavior in names:
        label = f"w/o {behavior}"
        variants[label] = tuple(b for b in names if b != behavior)
    variants[f"only {target}"] = (target,)
    variants["GNMR"] = names
    return variants


def run_table4(dataset_name: str, scale: ExperimentScale = SMALL_SCALE) -> dict[str, dict[str, float]]:
    """HR@10 / NDCG@10 for GNMR with behavior subsets removed."""
    run = _prepare(dataset_by_name(dataset_name, scale), scale)
    results: dict[str, dict[str, float]] = {}
    for label, behaviors in behavior_variants(run.dataset).items():
        outcome = train_and_evaluate(
            "GNMR", run, gnmr_overrides={"graph_behaviors": behaviors})
        results[label] = {"HR@10": outcome.hr(10), "NDCG@10": outcome.ndcg(10)}
    return results


# ----------------------------------------------------------------------
# Figure 3 — propagation depth
# ----------------------------------------------------------------------

def run_fig3(dataset_name: str, scale: ExperimentScale = SMALL_SCALE,
             depths: tuple[int, ...] = (0, 1, 2, 3)) -> dict[int, dict[str, float]]:
    """HR@10 / NDCG@10 for GNMR-0..GNMR-3, plus % change vs GNMR-2.

    The paper's Figure 3 plots relative decrease vs. the depth-2 model.
    """
    run = _prepare(dataset_by_name(dataset_name, scale), scale)
    absolute: dict[int, dict[str, float]] = {}
    for depth in depths:
        outcome = train_and_evaluate("GNMR", run, gnmr_overrides={"num_layers": depth})
        absolute[depth] = {"HR@10": outcome.hr(10), "NDCG@10": outcome.ndcg(10)}
    reference = absolute.get(2)
    if reference:
        for depth, row in absolute.items():
            row["HR% vs GNMR-2"] = 100.0 * (row["HR@10"] - reference["HR@10"]) / max(reference["HR@10"], 1e-9)
            row["NDCG% vs GNMR-2"] = 100.0 * (row["NDCG@10"] - reference["NDCG@10"]) / max(reference["NDCG@10"], 1e-9)
    return absolute


# ----------------------------------------------------------------------
# Extension ablation: design choices beyond the paper's figures
# ----------------------------------------------------------------------

EXT_VARIANTS: dict[str, dict] = {
    "GNMR (paper defaults)": {},
    "random init (no pretrain)": {"pretrain": False},
    "sum aggregator (literal Eq.2)": {"aggregator": "sum", "pretrain": False},
    "no gated fusion (uniform ψ)": {"use_gated_aggregation": False},
    "single attention head": {"num_heads": 1},
}


def run_ext_ablation(dataset_name: str = "taobao",
                     scale: ExperimentScale = SMALL_SCALE,
                     loss_variants: bool = True) -> dict[str, dict[str, float]]:
    """Ablations over design decisions DESIGN.md calls out (init/agg/loss)."""
    run = _prepare(dataset_by_name(dataset_name, scale), scale)
    results: dict[str, dict[str, float]] = {}
    for label, overrides in EXT_VARIANTS.items():
        outcome = train_and_evaluate("GNMR", run, gnmr_overrides=overrides)
        results[label] = {"HR@10": outcome.hr(10), "NDCG@10": outcome.ndcg(10)}
    if loss_variants:
        model = make_model("GNMR", run.train, scale)
        model.fit(run.train, scale.train_config(loss="bpr"))
        outcome = evaluate_model(model, run.candidates)
        results["BPR loss (vs hinge)"] = {"HR@10": outcome.hr(10), "NDCG@10": outcome.ndcg(10)}
    return results

"""Experiment specifications: scales, model factory, paper-reported numbers.

The paper's absolute numbers are kept here so the harness can print
side-by-side comparisons and check the *shape* of results (orderings),
which is the reproduction target on synthetic data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import GNMR, GNMRConfig
from repro.data import InteractionDataset, movielens_like, taobao_like, yelp_like
from repro.models import (
    AutoRec,
    BiasMF,
    CDAE,
    CFUIcA,
    DIPN,
    DMF,
    NADE,
    NCFGMF,
    NCFMLP,
    NGCF,
    NMTR,
    NeuMF,
    Recommender,
)
from repro.train import TrainConfig


@dataclass(frozen=True)
class ExperimentScale:
    """How big/long experiments run; synthetic stand-in for the real dumps.

    The paper trained on full MovieLens-10M / Yelp / Taobao with a GPU; we
    shrink the universe but keep every protocol choice (leave-one-out,
    99 negatives, d=16, C=8, hinge loss, Adam + 0.96 decay).
    """

    num_users: int = 150
    num_items: int = 260
    num_negatives: int = 99
    epochs: int = 36
    steps_per_epoch: int = 14
    batch_users: int = 28
    per_user: int = 3
    lr: float = 5e-3
    pretrain_epochs: int = 10
    seed: int = 7

    def train_config(self, **overrides) -> TrainConfig:
        base = dict(
            epochs=self.epochs,
            steps_per_epoch=self.steps_per_epoch,
            batch_users=self.batch_users,
            per_user=self.per_user,
            lr=self.lr,
            seed=self.seed,
        )
        base.update(overrides)
        return TrainConfig(**base)

    def gnmr_config(self, **overrides) -> GNMRConfig:
        base = dict(pretrain_epochs=self.pretrain_epochs, seed=self.seed)
        base.update(overrides)
        return GNMRConfig(**base)


#: default scale for the benchmark harness
SMALL_SCALE = ExperimentScale()
#: reduced scale for unit/integration tests
TINY_SCALE = ExperimentScale(num_users=60, num_items=150, num_negatives=49,
                             epochs=10, steps_per_epoch=8, batch_users=16,
                             per_user=2)


def dataset_by_name(name: str, scale: ExperimentScale,
                    seed_offset: int = 0) -> InteractionDataset:
    """Instantiate a dataset schema at a scale.

    The paper's three short names (``movielens``/``yelp``/``taobao``)
    resolve to their generators directly; anything else goes through the
    scenario registry (:mod:`repro.data.scenarios`), so
    ``dataset_by_name("tmall-like", scale)`` and every registered
    ``*-like`` shape work wherever the classic names do.
    """
    generators = {
        "movielens": movielens_like,
        "yelp": yelp_like,
        "taobao": taobao_like,
    }
    if name in generators:
        return generators[name](num_users=scale.num_users,
                                num_items=scale.num_items,
                                seed=scale.seed + seed_offset)
    from repro.data.scenarios import SCENARIOS, build_scenario

    if name not in SCENARIOS:
        raise ValueError(f"unknown dataset {name!r}; pick from "
                         f"{sorted(generators) + sorted(SCENARIOS)}")
    return build_scenario(name, num_users=scale.num_users,
                          num_items=scale.num_items,
                          seed=scale.seed + seed_offset)


#: Table-II model roster in the paper's row order
MODEL_NAMES: tuple[str, ...] = (
    "BiasMF", "DMF", "NCF-M", "NCF-G", "NCF-N", "AutoRec", "CDAE",
    "NADE", "CF-UIcA", "NGCF", "NMTR", "DIPN", "GNMR",
)

#: models that exploit auxiliary behavior types
MULTI_BEHAVIOR_MODELS: tuple[str, ...] = ("NMTR", "DIPN", "GNMR")


def make_model(name: str, train: InteractionDataset,
               scale: ExperimentScale,
               gnmr_overrides: dict | None = None,
               shards: int | None = None,
               shard_strategy: str = "range") -> Recommender:
    """Factory building any Table-II model against a training dataset.

    ``shards`` partitions the user/item embedding tables of the models
    that have them (GNMR, NGCF, BiasMF, the NCF family) across K logical
    shards (see :mod:`repro.shard`); models without row-indexed tables
    ignore it.
    """
    seed = scale.seed
    num_users, num_items = train.num_users, train.num_items
    sharded = {"shards": shards, "shard_strategy": shard_strategy}
    if name == "BiasMF":
        return BiasMF(num_users, num_items, seed=seed, **sharded)
    if name == "DMF":
        return DMF(train, seed=seed)
    if name == "NCF-M":
        return NCFMLP(num_users, num_items, seed=seed, **sharded)
    if name == "NCF-G":
        return NCFGMF(num_users, num_items, seed=seed, **sharded)
    if name == "NCF-N":
        return NeuMF(num_users, num_items, seed=seed, **sharded)
    if name == "AutoRec":
        return AutoRec(train, seed=seed)
    if name == "CDAE":
        return CDAE(train, seed=seed)
    if name == "NADE":
        return NADE(train, seed=seed)
    if name == "CF-UIcA":
        return CFUIcA(train, seed=seed)
    if name == "NGCF":
        return NGCF(train, seed=seed, **sharded)
    if name == "NMTR":
        return NMTR(train, seed=seed)
    if name == "DIPN":
        return DIPN(train, seed=seed)
    if name == "GNMR":
        overrides = dict(gnmr_overrides or {})
        if shards is not None:
            overrides.setdefault("shards", shards)
            overrides.setdefault("shard_strategy", shard_strategy)
        config = scale.gnmr_config(**overrides)
        return GNMR(train, config)
    raise ValueError(f"unknown model {name!r}")


# ----------------------------------------------------------------------
# Paper-reported numbers (for comparison columns in reports)
# ----------------------------------------------------------------------

#: Table II — HR@10 / NDCG@10 per (model, dataset)
PAPER_TABLE2: dict[str, dict[str, tuple[float, float]]] = {
    "BiasMF":  {"movielens": (0.767, 0.490), "yelp": (0.755, 0.481), "taobao": (0.262, 0.153)},
    "DMF":     {"movielens": (0.779, 0.485), "yelp": (0.756, 0.485), "taobao": (0.305, 0.189)},
    "NCF-M":   {"movielens": (0.757, 0.471), "yelp": (0.714, 0.429), "taobao": (0.319, 0.191)},
    "NCF-G":   {"movielens": (0.787, 0.502), "yelp": (0.755, 0.487), "taobao": (0.290, 0.167)},
    "NCF-N":   {"movielens": (0.801, 0.518), "yelp": (0.771, 0.500), "taobao": (0.325, 0.201)},
    "AutoRec": {"movielens": (0.658, 0.392), "yelp": (0.765, 0.472), "taobao": (0.313, 0.190)},
    "CDAE":    {"movielens": (0.659, 0.392), "yelp": (0.750, 0.462), "taobao": (0.329, 0.196)},
    "NADE":    {"movielens": (0.761, 0.486), "yelp": (0.792, 0.499), "taobao": (0.317, 0.191)},
    "CF-UIcA": {"movielens": (0.778, 0.491), "yelp": (0.750, 0.469), "taobao": (0.332, 0.198)},
    "NGCF":    {"movielens": (0.790, 0.508), "yelp": (0.789, 0.500), "taobao": (0.302, 0.185)},
    "NMTR":    {"movielens": (0.808, 0.531), "yelp": (0.790, 0.478), "taobao": (0.332, 0.179)},
    "DIPN":    {"movielens": (0.791, 0.500), "yelp": (0.811, 0.540), "taobao": (0.317, 0.178)},
    "GNMR":    {"movielens": (0.857, 0.575), "yelp": (0.848, 0.559), "taobao": (0.424, 0.249)},
}

#: Table III — HR@N / NDCG@N on Yelp for N ∈ {1,3,5,7,9}
PAPER_TABLE3: dict[str, dict[str, dict[int, float]]] = {
    "BiasMF":  {"HR": {1: 0.287, 3: 0.474, 5: 0.626, 7: 0.714, 9: 0.741},
                "NDCG": {1: 0.287, 3: 0.378, 5: 0.432, 7: 0.461, 9: 0.474}},
    "NCF-N":   {"HR": {1: 0.260, 3: 0.481, 5: 0.604, 7: 0.695, 9: 0.742},
                "NDCG": {1: 0.260, 3: 0.396, 5: 0.444, 7: 0.477, 9: 0.492}},
    "AutoRec": {"HR": {1: 0.228, 3: 0.455, 5: 0.586, 7: 0.684, 9: 0.732},
                "NDCG": {1: 0.228, 3: 0.362, 5: 0.410, 7: 0.449, 9: 0.462}},
    "NADE":    {"HR": {1: 0.265, 3: 0.508, 5: 0.642, 7: 0.720, 9: 0.784},
                "NDCG": {1: 0.265, 3: 0.402, 5: 0.454, 7: 0.478, 9: 0.497}},
    "CF-UIcA": {"HR": {1: 0.235, 3: 0.449, 5: 0.576, 7: 0.659, 9: 0.731},
                "NDCG": {1: 0.235, 3: 0.360, 5: 0.412, 7: 0.440, 9: 0.463}},
    "NMTR":    {"HR": {1: 0.214, 3: 0.466, 5: 0.610, 7: 0.700, 9: 0.762},
                "NDCG": {1: 0.214, 3: 0.360, 5: 0.419, 7: 0.450, 9: 0.469}},
    "GNMR":    {"HR": {1: 0.320, 3: 0.590, 5: 0.700, 7: 0.784, 9: 0.831},
                "NDCG": {1: 0.320, 3: 0.473, 5: 0.519, 7: 0.542, 9: 0.558}},
}

#: Table IV — behavior-subset ablation (HR@10, NDCG@10)
PAPER_TABLE4: dict[str, dict[str, tuple[float, float]]] = {
    "movielens": {
        "w/o dislike": (0.834, 0.549),
        "w/o neutral": (0.816, 0.532),
        "w/o like":    (0.838, 0.559),
        "only like":   (0.835, 0.559),
        "GNMR":        (0.857, 0.575),
    },
    "yelp": {
        "w/o tip":     (0.837, 0.535),
        "w/o dislike": (0.833, 0.542),
        "w/o neutral": (0.831, 0.532),
        "only like":   (0.821, 0.527),
        "GNMR":        (0.848, 0.559),
    },
}

"""File loaders for real dataset dumps.

When the actual MovieLens / Yelp / Taobao files are available they can be
loaded with these helpers; the rating→behavior mapping reproduces §IV-A of
the paper exactly. (The offline benchmark environment uses the synthetic
generators instead; these loaders let real data be dropped in later.)
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable

import numpy as np

from repro.data.dataset import InteractionDataset

# Paper §IV-A: r ≤ 2 → dislike, 2 < r < 4 → neutral, r ≥ 4 → like.
RATING_BEHAVIOR_RULES: dict[str, Callable[[float], bool]] = {
    "dislike": lambda r: r <= 2.0,
    "neutral": lambda r: 2.0 < r < 4.0,
    "like": lambda r: r >= 4.0,
}


def map_ratings_to_behaviors(ratings: np.ndarray) -> np.ndarray:
    """Vectorized rating→behavior-name mapping (paper's partition)."""
    ratings = np.asarray(ratings, dtype=np.float64)
    out = np.where(ratings <= 2.0, "dislike",
                   np.where(ratings >= 4.0, "like", "neutral"))
    return out.astype("U7")


def load_interactions_csv(path: str | Path, name: str,
                          target_behavior: str,
                          behavior_names: tuple[str, ...] | None = None,
                          delimiter: str = ",",
                          user_col: str = "user",
                          item_col: str = "item",
                          behavior_col: str | None = "behavior",
                          rating_col: str | None = None,
                          timestamp_col: str | None = "timestamp",
                          has_header: bool = True) -> InteractionDataset:
    """Load a generic interaction file into an :class:`InteractionDataset`.

    Two modes:

    * ``behavior_col`` given — each row names its behavior type directly
      (Taobao export style: ``user,item,behavior,timestamp``).
    * ``rating_col`` given — behaviors are derived from the rating via the
      paper's mapping (MovieLens / Yelp style).

    User and item ids are re-indexed densely in first-seen order.
    """
    if (behavior_col is None) == (rating_col is None):
        raise ValueError("exactly one of behavior_col / rating_col must be given")
    path = Path(path)

    users_raw: list[str] = []
    items_raw: list[str] = []
    behaviors: list[str] = []
    timestamps: list[float] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        header: list[str] | None = None
        for row_num, row in enumerate(reader):
            if not row:
                continue
            if row_num == 0 and has_header:
                header = [c.strip() for c in row]
                continue
            record = _row_to_record(row, header, user_col, item_col,
                                    behavior_col, rating_col, timestamp_col)
            users_raw.append(record["user"])
            items_raw.append(record["item"])
            if behavior_col is not None:
                behaviors.append(record["behavior"])
            else:
                behaviors.append(str(map_ratings_to_behaviors(
                    np.array([float(record["rating"])]))[0]))
            timestamps.append(float(record.get("timestamp") or 0.0))

    user_index = _dense_index(users_raw)
    item_index = _dense_index(items_raw)
    if behavior_names is None:
        behavior_names = tuple(dict.fromkeys(behaviors))
    if target_behavior not in behavior_names:
        raise ValueError(f"target behavior {target_behavior!r} absent from data")

    grouped: dict[str, dict[str, list]] = {
        b: {"users": [], "items": [], "timestamps": []} for b in behavior_names
    }
    for u, i, b, t in zip(users_raw, items_raw, behaviors, timestamps):
        if b not in grouped:
            continue  # behavior filtered out by explicit behavior_names
        grouped[b]["users"].append(user_index[u])
        grouped[b]["items"].append(item_index[i])
        grouped[b]["timestamps"].append(t)

    interactions = {
        b: {
            "users": np.asarray(rec["users"], dtype=np.int64),
            "items": np.asarray(rec["items"], dtype=np.int64),
            "timestamps": np.asarray(rec["timestamps"], dtype=np.float64),
        }
        for b, rec in grouped.items()
    }
    return InteractionDataset(
        name=name,
        num_users=len(user_index),
        num_items=len(item_index),
        behavior_names=behavior_names,
        target_behavior=target_behavior,
        interactions=interactions,
    )


def _row_to_record(row: list[str], header: list[str] | None, user_col: str,
                   item_col: str, behavior_col: str | None,
                   rating_col: str | None, timestamp_col: str | None) -> dict[str, str]:
    if header is not None:
        lookup = {name: row[idx].strip() for idx, name in enumerate(header) if idx < len(row)}
    else:
        # positional: user, item, behavior-or-rating, [timestamp]
        lookup = {user_col: row[0].strip(), item_col: row[1].strip()}
        third = row[2].strip() if len(row) > 2 else ""
        if behavior_col is not None:
            lookup[behavior_col] = third
        else:
            lookup[rating_col] = third
        if timestamp_col is not None and len(row) > 3:
            lookup[timestamp_col] = row[3].strip()
    record = {"user": lookup[user_col], "item": lookup[item_col]}
    if behavior_col is not None:
        record["behavior"] = lookup[behavior_col]
    if rating_col is not None:
        record["rating"] = lookup[rating_col]
    if timestamp_col is not None and timestamp_col in lookup:
        record["timestamp"] = lookup[timestamp_col]
    return record


def _dense_index(raw_ids: list[str]) -> dict[str, int]:
    index: dict[str, int] = {}
    for raw in raw_ids:
        if raw not in index:
            index[raw] = len(index)
    return index

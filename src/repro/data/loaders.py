"""File loaders for real dataset dumps.

When the actual MovieLens / Yelp / Taobao files are available they can be
loaded with these helpers; the rating→behavior mapping reproduces §IV-A of
the paper exactly. (The offline benchmark environment uses the synthetic
generators instead; these loaders let real data be dropped in later.)

These loaders are the simple, whole-file-in-memory path; for logs that do
not fit comfortably in Python lists use the chunked, memory-bounded
pipeline in :mod:`repro.data.ingest`, which shares the row-parsing rules
defined here.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.data.dataset import InteractionDataset

# Paper §IV-A: r ≤ 2 → dislike, 2 < r < 4 → neutral, r ≥ 4 → like.
RATING_BEHAVIOR_RULES: dict[str, Callable[[float], bool]] = {
    "dislike": lambda r: r <= 2.0,
    "neutral": lambda r: 2.0 < r < 4.0,
    "like": lambda r: r >= 4.0,
}


def map_ratings_to_behaviors(ratings: np.ndarray) -> np.ndarray:
    """Vectorized rating→behavior-name mapping (paper's partition)."""
    ratings = np.asarray(ratings, dtype=np.float64)
    out = np.where(ratings <= 2.0, "dislike",
                   np.where(ratings >= 4.0, "like", "neutral"))
    return out.astype("U7")


class BadRowError(ValueError):
    """A row failed to parse (missing column, NaN/garbage rating, ...)."""


@dataclass
class LoadReport:
    """What happened to the rows of one loaded file.

    Attributes
    ----------
    rows_read:
        Data rows seen in the file (header and blank lines excluded).
    rows_kept:
        Rows that made it into the dataset.
    rows_dropped_bad:
        Rows dropped under ``on_bad_rows="skip"`` (unparseable rating or
        timestamp, missing column). Always 0 under ``"raise"``.
    rows_dropped_behavior:
        Rows whose behavior was filtered out by an explicit
        ``behavior_names``.
    bad_row_examples:
        Up to 5 (row number, reason) samples of dropped bad rows.
    """

    rows_read: int = 0
    rows_kept: int = 0
    rows_dropped_bad: int = 0
    rows_dropped_behavior: int = 0
    bad_row_examples: list[tuple[int, str]] = field(default_factory=list)

    def note_bad(self, row_num: int, reason: str) -> None:
        self.rows_dropped_bad += 1
        if len(self.bad_row_examples) < 5:
            self.bad_row_examples.append((row_num, reason))

    def as_dict(self) -> dict[str, object]:
        return {
            "rows_read": self.rows_read,
            "rows_kept": self.rows_kept,
            "rows_dropped_bad": self.rows_dropped_bad,
            "rows_dropped_behavior": self.rows_dropped_behavior,
        }


def parse_rating(text: str, row_num: int) -> float:
    """Parse a rating cell; NaN/inf/garbage is a :class:`BadRowError`.

    A silently "neutral" NaN would fabricate interactions — the error
    names the row so the log can be fixed (or skipped explicitly with
    ``on_bad_rows="skip"``).
    """
    try:
        value = float(text)
    except (TypeError, ValueError):
        raise BadRowError(
            f"row {row_num}: unparseable rating {text!r}") from None
    if not math.isfinite(value):
        raise BadRowError(f"row {row_num}: non-finite rating {text!r}")
    return value


def parse_timestamp(text: str | None, row_num: int) -> float:
    """Parse a timestamp cell; empty/missing means 0.0 ("no timestamp")."""
    if text is None or text == "":
        return 0.0
    try:
        value = float(text)
    except (TypeError, ValueError):
        raise BadRowError(
            f"row {row_num}: unparseable timestamp {text!r}") from None
    if not math.isfinite(value):
        raise BadRowError(f"row {row_num}: non-finite timestamp {text!r}")
    return value


def load_interactions_csv(path: str | Path, name: str,
                          target_behavior: str,
                          behavior_names: tuple[str, ...] | None = None,
                          delimiter: str = ",",
                          user_col: str = "user",
                          item_col: str = "item",
                          behavior_col: str | None = "behavior",
                          rating_col: str | None = None,
                          timestamp_col: str | None = "timestamp",
                          has_header: bool = True,
                          on_bad_rows: str = "raise") -> InteractionDataset:
    """Load a generic interaction file into an :class:`InteractionDataset`.

    Two modes:

    * ``behavior_col`` given — each row names its behavior type directly
      (Taobao export style: ``user,item,behavior,timestamp``).
    * ``rating_col`` given — behaviors are derived from the rating via the
      paper's mapping (MovieLens / Yelp style).

    User and item ids are re-indexed densely in first-seen order, counting
    only rows that survive behavior filtering — filtered-out behaviors
    leave no phantom ids (and therefore no oversized embedding rows or
    zero-interaction eval users).

    Unparseable/NaN ratings and timestamps raise :class:`BadRowError` by
    default; ``on_bad_rows="skip"`` drops and counts them instead (see
    :func:`load_interactions_csv_with_report` for the counts).
    """
    dataset, _ = load_interactions_csv_with_report(
        path, name, target_behavior, behavior_names=behavior_names,
        delimiter=delimiter, user_col=user_col, item_col=item_col,
        behavior_col=behavior_col, rating_col=rating_col,
        timestamp_col=timestamp_col, has_header=has_header,
        on_bad_rows=on_bad_rows)
    return dataset


def load_interactions_csv_with_report(
        path: str | Path, name: str,
        target_behavior: str,
        behavior_names: tuple[str, ...] | None = None,
        delimiter: str = ",",
        user_col: str = "user",
        item_col: str = "item",
        behavior_col: str | None = "behavior",
        rating_col: str | None = None,
        timestamp_col: str | None = "timestamp",
        has_header: bool = True,
        on_bad_rows: str = "raise") -> tuple[InteractionDataset, LoadReport]:
    """:func:`load_interactions_csv` plus the :class:`LoadReport` of drops."""
    if (behavior_col is None) == (rating_col is None):
        raise ValueError("exactly one of behavior_col / rating_col must be given")
    if on_bad_rows not in ("raise", "skip"):
        raise ValueError("on_bad_rows must be 'raise' or 'skip'")
    path = Path(path)
    report = LoadReport()

    users_raw: list[str] = []
    items_raw: list[str] = []
    behaviors: list[str] = []
    timestamps: list[float] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        header: list[str] | None = None
        for row_num, row in enumerate(reader):
            if not row:
                continue
            if row_num == 0 and has_header:
                header = [c.strip() for c in row]
                continue
            report.rows_read += 1
            try:
                record = _row_to_record(row, row_num, header, user_col,
                                        item_col, behavior_col, rating_col,
                                        timestamp_col)
                if behavior_col is not None:
                    behavior = record["behavior"]
                else:
                    rating = parse_rating(record["rating"], row_num)
                    behavior = str(map_ratings_to_behaviors(
                        np.array([rating]))[0])
                timestamp = parse_timestamp(record.get("timestamp"), row_num)
            except BadRowError as exc:
                if on_bad_rows == "raise":
                    raise
                report.note_bad(row_num, str(exc))
                continue
            users_raw.append(record["user"])
            items_raw.append(record["item"])
            behaviors.append(behavior)
            timestamps.append(timestamp)

    if behavior_names is None:
        behavior_names = tuple(dict.fromkeys(behaviors))
    if target_behavior not in behavior_names:
        raise ValueError(f"target behavior {target_behavior!r} absent from data")

    # behavior filtering happens BEFORE indexing: ids appearing only in
    # filtered-out rows must not occupy embedding rows
    keep_behaviors = set(behavior_names)
    survivors = [idx for idx, b in enumerate(behaviors) if b in keep_behaviors]
    report.rows_dropped_behavior = report.rows_read - report.rows_dropped_bad - len(survivors)
    report.rows_kept = len(survivors)

    user_index = _dense_index(users_raw[i] for i in survivors)
    item_index = _dense_index(items_raw[i] for i in survivors)

    grouped: dict[str, dict[str, list]] = {
        b: {"users": [], "items": [], "timestamps": []} for b in behavior_names
    }
    for idx in survivors:
        rec = grouped[behaviors[idx]]
        rec["users"].append(user_index[users_raw[idx]])
        rec["items"].append(item_index[items_raw[idx]])
        rec["timestamps"].append(timestamps[idx])

    interactions = {
        b: {
            "users": np.asarray(rec["users"], dtype=np.int64),
            "items": np.asarray(rec["items"], dtype=np.int64),
            "timestamps": np.asarray(rec["timestamps"], dtype=np.float64),
        }
        for b, rec in grouped.items()
    }
    dataset = InteractionDataset(
        name=name,
        num_users=len(user_index),
        num_items=len(item_index),
        behavior_names=behavior_names,
        target_behavior=target_behavior,
        interactions=interactions,
    )
    return dataset, report


def _row_to_record(row: list[str], row_num: int, header: list[str] | None,
                   user_col: str, item_col: str, behavior_col: str | None,
                   rating_col: str | None, timestamp_col: str | None) -> dict[str, str]:
    if header is not None:
        lookup = {name: row[idx].strip() for idx, name in enumerate(header) if idx < len(row)}
    else:
        # positional: user, item, behavior-or-rating, [timestamp]
        lookup = {user_col: row[0].strip(), item_col: row[1].strip()}
        third = row[2].strip() if len(row) > 2 else ""
        if behavior_col is not None:
            lookup[behavior_col] = third
        else:
            lookup[rating_col] = third
        if timestamp_col is not None and len(row) > 3:
            lookup[timestamp_col] = row[3].strip()
    required = [user_col, item_col]
    required.append(behavior_col if behavior_col is not None else rating_col)
    for column in required:
        if column not in lookup or lookup[column] == "":
            raise BadRowError(f"row {row_num}: missing column {column!r}")
    record = {"user": lookup[user_col], "item": lookup[item_col]}
    if behavior_col is not None:
        record["behavior"] = lookup[behavior_col]
    if rating_col is not None:
        record["rating"] = lookup[rating_col]
    if timestamp_col is not None and timestamp_col in lookup:
        record["timestamp"] = lookup[timestamp_col]
    return record


def _dense_index(raw_ids) -> dict[str, int]:
    index: dict[str, int] = {}
    for raw in raw_ids:
        if raw not in index:
            index[raw] = len(index)
    return index

"""Evaluation candidate generation: 1 positive vs. 99 sampled negatives.

The paper: "We sample each positive instance with 99 negative instances
from users' interacted and non-interacted items" — i.e. the standard
sampled-metric protocol of NCF. Negatives exclude every item the user
touched under the *target* behavior (train + test).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import InteractionDataset


@dataclass
class EvalCandidates:
    """Per-user ranking candidate lists.

    Attributes
    ----------
    users:
        (U,) test users.
    items:
        (U, 1 + num_negatives) candidate items; column 0 is the positive.
    """

    users: np.ndarray
    items: np.ndarray

    @property
    def num_negatives(self) -> int:
        return self.items.shape[1] - 1

    def __len__(self) -> int:
        return len(self.users)


def build_eval_candidates(train: InteractionDataset, test_users: np.ndarray,
                          test_items: np.ndarray, num_negatives: int = 99,
                          rng: np.random.Generator | None = None) -> EvalCandidates:
    """Sample negative candidates for each held-out (user, item) pair.

    Negatives are uniform over items the user never interacted with under
    the target behavior (including the held-out positive itself).
    """
    rng = rng or np.random.default_rng(0)
    num_items = train.num_items
    if num_negatives >= num_items:
        raise ValueError("num_negatives must be smaller than the item count")

    # Per-user positive sets from the training portion of the target behavior.
    users_arr, items_arr, _ = train.arrays(train.target_behavior)
    positives: dict[int, set[int]] = {}
    for u, i in zip(users_arr.tolist(), items_arr.tolist()):
        positives.setdefault(u, set()).add(i)

    candidates = np.empty((len(test_users), 1 + num_negatives), dtype=np.int64)
    for row, (user, positive) in enumerate(zip(test_users.tolist(), test_items.tolist())):
        exclude = set(positives.get(user, ())) | {positive}
        if num_items - len(exclude) < num_negatives:
            raise ValueError(f"user {user} has too few non-interacted items")
        sampled: list[int] = []
        seen: set[int] = set()
        while len(sampled) < num_negatives:
            draw = rng.integers(0, num_items, size=num_negatives)
            for item in draw.tolist():
                if item not in exclude and item not in seen:
                    sampled.append(item)
                    seen.add(item)
                    if len(sampled) == num_negatives:
                        break
        candidates[row, 0] = positive
        candidates[row, 1:] = sampled
    return EvalCandidates(users=np.asarray(test_users, dtype=np.int64), items=candidates)

"""Scenario registry: named dataset shapes behind one string.

The public multi-behavior benchmarks (Tmall / Taobao UserBehavior
click→cart→fav→buy logs; MovieLens and Yelp rating platforms; Gowalla
check-ins as a single-behavior stress scale) cannot be vendored into this
repository, but their *shapes* — behavior inventories, funnel ratios,
density, popularity skew — are what every perf and quality claim stands
on. Each :class:`ScenarioSpec` binds a name like ``tmall-like`` to either

* a **skew-matched synthetic generator** reproducing that shape at any
  requested scale, or
* an **ingested artifact** (``repro.cli ingest <csv> --out <npz>``) when
  the real log is available — ``resolve_scenario`` accepts a registry
  name or a path to such an artifact interchangeably, which is what makes
  ``repro.cli train --scenario tmall-like`` and
  ``repro.cli train --scenario taobao.npz`` the same one-liner.

The registry builds on :mod:`repro.experiments.specs`: ``dataset_by_name``
resolves scenario names through here, so every experiment runner and the
CLI share one catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.data.dataset import InteractionDataset
from repro.data.synthetic import (
    SyntheticConfig,
    generate_multi_behavior_dataset,
    movielens_like,
    taobao_like,
    yelp_like,
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One named dataset shape.

    Attributes
    ----------
    name:
        Registry key (``tmall-like``, ...).
    description:
        What real workload the shape mirrors.
    behavior_names, target_behavior:
        The behavior inventory and the predicted behavior.
    default_users, default_items:
        Scale used when the caller does not override it; the user:item
        ratio mirrors the real dataset (Gowalla has ~12× more venues than
        the item-poor rating platforms, for example).
    skew:
        The generator knobs that make the shape: per-behavior
        ``(alignment, mean events/user)`` pairs, popularity-skew exponent,
        funnel notes. Documented verbatim in ``docs/data.md``.
    builder:
        ``(num_users, num_items, seed) -> InteractionDataset``.
    """

    name: str
    description: str
    behavior_names: tuple[str, ...]
    target_behavior: str
    default_users: int
    default_items: int
    skew: dict[str, object]
    builder: Callable[[int, int, int], InteractionDataset]

    def build(self, num_users: int | None = None,
              num_items: int | None = None,
              seed: int = 0) -> InteractionDataset:
        return self.builder(num_users or self.default_users,
                            num_items or self.default_items, seed)

    def describe(self) -> dict[str, object]:
        return {
            "behaviors": "{" + ", ".join(self.behavior_names) + "}",
            "target": self.target_behavior,
            "default scale": f"{self.default_users}u x {self.default_items}i",
            "description": self.description,
        }


def _tmall_like(num_users: int, num_items: int, seed: int) -> InteractionDataset:
    """Tmall/Taobao *UserBehavior* shape: click ≫ fav ≈ cart ≫ buy.

    Clicks are dense and exploratory (weakly aligned with preference);
    favorites and carts are sparse, affinity-biased; purchases are the
    sparsest and most aligned. Heavier popularity skew than the rating
    platforms — campaign traffic concentrates on head items.
    """
    return generate_multi_behavior_dataset(SyntheticConfig(
        num_users=num_users, num_items=num_items, seed=seed,
        name="tmall-like", target_behavior="buy",
        popularity_skew=1.2,
        behavior_specs={
            "click": (0.30, 36.0),
            "fav": (0.55, 5.0),
            "cart": (0.60, 6.0),
            "buy": (0.80, 3.5),
        },
    ))


def _gowalla_like(num_users: int, num_items: int, seed: int) -> InteractionDataset:
    """Gowalla check-ins: one behavior, huge catalog, extreme long tail."""
    return generate_multi_behavior_dataset(SyntheticConfig(
        num_users=num_users, num_items=num_items, seed=seed,
        name="gowalla-like", target_behavior="checkin",
        popularity_skew=1.5,
        behavior_specs={"checkin": (0.55, 9.0)},
    ))


def _movielens_10m_like(num_users: int, num_items: int, seed: int) -> InteractionDataset:
    # scale=1.5 over the base generator: the 10M dump averages ~140
    # ratings/user, the densest shape in the catalog
    return movielens_like(num_users=num_users, num_items=num_items,
                          seed=seed, scale=1.5)


def _taobao_like(num_users: int, num_items: int, seed: int) -> InteractionDataset:
    return taobao_like(num_users=num_users, num_items=num_items, seed=seed)


def _yelp_like(num_users: int, num_items: int, seed: int) -> InteractionDataset:
    return yelp_like(num_users=num_users, num_items=num_items, seed=seed)


SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec for spec in (
        ScenarioSpec(
            name="tmall-like",
            description="Tmall/Taobao UserBehavior e-commerce log: dense "
                        "exploratory clicks over a fav/cart funnel into "
                        "sparse purchases; heavy head-item skew",
            behavior_names=("click", "fav", "cart", "buy"),
            target_behavior="buy",
            default_users=200, default_items=400,
            skew={"click": (0.30, 36.0), "fav": (0.55, 5.0),
                  "cart": (0.60, 6.0), "buy": (0.80, 3.5),
                  "popularity_skew": 1.2},
            builder=_tmall_like,
        ),
        ScenarioSpec(
            name="taobao-like",
            description="paper's Taobao schema: page_view -> favorite/cart "
                        "-> purchase funnel with direct (trace-free) buys",
            behavior_names=("page_view", "favorite", "cart", "purchase"),
            target_behavior="purchase",
            default_users=200, default_items=300,
            skew={"view_alignment": 0.35, "direct_purchase_fraction": 0.55,
                  "mean_purchases": 3.5, "popularity_skew": 1.0},
            builder=_taobao_like,
        ),
        ScenarioSpec(
            name="movielens-10m-like",
            description="MovieLens-10M rating platform: dense explicit "
                        "ratings mapped to dislike/neutral/like (paper "
                        "SIV-A thresholds)",
            behavior_names=("dislike", "neutral", "like"),
            target_behavior="like",
            default_users=200, default_items=300,
            skew={"mean_ratings_scale": 1.5, "rating_noise": 0.8,
                  "popularity_skew": 1.0},
            builder=_movielens_10m_like,
        ),
        ScenarioSpec(
            name="yelp-like",
            description="Yelp venues: rating-derived behaviors plus a "
                        "satisfaction-biased 'tip' auxiliary",
            behavior_names=("tip", "dislike", "neutral", "like"),
            target_behavior="like",
            default_users=200, default_items=300,
            skew={"mean_ratings_scale": 1.0, "tip_base_rate": 0.15,
                  "popularity_skew": 1.0},
            builder=_yelp_like,
        ),
        ScenarioSpec(
            name="gowalla-like",
            description="Gowalla check-ins: single sparse behavior over a "
                        "catalog ~2x the user count, extreme long tail "
                        "(single-behavior stress scale)",
            behavior_names=("checkin",),
            target_behavior="checkin",
            default_users=200, default_items=420,
            skew={"checkin": (0.55, 9.0), "popularity_skew": 1.5},
            builder=_gowalla_like,
        ),
    )
}


def list_scenarios() -> tuple[str, ...]:
    return tuple(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; pick from "
                         f"{sorted(SCENARIOS)} or pass a dataset artifact "
                         f"path (.npz from `repro.cli ingest`)") from None


def build_scenario(name: str, num_users: int | None = None,
                   num_items: int | None = None,
                   seed: int = 0) -> InteractionDataset:
    """Build a registry scenario at an optional scale override."""
    return get_scenario(name).build(num_users, num_items, seed)


def resolve_scenario(name_or_path: str, num_users: int | None = None,
                     num_items: int | None = None,
                     seed: int = 0) -> InteractionDataset:
    """One string in, one dataset out: registry name or artifact path.

    A value naming a registered scenario builds its skew-matched synthetic
    dataset; anything that looks like a file path loads the ingested
    artifact (scale overrides do not apply to artifacts — the log *is*
    the scale).
    """
    if name_or_path in SCENARIOS:
        return build_scenario(name_or_path, num_users, num_items, seed)
    path = Path(name_or_path)
    if path.suffix == ".npz" or path.exists():
        from repro.data.ingest import load_dataset_npz

        dataset, _ = load_dataset_npz(path)
        return dataset
    raise ValueError(f"unknown scenario {name_or_path!r}; pick from "
                     f"{sorted(SCENARIOS)} or pass a dataset artifact "
                     f"path (.npz from `repro.cli ingest`)")

"""Datasets: container, splits, synthetic generators, file loaders."""

from repro.data.dataset import Interaction, InteractionDataset
from repro.data.splits import LeaveOneOutSplit, leave_one_out_split
from repro.data.negatives import build_eval_candidates, EvalCandidates
from repro.data.synthetic import (
    SyntheticConfig,
    generate_multi_behavior_dataset,
    movielens_like,
    yelp_like,
    taobao_like,
    synthesize_attributes,
)
from repro.data.loaders import (
    load_interactions_csv,
    map_ratings_to_behaviors,
    RATING_BEHAVIOR_RULES,
)

__all__ = [
    "Interaction",
    "InteractionDataset",
    "LeaveOneOutSplit",
    "leave_one_out_split",
    "build_eval_candidates",
    "EvalCandidates",
    "SyntheticConfig",
    "generate_multi_behavior_dataset",
    "movielens_like",
    "yelp_like",
    "taobao_like",
    "synthesize_attributes",
    "load_interactions_csv",
    "map_ratings_to_behaviors",
    "RATING_BEHAVIOR_RULES",
]

"""Datasets: container, splits, synthetic generators, loaders, ingestion."""

from repro.data.dataset import Interaction, InteractionDataset
from repro.data.splits import (
    LeaveOneOutSplit,
    TemporalSplit,
    leave_one_out_split,
    temporal_split,
)
from repro.data.negatives import build_eval_candidates, EvalCandidates
from repro.data.synthetic import (
    SyntheticConfig,
    generate_multi_behavior_dataset,
    movielens_like,
    yelp_like,
    taobao_like,
    synthesize_attributes,
)
from repro.data.loaders import (
    BadRowError,
    LoadReport,
    load_interactions_csv,
    load_interactions_csv_with_report,
    map_ratings_to_behaviors,
    RATING_BEHAVIOR_RULES,
)
from repro.data.ingest import (
    IngestOptions,
    IngestReport,
    ingest_csv,
    iter_event_chunks,
    load_dataset_npz,
    save_dataset_npz,
)
from repro.data.scenarios import (
    SCENARIOS,
    ScenarioSpec,
    build_scenario,
    get_scenario,
    list_scenarios,
    resolve_scenario,
)

__all__ = [
    "Interaction",
    "InteractionDataset",
    "LeaveOneOutSplit",
    "TemporalSplit",
    "leave_one_out_split",
    "temporal_split",
    "build_eval_candidates",
    "EvalCandidates",
    "SyntheticConfig",
    "generate_multi_behavior_dataset",
    "movielens_like",
    "yelp_like",
    "taobao_like",
    "synthesize_attributes",
    "BadRowError",
    "LoadReport",
    "load_interactions_csv",
    "load_interactions_csv_with_report",
    "map_ratings_to_behaviors",
    "RATING_BEHAVIOR_RULES",
    "IngestOptions",
    "IngestReport",
    "ingest_csv",
    "iter_event_chunks",
    "load_dataset_npz",
    "save_dataset_npz",
    "SCENARIOS",
    "ScenarioSpec",
    "build_scenario",
    "get_scenario",
    "list_scenarios",
    "resolve_scenario",
]

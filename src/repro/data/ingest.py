"""Streaming, memory-bounded dataset ingestion from event logs.

The in-memory loader (:mod:`repro.data.loaders`) materializes every row of
the file as Python objects before building arrays — fine for test
fixtures, hopeless for UserBehavior-scale logs. This module builds the
same :class:`~repro.data.dataset.InteractionDataset` (and from it the
stacked-CSR :class:`~repro.graph.MultiBehaviorGraph`) out-of-core:

* the file is read in **fixed-size chunks** (``chunk_rows`` events at a
  time) through one shared parser that applies the same rating→behavior
  mapping and bad-row policy as the in-memory loader;
* **two-pass dense re-indexing**: pass 1 streams the log once to build
  the user/item vocabularies (from rows that survive behavior filtering
  only — no phantom ids) and exact per-behavior row counts; pass 2
  streams it again, filling **preallocated** per-behavior arrays through
  bounded append buffers that flush every ``chunk_rows`` events;
* peak *transient* memory is therefore O(chunk + vocabulary), independent
  of the number of events in the log — the benchmark
  ``benchmarks/bench_ingest.py`` measures and CI gates exactly this;
* the result can be persisted as a **deterministic** ``.npz`` artifact
  (byte-identical across re-ingests of the same log) and reloaded without
  re-parsing: ``repro.cli ingest <csv> --out <npz>`` then
  ``repro.cli train --scenario <npz>``.
"""

from __future__ import annotations

import csv
import io
import json
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.loaders import (
    BadRowError,
    map_ratings_to_behaviors,
    parse_rating,
    parse_timestamp,
)

#: artifact format version (bumped on any byte-layout change)
ARTIFACT_FORMAT = "repro-dataset-npz-v1"

#: fixed zip entry date — np.savez stamps wall-clock time into the zip
#: members, which would break byte-identical re-ingest
_EPOCH = (1980, 1, 1, 0, 0, 0)


@dataclass
class IngestOptions:
    """Parsing knobs shared by both streaming passes.

    ``chunk_rows`` bounds every transient buffer: the parser hands rows
    over in lists of at most this many events, and the pass-2 append
    buffers flush into the preallocated arrays at the same bound.
    """

    delimiter: str = ","
    user_col: str = "user"
    item_col: str = "item"
    behavior_col: str | None = "behavior"
    rating_col: str | None = None
    timestamp_col: str | None = "timestamp"
    has_header: bool = True
    on_bad_rows: str = "raise"
    chunk_rows: int = 100_000

    def __post_init__(self):
        if (self.behavior_col is None) == (self.rating_col is None):
            raise ValueError(
                "exactly one of behavior_col / rating_col must be given")
        if self.on_bad_rows not in ("raise", "skip"):
            raise ValueError("on_bad_rows must be 'raise' or 'skip'")
        if self.chunk_rows < 1:
            raise ValueError("chunk_rows must be positive")


@dataclass
class IngestReport:
    """Everything the two passes observed about the log."""

    rows_read: int = 0
    rows_kept: int = 0
    rows_dropped_bad: int = 0
    rows_dropped_behavior: int = 0
    chunks: int = 0
    num_users: int = 0
    num_items: int = 0
    has_timestamps: bool = False
    per_behavior: dict[str, int] = field(default_factory=dict)
    bad_row_examples: list[tuple[int, str]] = field(default_factory=list)

    def as_dict(self) -> dict[str, object]:
        return {
            "rows_read": self.rows_read,
            "rows_kept": self.rows_kept,
            "rows_dropped_bad": self.rows_dropped_bad,
            "rows_dropped_behavior": self.rows_dropped_behavior,
            "chunks": self.chunks,
            "num_users": self.num_users,
            "num_items": self.num_items,
            "has_timestamps": self.has_timestamps,
            "per_behavior": dict(self.per_behavior),
        }


def iter_event_chunks(path: str | Path, options: IngestOptions,
                      report: IngestReport | None = None,
                      ) -> Iterator[list[tuple[str, str, str, float]]]:
    """Stream ``(user, item, behavior, timestamp)`` tuples in bounded chunks.

    Ratings are already mapped to behavior names; bad rows follow
    ``options.on_bad_rows`` (counted into ``report`` when skipping). No
    structure larger than one chunk is ever held.
    """
    path = Path(path)
    rating_mode = options.rating_col is not None
    chunk: list[tuple[str, str, str, float]] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=options.delimiter)
        header: list[str] | None = None
        column_of: dict[str, int] = {}
        for row_num, row in enumerate(reader):
            if not row:
                continue
            if row_num == 0 and options.has_header:
                header = [c.strip() for c in row]
                column_of = {name: idx for idx, name in enumerate(header)}
                continue
            if report is not None:
                report.rows_read += 1
            try:
                parsed = _parse_row(row, row_num, header, column_of,
                                    options, rating_mode)
            except BadRowError as exc:
                if options.on_bad_rows == "raise":
                    raise
                if report is not None:
                    report.rows_dropped_bad += 1
                    if len(report.bad_row_examples) < 5:
                        report.bad_row_examples.append((row_num, str(exc)))
                continue
            chunk.append(parsed)
            if len(chunk) >= options.chunk_rows:
                if report is not None:
                    report.chunks += 1
                yield chunk
                chunk = []
    if chunk:
        if report is not None:
            report.chunks += 1
        yield chunk


def _parse_row(row: list[str], row_num: int, header: list[str] | None,
               column_of: dict[str, int], options: IngestOptions,
               rating_mode: bool) -> tuple[str, str, str, float]:
    if header is not None:
        def cell(column: str) -> str | None:
            idx = column_of.get(column)
            if idx is None or idx >= len(row):
                return None
            return row[idx].strip()
    else:
        # positional: user, item, behavior-or-rating, [timestamp]
        positional = {options.user_col: 0, options.item_col: 1,
                      (options.behavior_col or options.rating_col): 2,
                      options.timestamp_col: 3}

        def cell(column: str) -> str | None:
            idx = positional.get(column)
            if idx is None or idx >= len(row):
                return None
            return row[idx].strip()

    user = cell(options.user_col)
    item = cell(options.item_col)
    if not user or not item:
        raise BadRowError(f"row {row_num}: missing user/item id")
    if rating_mode:
        raw_rating = cell(options.rating_col)
        if not raw_rating:
            raise BadRowError(f"row {row_num}: missing column "
                              f"{options.rating_col!r}")
        rating = parse_rating(raw_rating, row_num)
        behavior = str(map_ratings_to_behaviors(np.array([rating]))[0])
    else:
        behavior = cell(options.behavior_col)
        if not behavior:
            raise BadRowError(f"row {row_num}: missing column "
                              f"{options.behavior_col!r}")
    timestamp = 0.0
    if options.timestamp_col is not None:
        timestamp = parse_timestamp(cell(options.timestamp_col), row_num)
    return user, item, behavior, timestamp


def ingest_csv(path: str | Path, name: str, target_behavior: str,
               behavior_names: tuple[str, ...] | None = None,
               options: IngestOptions | None = None,
               **option_overrides) -> tuple[InteractionDataset, IngestReport]:
    """Two-pass, chunked ingestion of an event log into a dataset.

    Pass 1 scans the log to size everything (vocabularies over surviving
    rows, exact per-behavior counts); pass 2 fills preallocated arrays.
    Between the two passes nothing proportional to the log is resident
    beyond the final arrays themselves.

    Parameters mirror :func:`repro.data.loaders.load_interactions_csv`;
    extra keyword overrides are applied onto ``options``.
    """
    if options is None:
        options = IngestOptions(**option_overrides)
    elif option_overrides:
        raise ValueError("pass either options or keyword overrides, not both")

    report = IngestReport()
    keep: set[str] | None = set(behavior_names) if behavior_names else None

    # ---------------------------------------------------------- pass 1
    user_index: dict[str, int] = {}
    item_index: dict[str, int] = {}
    counts: dict[str, int] = {}
    discovered: dict[str, None] = {}
    has_timestamps = False
    for chunk in iter_event_chunks(path, options, report):
        for user, item, behavior, timestamp in chunk:
            discovered.setdefault(behavior, None)
            if keep is not None and behavior not in keep:
                report.rows_dropped_behavior += 1
                continue
            counts[behavior] = counts.get(behavior, 0) + 1
            if user not in user_index:
                user_index[user] = len(user_index)
            if item not in item_index:
                item_index[item] = len(item_index)
            if timestamp != 0.0:
                has_timestamps = True

    if behavior_names is None:
        behavior_names = tuple(discovered)
    if target_behavior not in behavior_names:
        raise ValueError(
            f"target behavior {target_behavior!r} absent from data "
            f"(saw {tuple(discovered)})")

    # ---------------------------------------------------------- pass 2
    arrays = {
        b: {
            "users": np.empty(counts.get(b, 0), dtype=np.int64),
            "items": np.empty(counts.get(b, 0), dtype=np.int64),
            "timestamps": np.zeros(counts.get(b, 0), dtype=np.float64),
        }
        for b in behavior_names
    }
    offsets = {b: 0 for b in behavior_names}
    buffers: dict[str, list[tuple[int, int, float]]] = {b: [] for b in behavior_names}

    def flush(behavior: str) -> None:
        buffer = buffers[behavior]
        if not buffer:
            return
        start = offsets[behavior]
        stop = start + len(buffer)
        rec = arrays[behavior]
        rec["users"][start:stop] = [entry[0] for entry in buffer]
        rec["items"][start:stop] = [entry[1] for entry in buffer]
        rec["timestamps"][start:stop] = [entry[2] for entry in buffer]
        offsets[behavior] = stop
        buffer.clear()

    kept_behaviors = set(behavior_names)
    for chunk in iter_event_chunks(path, options, report=None):
        for user, item, behavior, timestamp in chunk:
            if behavior not in kept_behaviors:
                continue
            buffers[behavior].append(
                (user_index[user], item_index[item], timestamp))
        for behavior in behavior_names:
            flush(behavior)

    for behavior in behavior_names:
        if offsets[behavior] != counts.get(behavior, 0):
            raise RuntimeError(
                f"log changed between ingest passes: behavior {behavior!r} "
                f"filled {offsets[behavior]} of {counts.get(behavior, 0)} rows")

    report.rows_kept = sum(counts.values())
    report.num_users = len(user_index)
    report.num_items = len(item_index)
    report.has_timestamps = has_timestamps
    report.per_behavior = {b: counts.get(b, 0) for b in behavior_names}

    dataset = InteractionDataset(
        name=name,
        num_users=len(user_index),
        num_items=len(item_index),
        behavior_names=behavior_names,
        target_behavior=target_behavior,
        interactions=arrays,
    )
    return dataset, report


# ----------------------------------------------------------------------
# Deterministic dataset artifacts
# ----------------------------------------------------------------------

def save_dataset_npz(dataset: InteractionDataset, path: str | Path,
                     has_timestamps: bool | None = None) -> Path:
    """Persist a dataset as a deterministic ``.npz``-compatible archive.

    Byte-identical for identical datasets: entries are stored uncompressed
    in a fixed order with a fixed timestamp (``np.savez`` stamps wall-clock
    time, which would make every re-ingest differ). Readable with
    :func:`load_dataset_npz` (or plain ``np.load`` for the arrays).
    """
    path = Path(path)
    if has_timestamps is None:
        has_timestamps = any(
            bool(np.any(dataset.arrays(b)[2] != 0.0))
            for b in dataset.behavior_names)
    meta = {
        "format": ARTIFACT_FORMAT,
        "name": dataset.name,
        "behavior_names": list(dataset.behavior_names),
        "target_behavior": dataset.target_behavior,
        "num_users": dataset.num_users,
        "num_items": dataset.num_items,
        "has_timestamps": bool(has_timestamps),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as archive:
        _write_member(archive, "meta.json",
                      json.dumps(meta, indent=2, sort_keys=True).encode())
        for index, behavior in enumerate(dataset.behavior_names):
            users, items, timestamps = dataset.arrays(behavior)
            # index prefix keeps member order stable and behavior names
            # free of path-separator constraints
            for label, array in (("users", users), ("items", items),
                                 ("timestamps", timestamps)):
                _write_member(archive, f"b{index}_{label}.npy",
                              _npy_bytes(array))
    return path


def load_dataset_npz(path: str | Path) -> tuple[InteractionDataset, dict]:
    """Load a dataset artifact written by :func:`save_dataset_npz`.

    Returns ``(dataset, meta)`` where ``meta`` carries the artifact
    header (including ``has_timestamps``).
    """
    path = Path(path)
    with zipfile.ZipFile(path, "r") as archive:
        try:
            meta = json.loads(archive.read("meta.json"))
        except KeyError:
            raise ValueError(f"{path} is not a repro dataset artifact "
                             "(missing meta.json)") from None
        if meta.get("format") != ARTIFACT_FORMAT:
            raise ValueError(f"{path}: unsupported artifact format "
                             f"{meta.get('format')!r}")
        interactions = {}
        for index, behavior in enumerate(meta["behavior_names"]):
            interactions[behavior] = {
                label: _read_member(archive, f"b{index}_{label}.npy")
                for label in ("users", "items", "timestamps")
            }
    dataset = InteractionDataset(
        name=meta["name"],
        num_users=int(meta["num_users"]),
        num_items=int(meta["num_items"]),
        behavior_names=tuple(meta["behavior_names"]),
        target_behavior=meta["target_behavior"],
        interactions=interactions,
    )
    return dataset, meta


def _npy_bytes(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.lib.format.write_array(buffer, np.ascontiguousarray(array),
                              allow_pickle=False)
    return buffer.getvalue()


def _read_member(archive: zipfile.ZipFile, name: str) -> np.ndarray:
    with archive.open(name) as member:
        return np.lib.format.read_array(io.BytesIO(member.read()),
                                        allow_pickle=False)


def _write_member(archive: zipfile.ZipFile, name: str, payload: bytes) -> None:
    info = zipfile.ZipInfo(name, date_time=_EPOCH)
    info.compress_type = zipfile.ZIP_STORED
    info.external_attr = 0o600 << 16
    archive.writestr(info, payload)

"""The multi-behavior interaction dataset container.

An :class:`InteractionDataset` is the canonical in-memory representation of
the tensor X ∈ {0,1}^{I×J×K} from the paper's preliminaries, stored as
per-behavior interaction lists (COO). It knows which behavior is the
*target* (the one being predicted, "like"/"purchase") and can materialize
the :class:`~repro.graph.MultiBehaviorGraph` used for message passing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.interaction_graph import MultiBehaviorGraph


@dataclass(frozen=True)
class Interaction:
    """One observed user–item interaction event."""

    user: int
    item: int
    behavior: str
    timestamp: float = 0.0


class InteractionDataset:
    """Container of multi-typed user–item interactions.

    Parameters
    ----------
    name:
        Dataset label (e.g. ``"taobao-like"``).
    num_users, num_items:
        Entity counts.
    behavior_names:
        Ordered behavior types; the order defines behavior ids ``k``.
    target_behavior:
        The behavior type to be predicted (must appear in
        ``behavior_names``).
    interactions:
        Mapping behavior → dict with ``users``, ``items`` (int arrays) and
        optional ``timestamps`` (float array).
    user_features, item_features:
        Optional side-feature matrices of shape (I, F_u) / (J, F_v) — the
        attribute extension the paper's conclusion proposes as future work.
    """

    def __init__(self, name: str, num_users: int, num_items: int,
                 behavior_names: tuple[str, ...] | list[str],
                 target_behavior: str,
                 interactions: dict[str, dict[str, np.ndarray]],
                 user_features: np.ndarray | None = None,
                 item_features: np.ndarray | None = None):
        self.name = name
        self.num_users = int(num_users)
        self.num_items = int(num_items)
        self.behavior_names = tuple(behavior_names)
        if target_behavior not in self.behavior_names:
            raise ValueError(f"target behavior {target_behavior!r} not in {self.behavior_names}")
        self.target_behavior = target_behavior
        self._interactions: dict[str, dict[str, np.ndarray]] = {}
        for behavior in self.behavior_names:
            record = interactions.get(behavior, {"users": np.array([], dtype=np.int64),
                                                 "items": np.array([], dtype=np.int64)})
            users = np.asarray(record["users"], dtype=np.int64)
            items = np.asarray(record["items"], dtype=np.int64)
            if users.shape != items.shape:
                raise ValueError(f"users/items length mismatch for behavior {behavior!r}")
            timestamps = np.asarray(
                record.get("timestamps", np.zeros(users.size)), dtype=np.float64
            )
            self._interactions[behavior] = {
                "users": users, "items": items, "timestamps": timestamps,
            }
        if user_features is not None:
            user_features = np.asarray(user_features, dtype=np.float64)
            if user_features.shape[0] != self.num_users:
                raise ValueError("user_features rows must equal num_users")
        if item_features is not None:
            item_features = np.asarray(item_features, dtype=np.float64)
            if item_features.shape[0] != self.num_items:
                raise ValueError("item_features rows must equal num_items")
        self.user_features = user_features
        self.item_features = item_features
        self._graph_cache: MultiBehaviorGraph | None = None

    # ------------------------------------------------------------------
    @property
    def num_behaviors(self) -> int:
        return len(self.behavior_names)

    @property
    def auxiliary_behaviors(self) -> tuple[str, ...]:
        return tuple(b for b in self.behavior_names if b != self.target_behavior)

    def arrays(self, behavior: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (users, items, timestamps) for one behavior."""
        record = self._interactions[behavior]
        return record["users"], record["items"], record["timestamps"]

    def interaction_count(self, behavior: str | None = None) -> int:
        if behavior is not None:
            return int(self._interactions[behavior]["users"].size)
        return int(sum(rec["users"].size for rec in self._interactions.values()))

    def iter_interactions(self, behavior: str):
        users, items, timestamps = self.arrays(behavior)
        for u, i, t in zip(users, items, timestamps):
            yield Interaction(int(u), int(i), behavior, float(t))

    # ------------------------------------------------------------------
    def graph(self) -> MultiBehaviorGraph:
        """Materialize (and cache) the multi-behavior interaction graph."""
        if self._graph_cache is None:
            self._graph_cache = MultiBehaviorGraph(
                self.num_users, self.num_items, self.behavior_names,
                {b: (self._interactions[b]["users"], self._interactions[b]["items"])
                 for b in self.behavior_names},
            )
        return self._graph_cache

    # ------------------------------------------------------------------
    def drop_behaviors(self, behaviors: list[str] | tuple[str, ...]) -> "InteractionDataset":
        """Dataset copy without the given auxiliary behaviors (Table IV)."""
        drop = set(behaviors)
        if self.target_behavior in drop:
            raise ValueError("cannot drop the target behavior")
        keep = tuple(b for b in self.behavior_names if b not in drop)
        return InteractionDataset(
            name=f"{self.name}-wo-{'+'.join(sorted(drop))}",
            num_users=self.num_users,
            num_items=self.num_items,
            behavior_names=keep,
            target_behavior=self.target_behavior,
            interactions={b: self._interactions[b] for b in keep},
            user_features=self.user_features,
            item_features=self.item_features,
        )

    def only_target(self) -> "InteractionDataset":
        """Dataset copy keeping only the target behavior ("only like")."""
        return InteractionDataset(
            name=f"{self.name}-only-{self.target_behavior}",
            num_users=self.num_users,
            num_items=self.num_items,
            behavior_names=(self.target_behavior,),
            target_behavior=self.target_behavior,
            interactions={self.target_behavior: self._interactions[self.target_behavior]},
            user_features=self.user_features,
            item_features=self.item_features,
        )

    def remove_target_rows(self, rows: np.ndarray) -> "InteractionDataset":
        """Copy with specific target-behavior *rows* (by index) removed.

        The exact rows are dropped and nothing else — duplicate
        (user, item) pairs elsewhere in the log survive. This is what the
        leave-one-out split uses, so a repeat purchase never loses its
        training copies along with the held-out one.
        """
        rows = np.asarray(rows, dtype=np.int64)
        record = self._interactions[self.target_behavior]
        n = record["users"].size
        if rows.size and (rows.min() < 0 or rows.max() >= n):
            raise ValueError(f"row index out of range [0, {n})")
        keep_mask = np.ones(n, dtype=bool)
        keep_mask[rows] = False
        return self._with_target_mask(keep_mask)

    def remove_target_pairs(self, users: np.ndarray, items: np.ndarray) -> "InteractionDataset":
        """Copy with one target-behavior row removed per (user, item) pair.

        Exactly one occurrence — the earliest in log order — is removed for
        each occurrence of a pair in ``users``/``items``; repeat
        interactions with the same item keep their other rows. Pairs absent
        from the log are ignored.
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        record = self._interactions[self.target_behavior]
        # pack (user, item) into one sortable key; items < num_items keeps it
        # collision-free
        keys = record["users"] * np.int64(self.num_items) + record["items"]
        held = users * np.int64(self.num_items) + items
        order = np.argsort(keys, kind="stable")  # stable → log order per key
        sorted_keys = keys[order]
        held_sorted = np.sort(held, kind="stable")
        # the k-th duplicate of a held pair maps to the pair's k-th log row
        first = np.searchsorted(held_sorted, held_sorted, side="left")
        pos = np.searchsorted(sorted_keys, held_sorted, side="left")
        pos = pos + (np.arange(held_sorted.size) - first)
        valid = pos < keys.size
        valid[valid] &= sorted_keys[pos[valid]] == held_sorted[valid]
        keep_mask = np.ones(keys.size, dtype=bool)
        keep_mask[order[pos[valid]]] = False
        return self._with_target_mask(keep_mask)

    def _with_target_mask(self, keep_mask: np.ndarray) -> "InteractionDataset":
        record = self._interactions[self.target_behavior]
        new_interactions = dict(self._interactions)
        new_interactions[self.target_behavior] = {
            "users": record["users"][keep_mask],
            "items": record["items"][keep_mask],
            "timestamps": record["timestamps"][keep_mask],
        }
        return InteractionDataset(
            name=self.name,
            num_users=self.num_users,
            num_items=self.num_items,
            behavior_names=self.behavior_names,
            target_behavior=self.target_behavior,
            interactions=new_interactions,
            user_features=self.user_features,
            item_features=self.item_features,
        )

    # ------------------------------------------------------------------
    def user_target_items(self, user: int) -> np.ndarray:
        """Items the user interacted with under the target behavior."""
        record = self._interactions[self.target_behavior]
        return record["items"][record["users"] == user]

    def describe(self) -> dict[str, object]:
        """Table-I style summary."""
        return {
            "name": self.name,
            "User #": self.num_users,
            "Item #": self.num_items,
            "Interaction #": self.interaction_count(),
            "Interactive Behavior Type": "{" + ", ".join(self.behavior_names) + "}",
            "target": self.target_behavior,
        }

"""Train/test splitting under the leave-one-out protocol.

The paper evaluates with the standard sampled-ranking protocol: for each
user one target-behavior interaction is held out as the test positive
(the most recent one when timestamps exist, else a random one), the rest
remains in the training graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import InteractionDataset


@dataclass
class LeaveOneOutSplit:
    """Result of a leave-one-out split.

    Attributes
    ----------
    train:
        Training dataset (test positives removed from the target behavior).
    test_users, test_items:
        Parallel arrays: user u's held-out positive item.
    """

    train: InteractionDataset
    test_users: np.ndarray
    test_items: np.ndarray

    def __post_init__(self):
        if self.test_users.shape != self.test_items.shape:
            raise ValueError("test_users/test_items must be parallel arrays")

    def __len__(self) -> int:
        return len(self.test_users)


def leave_one_out_split(dataset: InteractionDataset,
                        rng: np.random.Generator | None = None,
                        min_train_interactions: int = 1,
                        use_timestamps: bool = True) -> LeaveOneOutSplit:
    """Hold out one target-behavior interaction per eligible user.

    A user is eligible if they have at least ``min_train_interactions + 1``
    target interactions — so the training graph never loses a user's last
    positive edge.

    Parameters
    ----------
    dataset:
        The full dataset.
    rng:
        Used when timestamps are absent/disabled to pick a random positive.
    use_timestamps:
        Hold out the most recent interaction when timestamps are available.
    """
    rng = rng or np.random.default_rng(0)
    users, items, timestamps = dataset.arrays(dataset.target_behavior)
    have_timestamps = use_timestamps and np.any(timestamps != 0.0)

    test_users: list[int] = []
    test_items: list[int] = []
    order = np.argsort(users, kind="stable")
    sorted_users = users[order]
    boundaries = np.flatnonzero(np.diff(sorted_users)) + 1
    groups = np.split(order, boundaries)
    for group in groups:
        if group.size < min_train_interactions + 1:
            continue
        user = int(users[group[0]])
        if have_timestamps:
            pick = group[np.argmax(timestamps[group])]
        else:
            pick = rng.choice(group)
        test_users.append(user)
        test_items.append(int(items[pick]))

    test_users_arr = np.asarray(test_users, dtype=np.int64)
    test_items_arr = np.asarray(test_items, dtype=np.int64)
    train = dataset.remove_target_pairs(test_users_arr, test_items_arr)
    return LeaveOneOutSplit(train=train, test_users=test_users_arr, test_items=test_items_arr)

"""Train/test splitting: leave-one-out and temporal protocols.

The paper evaluates with the standard sampled-ranking protocol: for each
user one target-behavior interaction is held out as the test positive
(the most recent one when timestamps exist, else a random one), the rest
remains in the training graph.

Real event logs additionally support a *temporal* protocol — everything
before a cut-off timestamp trains, target interactions at or after it are
evaluated — which avoids the leakage of ranking a user's past against
models trained on their future.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import InteractionDataset


@dataclass
class LeaveOneOutSplit:
    """Result of a leave-one-out split.

    Attributes
    ----------
    train:
        Training dataset (test positives removed from the target behavior).
    test_users, test_items:
        Parallel arrays: user u's held-out positive item.
    """

    train: InteractionDataset
    test_users: np.ndarray
    test_items: np.ndarray

    def __post_init__(self):
        if self.test_users.shape != self.test_items.shape:
            raise ValueError("test_users/test_items must be parallel arrays")

    def __len__(self) -> int:
        return len(self.test_users)


def leave_one_out_split(dataset: InteractionDataset,
                        rng: np.random.Generator | None = None,
                        min_train_interactions: int = 1,
                        use_timestamps: bool = True) -> LeaveOneOutSplit:
    """Hold out one target-behavior interaction per eligible user.

    A user is eligible if they have at least ``min_train_interactions + 1``
    target interactions — so the training graph never loses a user's last
    positive edge.

    Exactly one *row* is removed per held-out interaction: on logs with
    repeat (user, item) events the duplicates stay in training, only the
    single picked row leaves.

    Parameters
    ----------
    dataset:
        The full dataset.
    rng:
        Used when timestamps are absent/disabled to pick a random positive.
    use_timestamps:
        Hold out the most recent interaction when timestamps are available.
        An all-zero timestamp column (the loader's stand-in for "no
        timestamps in this log") falls back to the random pick; a column
        that merely *contains* epoch-0 rows among real times is honored.
    """
    rng = rng or np.random.default_rng(0)
    users, items, timestamps = dataset.arrays(dataset.target_behavior)
    have_timestamps = use_timestamps and np.any(timestamps != 0.0)

    test_users: list[int] = []
    test_rows: list[int] = []
    order = np.argsort(users, kind="stable")
    sorted_users = users[order]
    boundaries = np.flatnonzero(np.diff(sorted_users)) + 1
    groups = np.split(order, boundaries)
    for group in groups:
        if group.size < min_train_interactions + 1:
            continue
        user = int(users[group[0]])
        if have_timestamps:
            pick = group[np.argmax(timestamps[group])]
        else:
            pick = rng.choice(group)
        test_users.append(user)
        test_rows.append(int(pick))

    test_rows_arr = np.asarray(test_rows, dtype=np.int64)
    test_users_arr = np.asarray(test_users, dtype=np.int64)
    test_items_arr = items[test_rows_arr] if test_rows_arr.size else np.array([], dtype=np.int64)
    train = dataset.remove_target_rows(test_rows_arr)
    return LeaveOneOutSplit(train=train, test_users=test_users_arr,
                            test_items=np.asarray(test_items_arr, dtype=np.int64))


@dataclass
class TemporalSplit:
    """Result of a split-by-timestamp.

    Attributes
    ----------
    train:
        Training dataset: every behavior truncated to rows strictly before
        ``split_time``.
    test_users, test_items:
        Parallel arrays of held-out target interactions at/after
        ``split_time`` (a user may appear several times).
    split_time:
        The cut-off timestamp actually used.
    """

    train: InteractionDataset
    test_users: np.ndarray
    test_items: np.ndarray
    split_time: float

    def __post_init__(self):
        if self.test_users.shape != self.test_items.shape:
            raise ValueError("test_users/test_items must be parallel arrays")

    def __len__(self) -> int:
        return len(self.test_users)


def temporal_split(dataset: InteractionDataset,
                   split_time: float | None = None,
                   test_fraction: float = 0.2) -> TemporalSplit:
    """Split every behavior at a timestamp: past trains, future evaluates.

    Parameters
    ----------
    dataset:
        The full dataset; its timestamp columns must carry real times
        (an all-zero column means the log had none — raises).
    split_time:
        Explicit cut-off. Rows with ``t < split_time`` train; *target*
        rows with ``t >= split_time`` become test positives. When omitted
        it is derived from ``test_fraction``.
    test_fraction:
        Fraction of target-behavior rows to hold out (by timestamp
        quantile) when ``split_time`` is not given.

    Users whose training portion keeps no target interaction are dropped
    from the test set (their embeddings would be untrained), and auxiliary
    behaviors are truncated at the same cut-off so no future leaks into
    the training graph.
    """
    users, items, timestamps = dataset.arrays(dataset.target_behavior)
    if not np.any(timestamps != 0.0):
        raise ValueError("temporal_split needs real timestamps; this "
                         "dataset's target behavior has none")
    if split_time is None:
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        split_time = float(np.quantile(timestamps, 1.0 - test_fraction))

    interactions: dict[str, dict[str, np.ndarray]] = {}
    for behavior in dataset.behavior_names:
        b_users, b_items, b_ts = dataset.arrays(behavior)
        mask = b_ts < split_time
        interactions[behavior] = {
            "users": b_users[mask], "items": b_items[mask],
            "timestamps": b_ts[mask],
        }
    train = InteractionDataset(
        name=dataset.name,
        num_users=dataset.num_users,
        num_items=dataset.num_items,
        behavior_names=dataset.behavior_names,
        target_behavior=dataset.target_behavior,
        interactions=interactions,
        user_features=dataset.user_features,
        item_features=dataset.item_features,
    )

    test_mask = timestamps >= split_time
    test_users = users[test_mask]
    test_items = items[test_mask]
    # drop test rows of users with no training positives left
    trained = np.unique(interactions[dataset.target_behavior]["users"])
    keep = np.isin(test_users, trained)
    return TemporalSplit(train=train,
                         test_users=test_users[keep],
                         test_items=test_items[keep],
                         split_time=float(split_time))

"""Synthetic multi-behavior datasets mirroring MovieLens / Yelp / Taobao.

The offline environment cannot download the paper's datasets, so we generate
synthetic equivalents that preserve the *generative assumptions* the paper's
claims rest on:

1. every behavior type is a (differently) noisy view of one latent user–item
   affinity — so auxiliary behaviors carry transferable signal;
2. auxiliary behaviors are denser and noisier than the target behavior
   (page views ≫ purchases; all ratings ≫ likes);
3. e-commerce behaviors form a funnel (view ⊇ cart ⊇ purchase), the cascade
   structure NMTR exploits;
4. rating platforms map scores to {dislike, neutral, like} exactly as the
   paper does (r ≤ 2 → dislike, 2 < r < 4 → neutral, r ≥ 4 → like);
5. item popularity is long-tailed and user activity is heterogeneous.

Under these assumptions the paper's *relative* results (multi-behavior >
single-behavior; GNMR ablations ordered as reported) are reproducible at
laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import InteractionDataset


@dataclass
class SyntheticConfig:
    """Knobs of the latent-factor generator.

    Attributes
    ----------
    num_users, num_items:
        Entity counts.
    num_factors:
        Dimensionality of the latent affinity model.
    behavior_specs:
        Ordered mapping behavior → (alignment, mean_interactions_per_user).
        ``alignment`` ∈ [0, 1] is how strongly the behavior follows the true
        affinity (1 = pure preference, 0 = pure noise).
    target_behavior:
        Which behavior the models must predict.
    popularity_skew:
        Exponent of the item-popularity power law (larger = heavier head).
    seed:
        Generator seed; every dataset is fully reproducible.
    """

    num_users: int = 200
    num_items: int = 300
    num_factors: int = 8
    behavior_specs: dict[str, tuple[float, float]] = field(default_factory=dict)
    target_behavior: str = "like"
    popularity_skew: float = 1.0
    seed: int = 0
    name: str = "synthetic"


def _latent_affinity(cfg: SyntheticConfig, rng: np.random.Generator) -> np.ndarray:
    """True affinity matrix: low-rank structure + popularity + user bias."""
    user_factors = rng.standard_normal((cfg.num_users, cfg.num_factors))
    item_factors = rng.standard_normal((cfg.num_items, cfg.num_factors))
    affinity = user_factors @ item_factors.T / np.sqrt(cfg.num_factors)
    # long-tailed item popularity, shared across behaviors
    ranks = np.arange(1, cfg.num_items + 1)
    popularity = 1.0 / ranks ** cfg.popularity_skew
    popularity = (popularity - popularity.mean()) / popularity.std()
    item_order = rng.permutation(cfg.num_items)
    affinity = affinity + 0.6 * popularity[item_order][None, :]
    return affinity


def _sample_user_items(scores: np.ndarray, count: int,
                       rng: np.random.Generator) -> np.ndarray:
    """Sample ``count`` distinct items for one user ∝ softmax(scores)."""
    count = min(count, scores.size)
    logits = scores - scores.max()
    probs = np.exp(2.0 * logits)
    probs /= probs.sum()
    return rng.choice(scores.size, size=count, replace=False, p=probs)


def generate_multi_behavior_dataset(cfg: SyntheticConfig) -> InteractionDataset:
    """Generate a dataset where each behavior is a noisy affinity view."""
    if not cfg.behavior_specs:
        raise ValueError("behavior_specs must not be empty")
    if cfg.target_behavior not in cfg.behavior_specs:
        raise ValueError("target behavior missing from behavior_specs")
    rng = np.random.default_rng(cfg.seed)
    affinity = _latent_affinity(cfg, rng)

    interactions: dict[str, dict[str, np.ndarray]] = {}
    for behavior, (alignment, mean_count) in cfg.behavior_specs.items():
        users_list: list[np.ndarray] = []
        items_list: list[np.ndarray] = []
        # heterogeneous user activity: gamma-distributed interaction counts
        counts = rng.gamma(shape=2.0, scale=mean_count / 2.0, size=cfg.num_users)
        counts = np.maximum(1, counts.round().astype(int))
        noise = rng.standard_normal((cfg.num_users, cfg.num_items))
        scores = alignment * affinity + (1.0 - alignment) * noise
        for user in range(cfg.num_users):
            chosen = _sample_user_items(scores[user], int(counts[user]), rng)
            users_list.append(np.full(chosen.size, user, dtype=np.int64))
            items_list.append(chosen.astype(np.int64))
        users = np.concatenate(users_list)
        items = np.concatenate(items_list)
        timestamps = rng.uniform(0.0, 1.0, size=users.size)
        interactions[behavior] = {"users": users, "items": items, "timestamps": timestamps}

    return InteractionDataset(
        name=cfg.name,
        num_users=cfg.num_users,
        num_items=cfg.num_items,
        behavior_names=tuple(cfg.behavior_specs),
        target_behavior=cfg.target_behavior,
        interactions=interactions,
    )


# ----------------------------------------------------------------------
# Named generators mirroring the paper's three datasets (Table I schemas)
# ----------------------------------------------------------------------

def movielens_like(num_users: int = 200, num_items: int = 300,
                   seed: int = 0, scale: float = 1.0) -> InteractionDataset:
    """MovieLens-like data: ratings mapped to {dislike, neutral, like}.

    Ratings come from the latent affinity plus observation noise; the
    thresholds reproduce the paper's mapping (§IV-A). Users rate many items,
    so all three behaviors are dense relative to Taobao's funnel.
    """
    cfg = SyntheticConfig(num_users=num_users, num_items=num_items, seed=seed,
                          name="movielens-like", target_behavior="like")
    rng = np.random.default_rng(seed)
    affinity = _latent_affinity(cfg, rng)

    mean_ratings = max(8, int(24 * scale))
    counts = np.maximum(2, rng.gamma(2.0, mean_ratings / 2.0, cfg.num_users).astype(int))
    interactions = {b: {"users": [], "items": [], "timestamps": []}
                    for b in ("dislike", "neutral", "like")}
    for user in range(cfg.num_users):
        rated = _sample_user_items(affinity[user], int(counts[user]), rng)
        # rating ∈ [0.5, 5]: affinity quantile + noise, like the 10M scale
        raw = affinity[user, rated] + 0.8 * rng.standard_normal(rated.size)
        rating = np.clip(3.0 + 1.2 * raw, 0.5, 5.0)
        for item, r in zip(rated, rating):
            if r <= 2.0:
                behavior = "dislike"
            elif r >= 4.0:
                behavior = "like"
            else:
                behavior = "neutral"
            interactions[behavior]["users"].append(user)
            interactions[behavior]["items"].append(int(item))
            interactions[behavior]["timestamps"].append(rng.uniform())
    return _finalize(cfg, interactions)


def yelp_like(num_users: int = 200, num_items: int = 300,
              seed: int = 1, scale: float = 1.0) -> InteractionDataset:
    """Yelp-like data: rating-derived behaviors plus a 'tip' behavior.

    Tips are given on a visited-venue subset with mild affinity bias —
    an auxiliary behavior weaker than 'like' but informative.
    """
    cfg = SyntheticConfig(num_users=num_users, num_items=num_items, seed=seed,
                          name="yelp-like", target_behavior="like")
    rng = np.random.default_rng(seed)
    affinity = _latent_affinity(cfg, rng)

    mean_ratings = max(6, int(18 * scale))
    counts = np.maximum(2, rng.gamma(2.0, mean_ratings / 2.0, cfg.num_users).astype(int))
    interactions = {b: {"users": [], "items": [], "timestamps": []}
                    for b in ("tip", "dislike", "neutral", "like")}
    for user in range(cfg.num_users):
        rated = _sample_user_items(affinity[user], int(counts[user]), rng)
        raw = affinity[user, rated] + 0.9 * rng.standard_normal(rated.size)
        rating = np.clip(3.0 + 1.2 * raw, 1.0, 5.0)
        for item, r in zip(rated, rating):
            if r <= 2.0:
                behavior = "dislike"
            elif r >= 4.0:
                behavior = "like"
            else:
                behavior = "neutral"
            interactions[behavior]["users"].append(user)
            interactions[behavior]["items"].append(int(item))
            interactions[behavior]["timestamps"].append(rng.uniform())
            # tip probability grows with satisfaction
            if rng.random() < 0.15 + 0.1 * (r - 3.0):
                interactions["tip"]["users"].append(user)
                interactions["tip"]["items"].append(int(item))
                interactions["tip"]["timestamps"].append(rng.uniform())
    return _finalize(cfg, interactions)


def taobao_like(num_users: int = 200, num_items: int = 300,
                seed: int = 2, scale: float = 1.0,
                view_alignment: float = 0.35,
                direct_purchase_fraction: float = 0.55,
                purchase_sharpness: float = 0.75,
                mean_purchases: float = 3.5) -> InteractionDataset:
    """Taobao-like data: the page-view → favorite/cart → purchase funnel.

    Page views are dense and only weakly aligned with true preference
    (browsing is exploratory); favorites and carts are affinity-biased
    subsets of views; purchases mix *funnel* buys (from carted items) with
    *direct* buys that leave no view trace — mimicking real logs, where
    interaction windows truncate history and most test purchases are not
    simply "viewed but not yet bought" items. Target = purchase.

    Parameters
    ----------
    view_alignment:
        Weight of true affinity in the view score (rest is noise).
    direct_purchase_fraction:
        Fraction of each user's purchases drawn directly from preference
        rather than through the recorded view→cart funnel.
    purchase_sharpness:
        Multiplier on affinity when sampling direct purchases; lower means
        purchases are less predictable from the latent structure alone.
    mean_purchases:
        Poisson mean of purchases per user (≥ 2 enforced so leave-one-out
        always keeps a training edge).
    """
    cfg = SyntheticConfig(num_users=num_users, num_items=num_items, seed=seed,
                          name="taobao-like", target_behavior="purchase")
    rng = np.random.default_rng(seed)
    affinity = _latent_affinity(cfg, rng)

    mean_views = max(10, int(30 * scale))
    view_counts = np.maximum(6, rng.gamma(2.0, mean_views / 2.0, cfg.num_users).astype(int))
    buy_counts = np.maximum(2, rng.poisson(mean_purchases, cfg.num_users))
    interactions = {b: {"users": [], "items": [], "timestamps": []}
                    for b in ("page_view", "favorite", "cart", "purchase")}

    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-z))

    for user in range(cfg.num_users):
        view_scores = (view_alignment * affinity[user]
                       + (1.0 - view_alignment) * rng.standard_normal(cfg.num_items))
        viewed = _sample_user_items(view_scores, int(view_counts[user]), rng)
        t_view = np.sort(rng.uniform(0.0, 0.7, size=viewed.size))
        for item, t in zip(viewed, t_view):
            interactions["page_view"]["users"].append(user)
            interactions["page_view"]["items"].append(int(item))
            interactions["page_view"]["timestamps"].append(float(t))
        aff = affinity[user, viewed]
        fav_mask = rng.random(viewed.size) < _sigmoid(1.2 * aff - 1.5)
        cart_mask = rng.random(viewed.size) < _sigmoid(1.2 * aff - 1.2)
        for item, t, m in zip(viewed, t_view, fav_mask):
            if m:
                interactions["favorite"]["users"].append(user)
                interactions["favorite"]["items"].append(int(item))
                interactions["favorite"]["timestamps"].append(float(t) + 0.1)
        carted: list[tuple[int, float, float]] = []
        for item, t, m, a in zip(viewed, t_view, cart_mask, aff):
            if m:
                interactions["cart"]["users"].append(user)
                interactions["cart"]["items"].append(int(item))
                interactions["cart"]["timestamps"].append(float(t) + 0.15)
                carted.append((int(item), float(t), float(a)))

        total = int(buy_counts[user])
        n_direct = max(1, int(round(total * direct_purchase_fraction)))
        n_funnel = max(1, total - n_direct)
        purchases: dict[int, float] = {}
        # funnel purchases: the user's best carted items convert
        for item, t, a in sorted(carted, key=lambda c: -c[2])[:n_funnel]:
            if rng.random() < _sigmoid(1.5 * a):
                purchases[item] = t + 0.2
        # direct purchases: preference-driven, no view/cart trace recorded
        for item in _sample_user_items(purchase_sharpness * affinity[user], n_direct, rng):
            purchases.setdefault(int(item), rng.uniform(0.7, 1.0))
        # guarantee ≥ 2 purchases so leave-one-out keeps a train edge
        attempts = 0
        while len(purchases) < 2 and attempts < 20:
            attempts += 1
            for item in _sample_user_items(purchase_sharpness * affinity[user], 3, rng):
                if int(item) not in purchases:
                    purchases[int(item)] = rng.uniform(0.7, 1.0)
                    break
        for item, t in purchases.items():
            interactions["purchase"]["users"].append(user)
            interactions["purchase"]["items"].append(item)
            interactions["purchase"]["timestamps"].append(t)
    return _finalize(cfg, interactions)


def synthesize_attributes(dataset: InteractionDataset, num_features: int = 8,
                          noise: float = 0.5, seed: int = 0) -> InteractionDataset:
    """Attach synthetic user/item attribute features to a dataset.

    Implements the data side of the paper's future-work extension
    ("exploring the attribute features from user and item side"): features
    are spectral coordinates of the merged interaction matrix (truncated
    SVD) perturbed with Gaussian noise, so they correlate with true
    preference without simply duplicating the training edges.

    Returns a new dataset sharing the interactions, with
    ``user_features`` (I×F) and ``item_features`` (J×F) attached.
    """
    if num_features <= 0:
        raise ValueError("num_features must be positive")
    rng = np.random.default_rng(seed)
    merged = dataset.graph().merged_adjacency().to_dense()
    u, s, vt = np.linalg.svd(merged, full_matrices=False)
    k = min(num_features, s.size)
    scale = np.sqrt(s[:k])
    user_features = u[:, :k] * scale
    item_features = vt[:k].T * scale
    for features in (user_features, item_features):
        spread = features.std() or 1.0
        features += noise * spread * rng.standard_normal(features.shape)
    if k < num_features:  # pad with pure-noise columns to the requested width
        pad = num_features - k
        user_features = np.hstack([user_features, rng.standard_normal((dataset.num_users, pad))])
        item_features = np.hstack([item_features, rng.standard_normal((dataset.num_items, pad))])
    return InteractionDataset(
        name=f"{dataset.name}+attrs",
        num_users=dataset.num_users,
        num_items=dataset.num_items,
        behavior_names=dataset.behavior_names,
        target_behavior=dataset.target_behavior,
        interactions={b: dict(zip(("users", "items", "timestamps"),
                                  dataset.arrays(b)))
                      for b in dataset.behavior_names},
        user_features=user_features,
        item_features=item_features,
    )


def _finalize(cfg: SyntheticConfig,
              interactions: dict[str, dict[str, list]]) -> InteractionDataset:
    arrays = {
        behavior: {
            "users": np.asarray(rec["users"], dtype=np.int64),
            "items": np.asarray(rec["items"], dtype=np.int64),
            "timestamps": np.asarray(rec["timestamps"], dtype=np.float64),
        }
        for behavior, rec in interactions.items()
    }
    return InteractionDataset(
        name=cfg.name,
        num_users=cfg.num_users,
        num_items=cfg.num_items,
        behavior_names=tuple(interactions),
        target_behavior=cfg.target_behavior,
        interactions=arrays,
    )

"""Reverse-mode automatic differentiation engine on top of numpy.

This package is the computational substrate for the whole reproduction:
every model (GNMR and all baselines) is expressed with :class:`Tensor`
operations, and gradients are obtained with :meth:`Tensor.backward`.

The engine supports:

* broadcasting elementwise arithmetic with correct gradient reduction,
* dense and batched matrix multiplication,
* embedding lookup (gather rows) with scatter-add backward,
* sparse CSR adjacency–dense matmul (the workhorse of graph propagation),
* reductions (sum / mean / max) over arbitrary axes,
* shape ops (reshape, transpose, concat, stack, slicing, squeeze),
* common nonlinearities and numerically stable softmax / log-softmax.

Gradient correctness is enforced by the numerical checker in
:mod:`repro.tensor.grad_check`, which the test-suite applies to every op.

Precision is configurable: the substrate computes in ``float64`` by default
(bit-reproducible with the seed baselines) and in ``float32`` as the fast
path — roughly half the memory bandwidth on the SpMM/matmul-bound hot paths.
Switch globally with :func:`set_default_dtype` or locally with the
:func:`default_dtype` context manager; models accept a ``dtype`` knob that
wraps their construction in that context.
"""

from repro.tensor.tensor import (
    Tensor,
    no_grad,
    is_grad_enabled,
    get_default_dtype,
    set_default_dtype,
    default_dtype,
    resolve_dtype,
)
from repro.tensor import functional
from repro.tensor.sparse import SparseAdjacency
from repro.tensor.rowsparse import RowSparseGrad, add_grads, grad_to_dense
from repro.tensor.grad_check import numerical_grad, check_gradients, dtype_tolerances

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
    "resolve_dtype",
    "functional",
    "SparseAdjacency",
    "RowSparseGrad",
    "add_grads",
    "grad_to_dense",
    "numerical_grad",
    "check_gradients",
    "dtype_tolerances",
]

"""Reverse-mode automatic differentiation engine on top of numpy.

This package is the computational substrate for the whole reproduction:
every model (GNMR and all baselines) is expressed with :class:`Tensor`
operations, and gradients are obtained with :meth:`Tensor.backward`.

The engine supports:

* broadcasting elementwise arithmetic with correct gradient reduction,
* dense and batched matrix multiplication,
* embedding lookup (gather rows) with scatter-add backward,
* sparse CSR adjacency–dense matmul (the workhorse of graph propagation),
* reductions (sum / mean / max) over arbitrary axes,
* shape ops (reshape, transpose, concat, stack, slicing, squeeze),
* common nonlinearities and numerically stable softmax / log-softmax.

Gradient correctness is enforced by the numerical checker in
:mod:`repro.tensor.grad_check`, which the test-suite applies to every op.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional
from repro.tensor.sparse import SparseAdjacency
from repro.tensor.grad_check import numerical_grad, check_gradients

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "SparseAdjacency",
    "numerical_grad",
    "check_gradients",
]

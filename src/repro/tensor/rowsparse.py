"""Row-sparse gradients for embedding tables.

A mini-batch of seed users touches a few hundred rows of the user/item
embedding tables, yet a dense backward pass scatters into — and the
optimizer then reads — the *entire* table. :class:`RowSparseGrad` is the
compressed alternative: the unique touched row indices plus one dense value
block, so gradient memory and optimizer work scale with the batch instead
of the table.

The type is emitted by :meth:`repro.tensor.Tensor.embedding_rows` (the
row-gather op whose backward stays sparse when the table is a leaf) and is
understood by every optimizer in :mod:`repro.nn.optim`, which applies lazy
per-row updates. Mixing rules: sparse + sparse stays sparse (indices are
merged and re-coalesced); sparse + dense densifies, because a dense
contribution already paid the full-table cost.
"""

from __future__ import annotations

import numpy as np


def _coalesce(indices: np.ndarray,
              values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Merge duplicate rows: unique sorted indices + summed value block."""
    unique, inverse = np.unique(indices, return_inverse=True)
    if unique.size == indices.size:
        # already unique; np.unique sorted them — reorder values to match
        order = np.argsort(indices, kind="stable")
        if np.array_equal(order, np.arange(indices.size)):
            return indices, values
        return indices[order], values[order]
    out = np.zeros((unique.size,) + values.shape[1:], dtype=values.dtype)
    np.add.at(out, inverse, values)
    return unique, out


class RowSparseGrad:
    """A gradient that is nonzero only on a set of rows.

    Parameters
    ----------
    indices:
        Row indices (any int array; coalesced to unique sorted order).
    values:
        Value block of shape ``(len(indices),) + row_shape``; rows listed
        more than once are summed during coalescing.
    num_rows:
        First dimension of the dense table this gradient belongs to.

    The logical dense shape is ``(num_rows,) + values.shape[1:]`` and
    :meth:`to_dense` materializes it. Arithmetic supports exactly what the
    backward pass and the optimizers need: ``+`` against another
    :class:`RowSparseGrad` (stays sparse) or a dense array (densifies), and
    scalar ``*`` (used by gradient clipping).
    """

    __slots__ = ("indices", "values", "num_rows")
    # make numpy defer `ndarray + RowSparseGrad` to __radd__
    __array_priority__ = 200

    def __init__(self, indices, values, num_rows: int, *,
                 coalesced: bool = False):
        indices = np.asarray(indices, dtype=np.int64).ravel()
        values = np.asarray(values)
        if values.shape[:1] != indices.shape:
            raise ValueError(
                f"values leading dim {values.shape[:1]} does not match "
                f"{indices.size} indices")
        if indices.size and (indices.min() < 0 or indices.max() >= num_rows):
            raise IndexError(f"row index out of range [0, {num_rows})")
        if not coalesced:
            indices, values = _coalesce(indices, values)
        self.indices = indices
        self.values = values
        self.num_rows = int(num_rows)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the equivalent dense gradient."""
        return (self.num_rows,) + self.values.shape[1:]

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    @property
    def nnz_rows(self) -> int:
        return int(self.indices.size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RowSparseGrad(rows={self.indices.size}/{self.num_rows}, "
                f"row_shape={self.values.shape[1:]})")

    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize the full table-shaped gradient."""
        out = np.zeros(self.shape, dtype=self.values.dtype)
        out[self.indices] = self.values  # indices are unique after coalesce
        return out

    def copy(self) -> "RowSparseGrad":
        return RowSparseGrad(self.indices.copy(), self.values.copy(),
                             self.num_rows, coalesced=True)

    def astype(self, dtype) -> "RowSparseGrad":
        if np.dtype(dtype) == self.values.dtype:
            return self
        return RowSparseGrad(self.indices, self.values.astype(dtype),
                             self.num_rows, coalesced=True)

    # ------------------------------------------------------------------
    # accumulation / scaling
    # ------------------------------------------------------------------
    def __add__(self, other):
        if isinstance(other, RowSparseGrad):
            if other.shape != self.shape:
                raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
            dtype = np.result_type(self.values.dtype, other.values.dtype)
            return RowSparseGrad(
                np.concatenate([self.indices, other.indices]),
                np.concatenate([self.values.astype(dtype, copy=False),
                                other.values.astype(dtype, copy=False)]),
                self.num_rows)
        other = np.asarray(other)
        if other.shape != self.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        out = other.copy()
        out[self.indices] += self.values
        return out

    __radd__ = __add__

    def __mul__(self, scalar):
        if not isinstance(scalar, (int, float, np.floating, np.integer)):
            return NotImplemented
        return RowSparseGrad(self.indices, self.values * scalar,
                             self.num_rows, coalesced=True)

    __rmul__ = __mul__

    def scale_(self, scalar: float) -> "RowSparseGrad":
        """In-place scaling (gradient clipping keeps the value dtype)."""
        self.values *= self.values.dtype.type(scalar)
        return self

    def sq_norm(self) -> float:
        """Squared Frobenius norm, accumulated in float64."""
        flat = self.values.astype(np.float64, copy=False)
        return float(np.sum(flat * flat))


def add_grads(a, b):
    """Accumulate two gradient contributions of possibly mixed sparsity.

    Dense + dense stays the plain ndarray sum; sparse + sparse stays
    row-sparse; any mix densifies (the dense side already spans the table).
    """
    if isinstance(a, RowSparseGrad):
        return a + b
    if isinstance(b, RowSparseGrad):
        return b + a
    return a + b


def grad_to_dense(grad):
    """Dense view of a gradient that may be row-sparse (``None`` passes)."""
    if isinstance(grad, RowSparseGrad):
        return grad.to_dense()
    return grad

"""Composite differentiable functions built from :class:`Tensor` primitives.

These are the numerically stable building blocks used by the neural layers:
softmax, log-softmax, dropout, normalization helpers, and the attention
scaled dot-product used by GNMR's cross-behavior dependency encoder.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor, concat, stack, where

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "dropout",
    "l2_normalize",
    "scaled_dot_product_attention",
    "concat",
    "stack",
    "where",
    "mse",
    "binary_cross_entropy_with_logits",
]


def relu(x: Tensor) -> Tensor:
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x: Tensor, rate: float, training: bool,
            rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: identity when not training or ``rate == 0``."""
    if not training or rate <= 0.0:
        return x
    if rate >= 1.0:
        raise ValueError("dropout rate must be < 1")
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)
    return x * Tensor(mask.astype(x.data.dtype))


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalize rows to unit L2 norm (used by DMF cosine matching)."""
    norm = (x * x).sum(axis=axis, keepdims=True).maximum(eps).sqrt()
    return x / norm


def scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor,
                                 scale: float | None = None) -> tuple[Tensor, Tensor]:
    """Batched attention: softmax(q kᵀ / scale) v.

    Shapes: ``q``: (..., Lq, dh), ``k``: (..., Lk, dh), ``v``: (..., Lk, dv).
    Returns (output, attention_weights).
    """
    dh = q.shape[-1]
    scale = scale if scale is not None else float(np.sqrt(dh))
    scores = q.matmul(k.swapaxes(-1, -2)) * (1.0 / scale)
    weights = softmax(scores, axis=-1)
    return weights.matmul(v), weights


def mse(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error over all elements."""
    target = prediction._coerce(target)
    diff = prediction - target
    return (diff * diff).mean()


def binary_cross_entropy_with_logits(logits: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Stable BCE-with-logits: max(z,0) - z*y + log(1 + exp(-|z|)), averaged."""
    target = logits._coerce(target)
    zeros = Tensor(np.zeros(logits.shape, dtype=logits.data.dtype))
    loss = logits.maximum(zeros) - logits * target + ((-logits.abs()).exp() + 1.0).log()
    return loss.mean()

"""Sparse adjacency support for graph message passing.

Graph propagation in GNMR (and NGCF) is dominated by products of the form
``A @ H`` where ``A`` is a (possibly normalized) user–item adjacency matrix
and ``H`` a dense embedding table. ``A`` is constant — it never needs a
gradient — so we wrap a ``scipy.sparse.csr_matrix`` and provide a matmul op
whose backward is simply ``Aᵀ @ grad``.

The adjacency dtype follows the tensor default dtype (float32 when the fast
compute path is selected via :func:`repro.tensor.set_default_dtype`) and the
transpose needed by the backward pass is cached — shared in both directions
through :attr:`SparseAdjacency.T` and optionally precomputed eagerly for
adjacencies that participate in training.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.tensor.tensor import Tensor, resolve_dtype


class SparseAdjacency:
    """Immutable sparse matrix participating in autodiff as a constant.

    Parameters
    ----------
    matrix:
        Any scipy sparse matrix (converted to CSR) or a dense array.
    dtype:
        Floating dtype of the stored values; defaults to the module default
        dtype (:func:`repro.tensor.get_default_dtype`).
    precompute_transpose:
        Build the CSR transpose eagerly. Training paths want this: every
        backward pass through :meth:`matmul` multiplies by ``Aᵀ``, so paying
        the conversion once at construction keeps the first optimizer step
        as fast as the rest.
    """

    def __init__(self, matrix, dtype=None, precompute_transpose: bool = False):
        dtype = resolve_dtype(dtype)
        if sp.issparse(matrix):
            matrix = matrix.tocsr()
            if matrix.dtype != dtype:
                matrix = matrix.astype(dtype)
            self.matrix = matrix
        else:
            self.matrix = sp.csr_matrix(np.asarray(matrix, dtype=dtype))
        self._transpose_cache: sp.csr_matrix | None = None
        if precompute_transpose:
            self._transposed()

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    @property
    def dtype(self) -> np.dtype:
        return self.matrix.dtype

    @property
    def T(self) -> "SparseAdjacency":
        """Transposed adjacency sharing the CSR cache in both directions."""
        out = SparseAdjacency(self._transposed(), dtype=self.matrix.dtype)
        out._transpose_cache = self.matrix
        return out

    def _transposed(self) -> sp.csr_matrix:
        if self._transpose_cache is None:
            self._transpose_cache = self.matrix.T.tocsr()
        return self._transpose_cache

    def astype(self, dtype) -> "SparseAdjacency":
        """Copy with values cast to ``dtype`` (returns self when unchanged)."""
        dtype = resolve_dtype(dtype)
        if dtype == self.matrix.dtype:
            return self
        return SparseAdjacency(self.matrix, dtype=dtype)

    def row_degrees(self) -> np.ndarray:
        """Number of stored interactions per row (as float)."""
        return np.asarray(self.matrix.sum(axis=1)).ravel()

    def col_degrees(self) -> np.ndarray:
        return np.asarray(self.matrix.sum(axis=0)).ravel()

    def normalized(self, mode: str = "row") -> "SparseAdjacency":
        """Return a degree-normalized copy.

        ``mode='row'`` gives mean aggregation (D⁻¹A); ``mode='sym'`` gives the
        symmetric GCN normalization (D⁻½ A D⁻½) used by NGCF.
        """
        a = self.matrix
        if mode == "row":
            deg = self.row_degrees()
            inv = np.divide(1.0, deg, out=np.zeros_like(deg), where=deg > 0)
            return SparseAdjacency(sp.diags(inv) @ a, dtype=self.matrix.dtype)
        if mode == "sym":
            rdeg = self.row_degrees()
            cdeg = self.col_degrees()
            rinv = np.divide(1.0, np.sqrt(rdeg), out=np.zeros_like(rdeg), where=rdeg > 0)
            cinv = np.divide(1.0, np.sqrt(cdeg), out=np.zeros_like(cdeg), where=cdeg > 0)
            return SparseAdjacency(sp.diags(rinv) @ a @ sp.diags(cinv),
                                   dtype=self.matrix.dtype)
        raise ValueError(f"unknown normalization mode: {mode!r}")

    def matmul(self, dense: Tensor) -> Tensor:
        """Differentiable ``A @ H`` where only ``H`` receives gradient."""
        dense = dense if isinstance(dense, Tensor) else Tensor(dense)
        data = self.matrix @ dense.data
        at = self._transposed()

        def backward(grad: np.ndarray):
            return (np.asarray(at @ grad),)

        return Tensor._make(np.asarray(data), (dense,), backward)

    def __matmul__(self, dense: Tensor) -> Tensor:
        return self.matmul(dense)

    def rmatmul(self, dense: Tensor) -> Tensor:
        """Differentiable ``H @ A`` (gradient is ``grad @ Aᵀ``)."""
        dense = dense if isinstance(dense, Tensor) else Tensor(dense)
        data = dense.data @ self.matrix
        at = self._transposed()

        def backward(grad: np.ndarray):
            return (np.asarray(grad @ at),)

        return Tensor._make(np.asarray(data), (dense,), backward)

    def to_dense(self) -> np.ndarray:
        return np.asarray(self.matrix.todense())

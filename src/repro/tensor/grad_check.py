"""Numerical gradient checking for the autograd engine.

Every differentiable op in :mod:`repro.tensor` is validated in the test
suite by comparing analytic gradients against central finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor, resolve_dtype


def dtype_tolerances(dtype) -> dict[str, float]:
    """Finite-difference settings appropriate for a compute dtype.

    float64 uses the tight defaults of :func:`check_gradients`; float32
    needs a larger step (its ~1e-7 relative rounding noise would otherwise
    dominate the central difference) and correspondingly looser tolerances.
    Pass the result as ``check_gradients(fn, inputs, **dtype_tolerances(dt))``.
    """
    if resolve_dtype(dtype) == np.dtype(np.float32):
        return {"atol": 2e-2, "rtol": 2e-2, "eps": 1e-2}
    return {"atol": 1e-5, "rtol": 1e-4, "eps": 1e-6}


def numerical_grad(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                   index: int, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    Parameters
    ----------
    fn:
        Function mapping the input tensors to an output tensor. The scalar
        objective checked is the elementwise sum of that output.
    inputs:
        The tensors to pass to ``fn``.
    index:
        Which input to differentiate with respect to.
    eps:
        Finite-difference step.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                    atol: float = 1e-5, rtol: float = 1e-4,
                    eps: float = 1e-6) -> None:
    """Assert that analytic gradients of ``sum(fn(*inputs))`` match numerics.

    Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_grad(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            max_err = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs err {max_err:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )

"""Core :class:`Tensor` type implementing reverse-mode autodiff.

The design follows the classic tape-free "define-by-run" approach: each
operation produces a new ``Tensor`` that remembers its parents and a closure
computing the local vector-Jacobian product. :meth:`Tensor.backward` performs
a topological sort of the dynamic graph and accumulates gradients.

Data is stored as floating-point numpy arrays whose precision is governed by
the module-level *default dtype* (``float64`` out of the box, switchable to
``float32`` via :func:`set_default_dtype` or the :func:`default_dtype`
context manager — the fast path for memory-bandwidth-bound graph
propagation). Float arrays passed in explicitly keep their dtype; scalars
and python sequences wrapped mid-expression adopt the dtype of the tensor
operand they combine with, so a float32 graph stays float32 without an
ambient context. Integer index arrays used by gather/scatter ops are kept
as plain numpy arrays outside the graph. Broadcasting is fully supported —
gradients of broadcast operands are reduced back to the operand shape with
:func:`_unbroadcast`.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.tensor.rowsparse import RowSparseGrad, add_grads

_GRAD_ENABLED: bool = True

_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))
_DEFAULT_DTYPE: np.dtype = np.dtype(np.float64)


def resolve_dtype(dtype) -> np.dtype:
    """Validate and normalize a dtype spec (``None`` → the current default)."""
    if dtype is None:
        return _DEFAULT_DTYPE
    dt = np.dtype(dtype)
    if dt not in _FLOAT_DTYPES:
        raise ValueError(f"unsupported tensor dtype {dt} (use float32 or float64)")
    return dt


def get_default_dtype() -> np.dtype:
    """The dtype given to new tensors built from scalars / python data."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> None:
    """Set the process-wide default floating dtype (``float32``/``float64``)."""
    global _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolve_dtype(dtype)


@contextlib.contextmanager
def default_dtype(dtype):
    """Context manager scoping :func:`set_default_dtype` to a block.

    ``default_dtype(None)`` is a no-op (the ambient default stays active),
    so callers can scope an optional dtype knob unconditionally:
    ``with default_dtype(config.dtype): ...``.
    """
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolve_dtype(dtype)
    try:
        yield
    finally:
        _DEFAULT_DTYPE = previous


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded for autodiff."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (shape of a broadcast result) back to ``shape``.

    Summation happens over the axes that were added or expanded by numpy
    broadcasting rules.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were prepended by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes where the original dimension was 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(data, dtype=None) -> np.ndarray:
    """Coerce payload to a float array.

    With ``dtype=None``, float32/float64 arrays keep their dtype and
    everything else (lists, scalars, integer arrays) is cast to the module
    default; an explicit ``dtype`` always wins.
    """
    if dtype is None:
        if isinstance(data, np.ndarray) and data.dtype in _FLOAT_DTYPES:
            return data
        if isinstance(data, np.generic) and data.dtype in _FLOAT_DTYPES:
            # numpy scalars (e.g. float32_array.sum()) keep their precision
            return np.asarray(data)
        dtype = _DEFAULT_DTYPE
    else:
        dtype = resolve_dtype(dtype)
    if isinstance(data, np.ndarray):
        return data if data.dtype == dtype else data.astype(dtype)
    return np.asarray(data, dtype=dtype)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; float arrays keep their dtype, everything else
        is converted to the module default dtype (see :func:`set_default_dtype`).
    requires_grad:
        Whether gradients should flow to this tensor. Leaf tensors with
        ``requires_grad=True`` accumulate into :attr:`grad`.
    dtype:
        Explicit dtype override (``float32`` / ``float64``).
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # make numpy defer to our __radd__ etc.

    def __init__(self, data, requires_grad: bool = False, name: str | None = None,
                 dtype=None):
        self.data: np.ndarray = _as_array(data, dtype)
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | RowSparseGrad | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(
                f"item() requires a single-element tensor, got shape {self.shape}"
            )
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        """Differentiable dtype cast; the gradient is cast back on backward."""
        dtype = resolve_dtype(dtype)
        if dtype == self.data.dtype:
            return self
        original = self.data.dtype
        data = self.data.astype(dtype)

        def backward(grad: np.ndarray):
            return (grad.astype(original),)

        return Tensor._make(data, (self,), backward)

    def _coerce(self, other) -> "Tensor":
        """Wrap a non-Tensor operand using *this* tensor's dtype.

        Keeps float32 graphs float32: python scalars and lists appearing in
        expressions adopt the tensor operand's precision instead of silently
        promoting through the module default.
        """
        if isinstance(other, Tensor):
            return other
        return Tensor(other, dtype=self.data.dtype)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a non-leaf tensor recording its parents when grads are on."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray | RowSparseGrad) -> None:
        if self.grad is None:
            if isinstance(grad, RowSparseGrad):
                self.grad = grad
            else:
                self.grad = grad.copy() if grad.base is not None or grad.flags.writeable is False else grad
        else:
            self.grad = add_grads(self.grad, grad)

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient. Defaults to ones (must be a scalar tensor then,
            matching the common ``loss.backward()`` usage).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a seed requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = _as_array(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        # Topological order over the dynamic graph.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf: accumulate into .grad
                node._accumulate(node_grad)
                continue
            node._backward_dispatch(node_grad, grads)

    def _backward_dispatch(self, node_grad: np.ndarray, grads: dict[int, np.ndarray]) -> None:
        """Run the local backward closure, stashing parent grads in ``grads``."""
        contributions = self._backward(node_grad)
        for parent, contribution in zip(self._parents, contributions):
            if contribution is None or not parent.requires_grad:
                continue
            key = id(parent)
            if key in grads:
                grads[key] = add_grads(grads[key], contribution)
            else:
                grads[key] = contribution
            if parent._backward is None:
                # leaves keep their running .grad so repeated backward()
                # calls accumulate, mirroring torch semantics
                pass

    # ------------------------------------------------------------------
    # elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(grad, other.shape),
            )

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data - other.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(-grad, other.shape),
            )

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) - self

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data
        a, b = self, other

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad * b.data, a.shape),
                _unbroadcast(grad * a.data, b.shape),
            )

        return Tensor._make(data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data
        a, b = self, other

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad / b.data, a.shape),
                _unbroadcast(-grad * a.data / (b.data ** 2), b.shape),
            )

        return Tensor._make(data, (a, b), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad: np.ndarray):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # comparisons (produce constant tensors, no grad)
    # ------------------------------------------------------------------
    def __gt__(self, other) -> "Tensor":
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor((self.data > other_data).astype(self.data.dtype))

    def __lt__(self, other) -> "Tensor":
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor((self.data < other_data).astype(self.data.dtype))

    # ------------------------------------------------------------------
    # unary math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray):
            return (grad * data,)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray):
            return (grad / self.data,)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray):
            return (grad * 0.5 / data,)

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(grad: np.ndarray):
            return (grad * sign,)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._make(data, (self,), backward)

    def leaky_relu(self, slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, slope * self.data)

        def backward(grad: np.ndarray):
            return (grad * np.where(mask, 1.0, slope),)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray):
            return (grad * data * (1.0 - data),)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray):
            return (grad * (1.0 - data ** 2),)

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float | None = None, high: float | None = None) -> "Tensor":
        """Clamp values; gradient flows only through unclipped entries."""
        data = np.clip(self.data, low, high)
        mask = np.ones_like(self.data)
        if low is not None:
            mask = mask * (self.data >= low)
        if high is not None:
            mask = mask * (self.data <= high)

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._make(data, (self,), backward)

    def maximum(self, other) -> "Tensor":
        """Elementwise max; ties send the full gradient to ``self``."""
        other = self._coerce(other)
        take_self = self.data >= other.data
        data = np.where(take_self, self.data, other.data)
        a, b = self, other

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad * take_self, a.shape),
                _unbroadcast(grad * ~take_self, b.shape),
            )

        return Tensor._make(data, (a, b), backward)

    def minimum(self, other) -> "Tensor":
        other = self._coerce(other)
        take_self = self.data <= other.data
        data = np.where(take_self, self.data, other.data)
        a, b = self, other

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad * take_self, a.shape),
                _unbroadcast(grad * ~take_self, b.shape),
            )

        return Tensor._make(data, (a, b), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        in_shape = self.shape

        def backward(grad: np.ndarray):
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % len(in_shape) for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            return (np.broadcast_to(g, in_shape).copy(),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        in_shape = self.shape

        def backward(grad: np.ndarray):
            g = grad
            d = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                d = np.expand_dims(d, axis)
            mask = (self.data == d).astype(self.data.dtype)
            # split gradient equally among ties to keep it a valid subgradient
            denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            return (np.broadcast_to(g, in_shape) * mask / denom,)

        return Tensor._make(data, (self,), backward)

    def min(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product supporting 1-D, 2-D and batched (>2-D) operands.

        Batched operands must have identical batch dimensions (no batch
        broadcasting) — sufficient for the attention blocks used here.
        """
        other = self._coerce(other)
        a, b = self, other
        data = np.matmul(a.data, b.data)

        def backward(grad: np.ndarray):
            ad, bd = a.data, b.data
            # Promote 1-D operands to matrices so one general rule applies,
            # then reduce broadcast/batch axes and restore original shapes.
            a2 = ad[None, :] if ad.ndim == 1 else ad
            b2 = bd[:, None] if bd.ndim == 1 else bd
            g = grad
            if ad.ndim == 1 and bd.ndim == 1:
                g = grad.reshape(1, 1)
            elif ad.ndim == 1:
                g = np.expand_dims(grad, -2)
            elif bd.ndim == 1:
                g = np.expand_dims(grad, -1)
            ga = _unbroadcast(np.matmul(g, b2.swapaxes(-1, -2)), a2.shape).reshape(ad.shape)
            gb = _unbroadcast(np.matmul(a2.swapaxes(-1, -2), g), b2.shape).reshape(bd.shape)
            return (ga, gb)

        return Tensor._make(data, (a, b), backward)

    def __matmul__(self, other) -> "Tensor":
        return self.matmul(other)

    def dot(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        in_shape = self.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray):
            return (grad.reshape(in_shape),)

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        data = self.data.transpose(axes)

        def backward(grad: np.ndarray):
            return (grad.transpose(inverse),)

        return Tensor._make(data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def squeeze(self, axis: int | None = None) -> "Tensor":
        in_shape = self.shape
        data = self.data.squeeze(axis=axis)

        def backward(grad: np.ndarray):
            return (grad.reshape(in_shape),)

        return Tensor._make(data, (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        in_shape = self.shape
        data = np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray):
            return (grad.reshape(in_shape),)

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        """Slice / fancy-index; backward scatter-adds into the source shape."""
        if isinstance(index, Tensor):
            index = index.data.astype(np.int64)
        data = self.data[index]
        in_shape = self.shape
        in_dtype = self.data.dtype

        def backward(grad: np.ndarray):
            out = np.zeros(in_shape, dtype=in_dtype)
            np.add.at(out, index, grad)
            return (out,)

        return Tensor._make(data, (self,), backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Embedding-style row lookup with scatter-add backward.

        ``indices`` may have any shape; the result has shape
        ``indices.shape + self.shape[1:]``.
        """
        indices = np.asarray(indices, dtype=np.int64)
        data = self.data[indices]
        in_shape = self.shape
        in_dtype = self.data.dtype

        def backward(grad: np.ndarray):
            out = np.zeros(in_shape, dtype=in_dtype)
            np.add.at(out, indices.reshape(-1), grad.reshape(-1, *in_shape[1:]))
            return (out,)

        return Tensor._make(data, (self,), backward)

    def embedding_rows(self, indices: np.ndarray) -> "Tensor":
        """Row gather whose backward stays row-sparse.

        The training-path sibling of :meth:`gather_rows`: instead of
        scatter-adding into a zero table of the full ``self.shape``, the
        backward emits a :class:`~repro.tensor.rowsparse.RowSparseGrad`
        holding only the unique touched rows — optimizer work then scales
        with the batch, not the table. ``indices`` must be 1-D; duplicates
        are fine (they coalesce into one row entry).

        The sparse grad is only emitted when ``self`` is a graph leaf (an
        embedding table / :class:`~repro.nn.module.Parameter`): interior
        nodes run arbitrary backward closures that expect dense arrays, so
        gathers from computed tensors fall back to the dense scatter-add.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise ValueError("embedding_rows expects 1-D row indices "
                             f"(got shape {indices.shape}); use gather_rows "
                             "for arbitrary index shapes")
        data = self.data[indices]
        in_shape = self.shape
        in_dtype = self.data.dtype
        emit_sparse = self._backward is None  # leaf table → sparse grad

        def backward(grad: np.ndarray):
            if emit_sparse:
                return (RowSparseGrad(indices, grad, in_shape[0]),)
            out = np.zeros(in_shape, dtype=in_dtype)
            np.add.at(out, indices, grad)
            return (out,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape, requires_grad: bool = False, dtype=None) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor(np.zeros(shape, dtype=resolve_dtype(dtype)),
                      requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False, dtype=None) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor(np.ones(shape, dtype=resolve_dtype(dtype)),
                      requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: np.random.Generator | None = None, scale: float = 1.0,
              requires_grad: bool = False, dtype=None) -> "Tensor":
        rng = rng or np.random.default_rng()
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        # Draw in float64 so the same seed yields the same values at every
        # precision, then round to the requested dtype.
        values = rng.standard_normal(shape) * scale
        return Tensor(values.astype(resolve_dtype(dtype)), requires_grad=requires_grad)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient splitting."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray):
        slicer = [slice(None)] * grad.ndim
        pieces = []
        for i in range(len(sizes)):
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            pieces.append(grad[tuple(slicer)])
        return tuple(pieces)

    return Tensor._make(data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient unstacking."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray):
        pieces = np.moveaxis(grad, axis, 0)
        return tuple(pieces[i] for i in range(len(tensors)))

    return Tensor._make(data, tensors, backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select elementwise from ``a`` where condition else ``b``."""
    condition = condition.data.astype(bool) if isinstance(condition, Tensor) else np.asarray(condition, dtype=bool)
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray):
        return (
            _unbroadcast(grad * condition, a.shape),
            _unbroadcast(grad * ~condition, b.shape),
        )

    return Tensor._make(data, (a, b), backward)

"""The online serving tier: a long-running HTTP service with an SLO story.

Everything below ``repro.serve.http`` is a library; this module is the
process that holds a port. Three production mechanics live here, all
stdlib-only (``http.server`` / ``socketserver`` / ``threading`` — the
repo's no-deps stance extends to the serving tier):

* **Dynamic batching** — concurrent single-user ``GET /recommend``
  requests land in a bounded queue; a worker drains up to ``max_batch``
  of them within ``max_wait_ms`` of the first arrival and answers them
  with *one* blocked retrieval call (``TopKRetriever`` or
  ``ApproxRetriever``), fanning the rows back out per request. Retrieval
  cost is dominated by the catalog scan, which batching amortizes across
  requesters — the two dials trade tail latency for throughput.
* **Hot snapshot swap** — a background thread polls the model's engine
  version and rebuilds the snapshot (and, for ``retriever="ivf"``, the
  IVF index through the version-keyed ``store.ann_index`` cache) *off*
  the request path, then flips the service's retriever reference
  atomically: in-flight requests finish on the old snapshot, the next
  batch sees the new one, and no request ever waits on a rebuild.
* **Cold users** — a user who entered the graph after the current
  snapshot gets a fresh embedding on demand through single-seed layered
  extraction (``graph/layered.py``, ``fanout=None``) instead of a 404 or
  a stale row; see ``RecommendationService.recommend_cold``.

Endpoints (all JSON): ``GET /recommend?user=U&k=K[&cold=1]``,
``POST /recommend`` with ``{"users": [...], "k": K}``, ``GET /healthz``,
``GET /stats`` (request counters + per-stage latency percentiles).
``repro.cli serve`` wires a checkpoint to this server; see
``docs/operations.md`` for the operator's guide.
"""

from __future__ import annotations

import collections
import json
import threading
import time
import queue as queue_mod
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

import numpy as np

from repro.serve.store import SnapshotIntegrityError


class ServerBusy(RuntimeError):
    """The batcher's bounded queue is full — shed load (HTTP 503)."""


_SHUTDOWN = object()  # queue sentinel that stops the batcher worker


class _Pending:
    """One in-flight request: a single-waiter future the batcher resolves."""

    __slots__ = ("user", "k", "enqueued_at", "dequeued_at",
                 "_done", "_value", "_error")

    def __init__(self, user: int, k: int):
        self.user = int(user)
        self.k = int(k)
        self.enqueued_at = time.monotonic()
        self.dequeued_at: float | None = None
        self._done = threading.Event()
        self._value = None
        self._error: BaseException | None = None

    def _finish(self, value) -> None:
        self._value = value
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def result(self, timeout: float | None = None):
        """Block until the batch containing this request executed."""
        if not self._done.wait(timeout):
            raise TimeoutError("request did not complete in time")
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def queue_wait_s(self) -> float | None:
        """Seconds spent queued before the worker picked the request up."""
        if self.dequeued_at is None:
            return None
        return self.dequeued_at - self.enqueued_at


class DynamicBatcher:
    """Request-coalescing dynamic batcher over a batched scoring function.

    ``fn(users, k)`` must return one result row per user, in order; the
    batcher merges concurrent ``submit`` calls into as few ``fn`` calls
    as the two dials allow:

    * ``max_batch`` — flush as soon as this many requests are pending
      (throughput dial: bigger batches amortize the catalog scan);
    * ``max_wait_ms`` — flush at most this long after the *first* queued
      request was picked up (latency dial: the most any request waits
      for co-riders).

    Requests with different ``k`` coalesce into the same drain cycle but
    execute as one ``fn`` call per distinct ``k``. The queue is bounded
    (``max_queue``); an overfull queue raises :class:`ServerBusy` at
    ``submit`` — load shedding beats unbounded latency.

    The coalescing contract, observable because ``autostart=False``
    delays the worker until requests are already queued:

    >>> batcher = DynamicBatcher(lambda users, k: [(u, k) for u in users],
    ...                          max_batch=4, max_wait_ms=40.0,
    ...                          autostart=False)
    >>> pending = [batcher.submit(user, k=2) for user in (4, 7, 9)]
    >>> batcher.start()
    >>> [p.result(timeout=5.0) for p in pending]   # one fn call served all
    [(4, 2), (7, 2), (9, 2)]
    >>> stats = batcher.stats()
    >>> (stats["submitted"], stats["batches"], stats["largest_batch"])
    (3, 1, 3)
    >>> batcher.close()
    """

    def __init__(self, fn, *, max_batch: int = 32, max_wait_ms: float = 2.0,
                 max_queue: int = 1024, autostart: bool = True):
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if max_queue <= 0:
            raise ValueError("max_queue must be positive")
        self._fn = fn
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self._queue: queue_mod.Queue = queue_mod.Queue(maxsize=int(max_queue))
        self._lock = threading.Lock()
        self._submitted = 0
        self._batches = 0
        self._executed = 0
        self._largest = 0
        self._worker: threading.Thread | None = None
        self._closed = False
        if autostart:
            self.start()

    def start(self) -> None:
        """Start the drain worker (idempotent)."""
        with self._lock:
            if self._worker is None and not self._closed:
                self._worker = threading.Thread(
                    target=self._run, name="dynamic-batcher", daemon=True)
                self._worker.start()

    def submit(self, user: int, k: int) -> _Pending:
        """Enqueue one request; returns its future-like handle."""
        if self._closed:
            raise RuntimeError("batcher is closed")
        pending = _Pending(user, k)
        try:
            self._queue.put_nowait(pending)
        except queue_mod.Full:
            raise ServerBusy(
                f"request queue full ({self._queue.maxsize} pending)") from None
        with self._lock:
            self._submitted += 1
        return pending

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            first = self._queue.get()
            if first is _SHUTDOWN:
                return
            batch = [first]
            deadline = time.monotonic() + self.max_wait_ms / 1000.0
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue_mod.Empty:
                    break
                if item is _SHUTDOWN:
                    self._flush(batch)
                    return
                batch.append(item)
            self._flush(batch)

    def _flush(self, batch: list[_Pending]) -> None:
        now = time.monotonic()
        for pending in batch:
            pending.dequeued_at = now
        groups: dict[int, list[_Pending]] = {}
        for pending in batch:
            groups.setdefault(pending.k, []).append(pending)
        for k, group in groups.items():
            try:
                rows = list(self._fn([p.user for p in group], k))
            except BaseException as exc:  # propagate to every waiter
                for pending in group:
                    pending._fail(exc)
                continue
            if len(rows) != len(group):
                error = RuntimeError(
                    f"batch fn returned {len(rows)} rows for "
                    f"{len(group)} requests")
                for pending in group:
                    pending._fail(error)
                continue
            for pending, row in zip(group, rows):
                pending._finish(row)
        with self._lock:
            self._batches += len(groups)
            self._executed += len(batch)
            self._largest = max(self._largest,
                                max(len(g) for g in groups.values()))

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Coalescing counters: submitted / batches / batch-size shape."""
        with self._lock:
            batches = self._batches
            return {
                "submitted": self._submitted,
                "batches": batches,
                "largest_batch": self._largest,
                "mean_batch_size": (self._executed / batches) if batches else 0.0,
                "max_batch": self.max_batch,
                "max_wait_ms": self.max_wait_ms,
            }

    def close(self) -> None:
        """Stop the worker and fail anything still queued (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            worker = self._worker
        error = RuntimeError("batcher closed before the request ran")
        if worker is not None:
            # a blocking put could deadlock against a full queue whose
            # worker is wedged — make room ourselves instead of waiting
            while True:
                try:
                    self._queue.put_nowait(_SHUTDOWN)
                    break
                except queue_mod.Full:
                    try:
                        leftover = self._queue.get_nowait()
                    except queue_mod.Empty:
                        continue
                    if leftover is not _SHUTDOWN:
                        leftover._fail(error)
            worker.join(timeout=10.0)
        while True:  # drain anything the worker never reached
            try:
                leftover = self._queue.get_nowait()
            except queue_mod.Empty:
                return
            if leftover is not _SHUTDOWN:
                leftover._fail(error)


class LatencyWindow:
    """Bounded sliding window of latencies with percentile readout.

    A deque of the last ``maxlen`` observations — O(1) to record on the
    hot path, sorted only when ``/stats`` asks. Small enough to never
    matter for memory, recent enough that percentiles track the current
    load, not the process's entire history.
    """

    def __init__(self, maxlen: int = 2048):
        self._values: collections.deque = collections.deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self._count = 0

    def record(self, seconds: float) -> None:
        with self._lock:
            self._values.append(seconds)
            self._count += 1

    @staticmethod
    def _percentile(ordered: list[float], q: float) -> float:
        index = max(0, min(len(ordered) - 1,
                           int(np.ceil(q * len(ordered))) - 1))
        return ordered[index]

    def snapshot(self) -> dict:
        """``{count, p50_ms, p99_ms, max_ms}`` (None percentiles if empty)."""
        with self._lock:
            values = sorted(self._values)
            count = self._count
        if not values:
            return {"count": count, "p50_ms": None, "p99_ms": None,
                    "max_ms": None}
        return {
            "count": count,
            "p50_ms": self._percentile(values, 0.50) * 1000.0,
            "p99_ms": self._percentile(values, 0.99) * 1000.0,
            "max_ms": values[-1] * 1000.0,
        }


class ServingStats:
    """Thread-safe counters + per-stage latency windows behind ``/stats``.

    Stages: ``queue_wait`` (batcher queue time), ``retrieve`` (the
    batched retrieval call), ``request`` (wall time of the whole HTTP
    request, as the handler sees it).
    """

    STAGES = ("queue_wait", "retrieve", "request")

    def __init__(self):
        self._lock = threading.Lock()
        self.started_at = time.monotonic()
        self._counters = {"total": 0, "recommend": 0, "recommend_batch": 0,
                          "cold": 0, "errors": 0}
        self._swaps = 0
        self._swap_errors = 0
        self._rollbacks = 0
        self._windows = {stage: LatencyWindow() for stage in self.STAGES}

    def record_request(self, route: str) -> None:
        with self._lock:
            self._counters["total"] += 1
            self._counters[route] += 1

    def record_error(self) -> None:
        with self._lock:
            self._counters["errors"] += 1

    def record_swap(self) -> None:
        with self._lock:
            self._swaps += 1

    def record_swap_error(self) -> None:
        with self._lock:
            self._swap_errors += 1

    def record_rollback(self) -> None:
        with self._lock:
            self._rollbacks += 1

    def record_latency(self, stage: str, seconds: float | None) -> None:
        if seconds is not None:
            self._windows[stage].record(seconds)

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self.started_at

    def snapshot(self) -> dict:
        with self._lock:
            counters = dict(self._counters)
            swaps, swap_errors = self._swaps, self._swap_errors
            rollbacks = self._rollbacks
        return {
            "uptime_s": self.uptime_s,
            "requests": counters,
            "latency_ms": {stage: window.snapshot()
                           for stage, window in self._windows.items()},
            "snapshot": {"swaps": swaps, "swap_errors": swap_errors,
                         "rollbacks": rollbacks},
        }


class RecommendationHTTPServer(ThreadingHTTPServer):
    """The serving-tier process: batcher + freshness watcher + endpoints.

    Parameters
    ----------
    service:
        A :class:`~repro.serve.RecommendationService`. Its
        ``auto_refresh`` is forced off — freshness is this server's job,
        handled by a background thread so no request pays for a rebuild.
    host, port:
        Bind address (``port=0`` picks a free port; read it back from
        ``server.port``).
    max_batch, max_wait_ms, max_queue:
        :class:`DynamicBatcher` dials.
    poll_interval_ms:
        Freshness-check period of the snapshot watcher thread.
    request_timeout_s:
        How long a handler waits on its batch before answering 503.
    quiet:
        Suppress the per-request stderr log lines (default).

    Typical embedding (the CLI does exactly this)::

        server = RecommendationHTTPServer(service, port=8080).start()
        ...                      # serve_forever runs on a daemon thread
        server.close()           # stop watcher, batcher, and socket
    """

    daemon_threads = True
    # a fleet of clients connecting at once must not overflow the accept
    # backlog (the default of 5 drops SYNs, costing retransmit seconds)
    request_queue_size = 128

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0, *,
                 max_batch: int = 32, max_wait_ms: float = 2.0,
                 max_queue: int = 1024, poll_interval_ms: float = 250.0,
                 request_timeout_s: float = 30.0, quiet: bool = True):
        super().__init__((host, port), _RequestHandler)
        self.service = service
        # the watcher owns freshness; per-request checks would put the
        # snapshot rebuild back on the request path
        service.auto_refresh = False
        self.quiet = quiet
        self.request_timeout_s = float(request_timeout_s)
        self.poll_interval_s = float(poll_interval_ms) / 1000.0
        self.stats = ServingStats()
        self.batcher = DynamicBatcher(self._execute_batch,
                                      max_batch=max_batch,
                                      max_wait_ms=max_wait_ms,
                                      max_queue=max_queue)
        self._stop = threading.Event()
        self._closed = False
        self._serve_thread: threading.Thread | None = None
        self._watcher = threading.Thread(target=self._watch_freshness,
                                         name="snapshot-watcher", daemon=True)
        self._watcher.start()

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        return self.server_address[1]

    def start(self) -> "RecommendationHTTPServer":
        """Run ``serve_forever`` on a daemon thread; returns self."""
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self.serve_forever, name="http-serve", daemon=True)
            self._serve_thread.start()
        return self

    def close(self) -> None:
        """Clean shutdown: watcher, accept loop, batcher, socket."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        self._watcher.join(timeout=10.0)
        if self._serve_thread is not None:
            self.shutdown()
            self._serve_thread.join(timeout=10.0)
        self.batcher.close()
        self.server_close()

    # ------------------------------------------------------------------
    # snapshot freshness (runs off the request path)
    # ------------------------------------------------------------------
    def check_freshness(self) -> bool:
        """One freshness poll: hot-swap the snapshot if the model moved.

        ``service.reload()`` rebuilds the snapshot tables (and the IVF
        index, via the version-keyed ``store.ann_index`` cache) and then
        flips ``service.retriever`` to a new object in one assignment —
        requests that already grabbed the old retriever finish on the
        old snapshot. Returns whether a swap happened.

        A snapshot that fails integrity verification during the swap
        (mutated serving tables, a producer-hash mismatch) is *rejected*:
        the error is counted in ``swap_errors``, the service rolls back
        to the newest archived good snapshot (counted in ``rollbacks``),
        and requests keep bit-matching the last good tables — ``/healthz``
        never goes red over a bad swap.
        """
        service = self.service
        if service.store is None or not service.store.is_stale(service.model):
            return False
        try:
            service.reload()
        except SnapshotIntegrityError:
            self.stats.record_swap_error()
            try:
                service.recover()
                self.stats.record_rollback()
            except ValueError:
                pass  # nothing archived yet — current tables stay up
            return False
        self.stats.record_swap()
        return True

    def _watch_freshness(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            try:
                self.check_freshness()
            except Exception:
                # keep serving the old snapshot; surfaced in /stats
                self.stats.record_swap_error()

    # ------------------------------------------------------------------
    # request execution (called from handler threads / the batcher)
    # ------------------------------------------------------------------
    def _execute_batch(self, users: list[int], k: int) -> list[dict]:
        started = time.monotonic()
        result = self.service.recommend(np.asarray(users, dtype=np.int64), k)
        self.stats.record_latency("retrieve", time.monotonic() - started)
        return result.to_payload()

    def recommend_one(self, user: int, k: int, cold: bool = False) -> dict:
        """One user's recommendations — batched warm path or cold path."""
        store = self.service.store
        if not cold and store is not None and user >= store.num_users:
            cold = True  # user entered the graph after the snapshot
        if cold:
            self.stats.record_request("cold")
            started = time.monotonic()
            result = self.service.recommend_cold(user, k)
            self.stats.record_latency("retrieve", time.monotonic() - started)
            row = result.to_payload()[0]
        else:
            self.stats.record_request("recommend")
            pending = self.batcher.submit(user, k)
            row = pending.result(timeout=self.request_timeout_s)
            self.stats.record_latency("queue_wait", pending.queue_wait_s)
        return {"user": int(user), "k": int(k), "cold": bool(cold),
                "snapshot_version": self.service.snapshot_version,
                "items": row["items"]}

    def recommend_many(self, users: list[int], k: int) -> dict:
        """An already-batched request — skips the coalescing queue."""
        self.stats.record_request("recommend_batch")
        started = time.monotonic()
        result = self.service.recommend(np.asarray(users, dtype=np.int64), k)
        self.stats.record_latency("retrieve", time.monotonic() - started)
        return {"k": int(k),
                "snapshot_version": self.service.snapshot_version,
                "recommendations": result.to_payload()}

    # ------------------------------------------------------------------
    # endpoint payloads
    # ------------------------------------------------------------------
    def health_payload(self) -> dict:
        return {"status": "ok",
                "snapshot_version": self.service.snapshot_version,
                "retriever": self.service.retriever_kind,
                "uptime_s": self.stats.uptime_s}

    def stats_payload(self) -> dict:
        payload = self.stats.snapshot()
        payload["batcher"] = self.batcher.stats()
        payload["snapshot"]["version"] = self.service.snapshot_version
        payload["snapshot"]["retriever"] = self.service.retriever_kind
        return payload


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes ``/recommend`` / ``/healthz`` / ``/stats`` to the server."""

    server: RecommendationHTTPServer
    # keep-alive: closed-loop clients reuse one connection per thread,
    # so connection setup never shows up in the measured latency
    protocol_version = "HTTP/1.1"
    # without TCP_NODELAY, Nagle + delayed ACK holds small JSON responses
    # hostage for ~40ms — an order of magnitude over the retrieval itself
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    # ------------------------------------------------------------------
    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        if status >= 400:
            self.server.stats.record_error()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        started = time.monotonic()
        parsed = urlparse(self.path)
        if parsed.path == "/healthz":
            self._send(200, self.server.health_payload())
        elif parsed.path == "/stats":
            self._send(200, self.server.stats_payload())
        elif parsed.path == "/recommend":
            self._recommend_single(parsed.query, started)
        else:
            self._send(404, {"error": f"unknown path {parsed.path!r}"})

    def _recommend_single(self, query: str, started: float) -> None:
        params = parse_qs(query)
        try:
            user = int(params["user"][0])
            k = int(params.get("k", [self.server.service.k_default])[0])
            cold = params.get("cold", ["0"])[0] not in ("0", "", "false")
        except (KeyError, ValueError, IndexError):
            self._send(400, {"error": "expected integer query parameters "
                                      "'user' and optional 'k', 'cold'"})
            return
        if not 0 <= user < self.server.service.model.num_users:
            self._send(400, {"error": f"user {user} out of range"})
            return
        if k <= 0:
            self._send(400, {"error": "k must be positive"})
            return
        try:
            payload = self.server.recommend_one(user, k, cold=cold)
        except ServerBusy as exc:
            self._send(503, {"error": str(exc)})
            return
        except TimeoutError as exc:
            self._send(503, {"error": str(exc)})
            return
        except ValueError as exc:  # e.g. model without a cold-user path
            self._send(400, {"error": str(exc)})
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        self._send(200, payload)
        self.server.stats.record_latency("request", time.monotonic() - started)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        started = time.monotonic()
        parsed = urlparse(self.path)
        if parsed.path != "/recommend":
            self._send(404, {"error": f"unknown path {parsed.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = json.loads(self.rfile.read(length) or b"{}")
            users = [int(u) for u in body["users"]]
            k = int(body.get("k", self.server.service.k_default))
        except (KeyError, TypeError, ValueError):
            self._send(400, {"error": "expected JSON body "
                                      '{"users": [...], "k": int}'})
            return
        num_users = self.server.service.model.num_users
        if not users or any(not 0 <= u < num_users for u in users):
            self._send(400, {"error": "users must be a non-empty list of "
                                      f"ids in [0, {num_users})"})
            return
        if k <= 0:
            self._send(400, {"error": "k must be positive"})
            return
        try:
            payload = self.server.recommend_many(users, k)
        except Exception as exc:  # pragma: no cover - defensive
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        self._send(200, payload)
        self.server.stats.record_latency("request", time.monotonic() - started)

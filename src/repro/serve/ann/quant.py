"""Compressed item-table codecs for probed-list scoring.

The IVF index stores the catalog reordered by inverted list; the codec
decides how those rows are stored and how a probed slice turns back into
a float32 operand for the per-list GEMM:

* ``none``  — float32 rows, slices are views (reference path).
* ``fp16``  — float16 rows (half the bytes); slices upcast on probe.
* ``int8``  — symmetric per-dimension quantization: one positive float32
  ``scale[d]`` per dimension with ``code = round(x / scale)`` in
  [-127, 127]. Scoring never decodes the table: the scale vector is
  folded into the *query* (``(q · scale) @ codes.T == q @ decoded.T``),
  so the per-list operand is just the int8 block cast to float32.

``quantize_int8`` / ``dequantize_int8`` are also exposed directly so the
round-trip error bound (≤ scale/2 per coordinate) is testable in
isolation.
"""

from __future__ import annotations

import numpy as np

QUANT_KINDS = ("none", "fp16", "int8")


def quantize_int8(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric per-dim int8 codes and their float32 scale vector.

    ``scale[d] = max_j |matrix[j, d]| / 127`` (1 where the column is all
    zero, so decoding stays a plain multiply), which maps the extreme
    value of every dimension exactly onto ±127 — no clipping, and a
    round-trip error of at most ``scale[d] / 2`` per coordinate.
    """
    matrix = np.asarray(matrix, dtype=np.float32)
    amax = np.max(np.abs(matrix), axis=0) if matrix.size else np.zeros(
        matrix.shape[1], dtype=np.float32)
    scale = np.where(amax > 0, amax / 127.0, 1.0).astype(np.float32)
    codes = np.rint(matrix / scale[None, :]).astype(np.int8)
    return codes, scale


def dequantize_int8(codes: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Float32 reconstruction of int8 codes (``codes * scale``)."""
    return codes.astype(np.float32) * np.asarray(scale,
                                                 dtype=np.float32)[None, :]


class QuantizedItems:
    """Row store for the reordered catalog at one compression level.

    ``prepare_queries(Q) @ dense_slice(a, b).T`` approximates
    ``Q @ original[a:b].T`` for every codec, which is the only contract
    the scoring loop needs.
    """

    def __init__(self, matrix: np.ndarray, kind: str = "none"):
        if kind not in QUANT_KINDS:
            raise ValueError(f"unknown quantization {kind!r}; "
                             f"expected one of {QUANT_KINDS}")
        matrix = np.ascontiguousarray(matrix, dtype=np.float32)
        self.kind = kind
        self.shape = matrix.shape
        self._scale: np.ndarray | None = None
        if kind == "none":
            self._rows = matrix
        elif kind == "fp16":
            self._rows = matrix.astype(np.float16)
        else:
            self._rows, self._scale = quantize_int8(matrix)

    @property
    def nbytes(self) -> int:
        """Bytes held by the compressed rows (+ scales for int8)."""
        total = self._rows.nbytes
        if self._scale is not None:
            total += self._scale.nbytes
        return total

    def prepare_queries(self, queries: np.ndarray) -> np.ndarray:
        """Query block ready to GEMM against ``dense_slice`` outputs."""
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        if self._scale is not None:
            queries = queries * self._scale[None, :]
        return queries

    def dense_slice(self, start: int, stop: int) -> np.ndarray:
        """Float32 scoring operand for rows [start, stop)."""
        rows = self._rows[start:stop]
        if self.kind == "none":
            return rows
        return rows.astype(np.float32)

    def decode(self) -> np.ndarray:
        """Full float32 reconstruction (tests / error analysis)."""
        if self._scale is not None:
            return dequantize_int8(self._rows, self._scale)
        return self._rows.astype(np.float32)

"""Approximate + quantized top-K retrieval (IVF shortlist, exact re-rank).

The million-item retrieval path: a seeded k-means coarse quantizer builds
IVF-style inverted lists over the item embedding snapshot
(:class:`IVFIndex`), probed lists are scored in the compressed domain
(float32 / float16 / symmetric per-dim int8 — :mod:`repro.serve.ann.quant`),
and the surviving shortlist is re-ranked exactly
(:class:`ApproxRetriever`, a drop-in for
:class:`~repro.serve.retriever.TopKRetriever`). The exact blocked path
stays the default everywhere and is the correctness oracle for this one.
"""

from repro.serve.ann.kmeans import kmeans
from repro.serve.ann.quant import (
    QUANT_KINDS,
    QuantizedItems,
    dequantize_int8,
    quantize_int8,
)
from repro.serve.ann.index import IVFIndex, default_num_lists
from repro.serve.ann.retriever import ApproxRetriever

__all__ = [
    "QUANT_KINDS",
    "ApproxRetriever",
    "IVFIndex",
    "QuantizedItems",
    "default_num_lists",
    "dequantize_int8",
    "kmeans",
    "quantize_int8",
]

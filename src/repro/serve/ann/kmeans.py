"""Seeded, deterministic k-means for the IVF coarse quantizer.

Plain Lloyd iterations over numpy — no external clustering dependency.
The distance computations are GEMM-shaped (``points @ centroids.T``
dominates each iteration), fitting can run on a fixed-size subsample of
the catalog (standard IVF practice: train the coarse quantizer on a
sample, assign everything), and all randomness flows through one
``np.random.default_rng(seed)`` stream, so the same inputs and seed
always produce the same centroids and assignments.
"""

from __future__ import annotations

import numpy as np


def _assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest centroid per point under squared L2 distance.

    ``argmin ‖x - c‖²`` over centroids is ``argmin (‖c‖² - 2 x·c)`` — the
    ``‖x‖²`` term is constant per point and dropped, which keeps the whole
    assignment one GEMM plus one argmin.
    """
    affinity = points @ centroids.T
    affinity *= 2.0
    affinity -= np.einsum("kd,kd->k", centroids, centroids)[None, :]
    return np.argmax(affinity, axis=1)


def _update(points: np.ndarray, assign: np.ndarray,
            num_clusters: int) -> tuple[np.ndarray, np.ndarray]:
    """Mean of each cluster's points; counts ride along for empty handling."""
    counts = np.bincount(assign, minlength=num_clusters)
    sums = np.zeros((num_clusters, points.shape[1]), dtype=np.float64)
    for d in range(points.shape[1]):  # bincount per dim beats np.add.at
        sums[:, d] = np.bincount(assign, weights=points[:, d],
                                 minlength=num_clusters)
    denom = np.maximum(counts, 1).astype(np.float64)
    return (sums / denom[:, None]).astype(points.dtype), counts


def _reseed_empty(points: np.ndarray, centroids: np.ndarray,
                  assign: np.ndarray, counts: np.ndarray) -> None:
    """Move empty centroids onto the points worst served by their cluster.

    Deterministic: empty clusters are filled in index order with the
    currently farthest points (each stolen point is marked so it is never
    used twice).
    """
    empty = np.flatnonzero(counts == 0)
    if empty.size == 0:
        return
    deltas = points - centroids[assign]
    distances = np.einsum("nd,nd->n", deltas, deltas)
    for cluster in empty:
        far = int(np.argmax(distances))
        centroids[cluster] = points[far]
        distances[far] = -np.inf


def kmeans(points: np.ndarray, num_clusters: int, *, seed: int = 0,
           iters: int = 15, train_sample: int | None = 16384,
           ) -> tuple[np.ndarray, np.ndarray]:
    """Cluster ``points`` into ``num_clusters`` groups.

    Parameters
    ----------
    points:
        (N, D) matrix; compute runs in its floating dtype (float32 for
        serving tables).
    num_clusters:
        Number of centroids; clamped to N.
    seed:
        Seeds centroid init (and the training subsample); fixed seed +
        fixed inputs → bit-identical output on the same machine.
    iters:
        Maximum Lloyd iterations (stops early once assignments are stable).
    train_sample:
        Fit centroids on at most this many points (``None`` = all), then
        assign every point once at the end — the IVF-standard shortcut
        that keeps index builds cheap on large catalogs.

    Returns
    -------
    (centroids, assignments):
        (num_clusters, D) centroid matrix and (N,) cluster id per point.
    """
    points = np.asarray(points)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("points must be a non-empty (N, D) matrix")
    num_points = points.shape[0]
    num_clusters = int(num_clusters)
    if num_clusters <= 0:
        raise ValueError("num_clusters must be positive")
    num_clusters = min(num_clusters, num_points)

    rng = np.random.default_rng(seed)
    if train_sample is not None and num_points > train_sample:
        fit_points = points[np.sort(rng.choice(num_points, train_sample,
                                               replace=False))]
    else:
        fit_points = points
    centroids = fit_points[np.sort(rng.choice(fit_points.shape[0],
                                              num_clusters, replace=False))].copy()

    assign = _assign(fit_points, centroids)
    for _ in range(max(int(iters), 1)):
        centroids, counts = _update(fit_points, assign, num_clusters)
        _reseed_empty(fit_points, centroids, assign, counts)
        new_assign = _assign(fit_points, centroids)
        if np.array_equal(new_assign, assign):
            break
        assign = new_assign

    full_assign = (assign if fit_points is points
                   else _assign(points, centroids))
    return centroids, full_assign

"""Approximate top-K retrieval: IVF shortlist + exact float re-rank.

Drop-in for :class:`~repro.serve.retriever.TopKRetriever`: same
``retrieve(users, k) -> TopKResult`` surface, same ``-1`` / ``-inf``
padding, and the same :class:`~repro.serve.retriever.ExclusionMask`
semantics — exclusions are stamped on the *candidates* before shortlist
selection, so excluded items never consume shortlist slots and never
surface. Per query the work is three stages:

1. probe ``nprobe`` inverted lists and score only their items in the
   compressed domain (:meth:`~repro.serve.ann.index.IVFIndex.search_block`);
2. keep the ``shortlist_k`` best compressed-domain candidates;
3. re-score the shortlist exactly against the float32 item table and
   return the top ``k`` of that — so compression error can only demote an
   item out of the shortlist, never corrupt a returned score.

With ``nprobe = num_lists`` and ``quant="none"`` every item is a
candidate at full precision and the result matches the exact retriever.
"""

from __future__ import annotations

import numpy as np

from repro.serve.ann.index import IVFIndex
from repro.serve.retriever import ExclusionMask, TopKResult


class ApproxRetriever:
    """IVF-shortlist top-K retrieval over a matrix scoring backend.

    Parameters
    ----------
    backend:
        A :class:`~repro.serve.retriever.MatrixBackend` (anything with
        ``user_matrix`` / ``item_matrix`` / ``num_items``); brute-force
        scorer backends have no embedding geometry to index.
    index:
        A prebuilt :class:`~repro.serve.ann.index.IVFIndex` over the
        backend's item matrix; built on the spot when omitted.
    exclude:
        Optional :class:`~repro.serve.retriever.ExclusionMask`, applied
        pre-rerank.
    batch_users:
        Users per search block.
    nprobe:
        Inverted lists probed per query (the recall dial).
    shortlist_k:
        Candidates kept for exact re-ranking (default ``max(4k, 50)``
        per call; the precision dial for quantized scoring).
    num_lists / quant / seed:
        Index build parameters, used only when ``index`` is omitted.

    >>> import numpy as np
    >>> from repro.serve import ApproxRetriever, MatrixBackend, TopKRetriever
    >>> rng = np.random.default_rng(0)
    >>> backend = MatrixBackend(rng.standard_normal((30, 8)),
    ...                         rng.standard_normal((50, 8)))
    >>> approx = ApproxRetriever(backend, nprobe=4, quant="int8", seed=0)
    >>> result = approx.retrieve([0, 1, 2], k=5)
    >>> result.items.shape
    (3, 5)
    >>> exhaustive = ApproxRetriever(backend, nprobe=approx.index.num_lists)
    >>> exact = TopKRetriever(backend).retrieve([0, 1, 2], k=5)
    >>> np.array_equal(exhaustive.retrieve([0, 1, 2], k=5).items, exact.items)
    True
    """

    def __init__(self, backend, index: IVFIndex | None = None, *,
                 exclude: ExclusionMask | None = None, batch_users: int = 256,
                 nprobe: int = 8, shortlist_k: int | None = None,
                 num_lists: int | None = None, quant: str = "none",
                 seed: int = 0):
        if batch_users <= 0:
            raise ValueError("batch_users must be positive")
        if nprobe <= 0:
            raise ValueError("nprobe must be positive")
        if shortlist_k is not None and shortlist_k <= 0:
            raise ValueError("shortlist_k must be positive")
        item_matrix = getattr(backend, "item_matrix", None)
        if item_matrix is None:
            raise ValueError(
                "ApproxRetriever needs a matrix backend exposing item_matrix; "
                "brute-force scorer backends cannot be indexed")
        if index is None:
            index = IVFIndex(item_matrix, num_lists=num_lists, quant=quant,
                             seed=seed)
        elif index.num_items != backend.num_items:
            raise ValueError(
                f"index covers {index.num_items} items but the backend "
                f"serves {backend.num_items}")
        self.backend = backend
        self.index = index
        self.exclude = exclude
        self.batch_users = int(batch_users)
        self.nprobe = int(nprobe)
        self.shortlist_k = None if shortlist_k is None else int(shortlist_k)

    # ------------------------------------------------------------------
    def retrieve(self, users: np.ndarray, k: int) -> TopKResult:
        """Approximate top-``k`` items per user, seen items excluded."""
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        if k <= 0:
            raise ValueError("k must be positive")
        num_items = self.index.num_items
        k_eff = min(int(k), num_items)
        shortlist = self.shortlist_k or max(4 * k_eff, 50)
        shortlist = max(shortlist, k_eff)
        items = np.full((users.size, k_eff), -1, dtype=np.int64)
        scores = np.full((users.size, k_eff), -np.inf, dtype=np.float64)
        if self.exclude is not None:
            excl_counts, excl_cols = self.exclude.gather(users)
            excl_bounds = np.concatenate(([0], np.cumsum(excl_counts)))
        for start in range(0, users.size, self.batch_users):
            stop = min(start + self.batch_users, users.size)
            queries = np.ascontiguousarray(
                self.backend.user_matrix[users[start:stop]], dtype=np.float32)
            counts, cand_items, cand_scores = self.index.search_block(
                queries, self.nprobe)
            cand_rows = np.repeat(np.arange(stop - start), counts)
            if self.exclude is not None:
                self._stamp_excluded(
                    cand_rows, cand_items, cand_scores,
                    excl_counts[start:stop],
                    excl_cols[excl_bounds[start]:excl_bounds[stop]])
            top_items, top_scores = self._shortlist_and_rerank(
                queries, counts, cand_rows, cand_items, cand_scores,
                shortlist, k_eff)
            items[start:stop] = top_items
            scores[start:stop] = top_scores
        return TopKResult(users=users, items=items, scores=scores)

    # ------------------------------------------------------------------
    def _stamp_excluded(self, cand_rows, cand_items, cand_scores,
                        excl_counts, excl_cols) -> None:
        """-inf every candidate the block's exclusion rows cover.

        Both sides are encoded as ``row * J + item`` keys; the exclusion
        keys are already sorted (CSR rows ascend, columns ascend within a
        row), so membership is one ``searchsorted`` pass.
        """
        if excl_cols.size == 0 or cand_items.size == 0:
            return
        num_items = self.index.num_items
        excl_keys = (np.repeat(np.arange(excl_counts.size), excl_counts)
                     * num_items + excl_cols)
        cand_keys = cand_rows * num_items + cand_items
        at = np.searchsorted(excl_keys, cand_keys)
        at_clipped = np.minimum(at, excl_keys.size - 1)
        hit = (at < excl_keys.size) & (excl_keys[at_clipped] == cand_keys)
        cand_scores[hit] = -np.inf

    def _shortlist_and_rerank(self, queries, counts, cand_rows, cand_items,
                              cand_scores, shortlist: int, k: int,
                              ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``shortlist`` by compressed score, exact top-``k`` of those."""
        num_rows = queries.shape[0]
        num_items = self.index.num_items
        max_count = int(counts.max()) if counts.size else 0
        if max_count == 0:
            return (np.full((num_rows, k), -1, dtype=np.int64),
                    np.full((num_rows, k), -np.inf, dtype=np.float64))
        # pad the ragged per-user candidate segments into one (B, maxc)
        # matrix so shortlist selection is a single argpartition
        bounds = np.concatenate(([0], np.cumsum(counts)))
        cols = np.arange(bounds[-1]) - np.repeat(bounds[:-1], counts)
        padded_scores = np.full((num_rows, max_count), -np.inf,
                                dtype=np.float32)
        padded_items = np.full((num_rows, max_count), -1, dtype=np.int64)
        padded_scores[cand_rows, cols] = cand_scores
        padded_items[cand_rows, cols] = cand_items

        width = min(shortlist, max_count)
        if width < max_count:
            part = np.argpartition(padded_scores, max_count - width,
                                   axis=1)[:, -width:]
            short_scores = np.take_along_axis(padded_scores, part, axis=1)
            short_items = np.take_along_axis(padded_items, part, axis=1)
        else:
            short_scores = padded_scores
            short_items = padded_items
        # pads and excluded candidates carry -inf — they must stay out of
        # the exact re-rank or it would resurrect them with finite scores
        short_items = np.where(np.isfinite(short_scores), short_items, -1)

        # exact re-rank: ascending item id first so that, like the exact
        # retriever, ties resolve to the lowest item id under stable sort
        ids = np.sort(np.where(short_items < 0, num_items, short_items),
                      axis=1)
        valid = ids < num_items
        gather = np.where(valid, ids, 0)
        exact = np.einsum("bsd,bd->bs", self.index.item_matrix[gather],
                          queries)
        exact[~valid] = -np.inf
        order = np.argsort(-exact, axis=1, kind="stable")[:, :k]
        top_items = np.take_along_axis(ids, order, axis=1)
        top_scores = np.take_along_axis(exact, order, axis=1).astype(np.float64)
        if top_items.shape[1] < k:  # fewer candidates than k: pad out
            pad = k - top_items.shape[1]
            top_items = np.pad(top_items, ((0, 0), (0, pad)),
                               constant_values=num_items)
            top_scores = np.pad(top_scores, ((0, 0), (0, pad)),
                                constant_values=-np.inf)
        top_items = np.where(np.isfinite(top_scores), top_items, -1)
        return top_items, top_scores

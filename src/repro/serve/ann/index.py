"""IVF-style inverted-file index over the item embedding table.

Build: k-means over the item embeddings (:func:`~repro.serve.ann.kmeans`,
seeded and deterministic) partitions the catalog into ``num_lists``
inverted lists; the catalog is reordered list-contiguously and stored
through a :class:`~repro.serve.ann.quant.QuantizedItems` codec
(float32 / float16 / int8).

Search: queries probe the ``nprobe`` lists whose centroids have the
highest inner product with the query (the standard MIPS heuristic over an
L2-trained coarse quantizer), and only those lists are scored. Scoring is
batched *by list*, not by user: every list probed by anyone in the block
is decoded once and hit with one small GEMM for all the users that probed
it, so per-query cost is O(nprobe · list_len · dim) with BLAS throughput
instead of O(catalog · dim).
"""

from __future__ import annotations

import numpy as np

from repro.serve.ann.kmeans import kmeans
from repro.serve.ann.quant import QuantizedItems


def default_num_lists(num_items: int) -> int:
    """The √J rule of thumb, clamped to [1, 1024]."""
    return max(1, min(int(round(float(num_items) ** 0.5)), 1024))


class IVFIndex:
    """Inverted lists + compressed rows for one item-table snapshot.

    Parameters
    ----------
    item_matrix:
        (J, D) item embedding table (the ``EmbeddingStore`` item matrix).
    num_lists:
        Inverted lists to build (default ``√J`` clamped to 1024).
    quant:
        Row codec: ``"none"`` (float32), ``"fp16"``, or ``"int8"``.
    seed:
        Seeds the k-means coarse quantizer — same snapshot + seed →
        identical index.
    kmeans_iters / train_sample:
        Forwarded to :func:`~repro.serve.ann.kmeans.kmeans`.
    clustering:
        Optional precomputed ``(centroids, assignments)`` pair — lets
        several quantization levels share one k-means run (the benchmark
        sweep does this).
    """

    def __init__(self, item_matrix: np.ndarray, *, num_lists: int | None = None,
                 quant: str = "none", seed: int = 0, kmeans_iters: int = 15,
                 train_sample: int | None = 16384,
                 clustering: tuple[np.ndarray, np.ndarray] | None = None):
        item_matrix = np.ascontiguousarray(item_matrix, dtype=np.float32)
        if item_matrix.ndim != 2 or item_matrix.shape[0] == 0:
            raise ValueError("item_matrix must be a non-empty (J, D) matrix")
        self.num_items, self.dim = item_matrix.shape
        if num_lists is None:
            num_lists = default_num_lists(self.num_items)
        if clustering is not None:
            centroids, assign = clustering
            centroids = np.ascontiguousarray(centroids, dtype=np.float32)
            assign = np.asarray(assign, dtype=np.int64)
            if assign.shape != (self.num_items,):
                raise ValueError("clustering assignments must cover every item")
        else:
            centroids, assign = kmeans(item_matrix, num_lists, seed=seed,
                                       iters=kmeans_iters,
                                       train_sample=train_sample)
        self.num_lists = centroids.shape[0]
        self.seed = seed
        self.quant = quant
        self.centroids = centroids
        self._centroids_t = np.ascontiguousarray(centroids.T)
        # stable sort → items within a list stay in ascending id order
        self.perm = np.argsort(assign, kind="stable").astype(np.int64)
        self.list_sizes = np.bincount(assign, minlength=self.num_lists)
        self.list_offsets = np.concatenate(
            ([0], np.cumsum(self.list_sizes))).astype(np.int64)
        self.codes = QuantizedItems(item_matrix[self.perm], kind=quant)
        self.item_matrix = item_matrix

    # ------------------------------------------------------------------
    @property
    def compressed_nbytes(self) -> int:
        return self.codes.nbytes

    def list_items(self, list_id: int) -> np.ndarray:
        """Item ids assigned to one inverted list (ascending)."""
        start, stop = self.list_offsets[list_id], self.list_offsets[list_id + 1]
        return self.perm[start:stop]

    def probe(self, queries: np.ndarray, nprobe: int) -> np.ndarray:
        """(B, nprobe) highest-inner-product lists per query row."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        nprobe = min(max(int(nprobe), 1), self.num_lists)
        affinity = queries @ self._centroids_t
        if nprobe < self.num_lists:
            return np.argpartition(affinity, self.num_lists - nprobe,
                                   axis=1)[:, -nprobe:]
        return np.broadcast_to(np.arange(self.num_lists),
                               affinity.shape).copy()

    # ------------------------------------------------------------------
    def search_block(self, queries: np.ndarray, nprobe: int,
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Score a query block against its probed lists.

        Returns ``(counts, items, scores)``: per-query candidate counts
        plus flat candidate item ids / compressed-domain scores,
        concatenated query by query (query ``b``'s segment is
        ``[counts[:b].sum(), counts[:b+1].sum())``). Every catalog item
        appears at most once per query (lists partition the catalog).
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        num_queries = queries.shape[0]
        probe = self.probe(queries, nprobe)
        prepared = self.codes.prepare_queries(queries)

        sizes = self.list_sizes[probe]                      # (B, nprobe)
        counts = sizes.sum(axis=1)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        total = int(bounds[-1])
        items = np.empty(total, dtype=np.int64)
        scores = np.empty(total, dtype=np.float32)
        # destination start of every (query, probed list) segment: query
        # base + exclusive running sum of that query's earlier lists
        seg_start = (bounds[:-1][:, None]
                     + np.cumsum(sizes, axis=1) - sizes)    # (B, nprobe)

        # group the flat (query, list) pairs by list id so each probed
        # list is decoded once and scored with one GEMM for all takers
        flat_rows = np.repeat(np.arange(num_queries), probe.shape[1])
        order = np.argsort(probe.ravel(), kind="stable")
        sorted_lists = probe.ravel()[order]
        sorted_rows = flat_rows[order]
        sorted_starts = seg_start.ravel()[order]
        group_bounds = np.flatnonzero(
            np.diff(sorted_lists, prepend=-1, append=-2)).tolist()
        for g in range(len(group_bounds) - 1):
            lo, hi = group_bounds[g], group_bounds[g + 1]
            list_id = int(sorted_lists[lo])
            start = int(self.list_offsets[list_id])
            stop = int(self.list_offsets[list_id + 1])
            length = stop - start
            if length == 0:
                continue
            rows = sorted_rows[lo:hi]
            block = prepared[rows] @ self.codes.dense_slice(start, stop).T
            dest = sorted_starts[lo:hi][:, None] + np.arange(length)[None, :]
            scores[dest.ravel()] = block.ravel()
            items[dest] = self.perm[start:stop][None, :]
        return counts, items, scores

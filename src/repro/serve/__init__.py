"""Batched top-K serving subsystem.

The retrieval path the evaluation protocol never exercised: snapshot the
multi-order embeddings out of the propagation engine
(:class:`EmbeddingStore`), score user blocks against the full catalog with
a blocked matmul and CSR exclusion masks (:class:`TopKRetriever`), and
front it all with :class:`RecommendationService` —
``recommend(users, k)``, ``score_candidates``, warm/cold snapshot reload.
For catalogs where the exact scan is too slow, :mod:`repro.serve.ann`
provides the opt-in approximate path (:class:`IVFIndex` +
:class:`ApproxRetriever`: coarse-quantized inverted lists, int8/fp16
compressed-domain scoring, exact float re-rank) behind the same retriever
interface — exact retrieval stays the default and the oracle. The online
tier lives in :mod:`repro.serve.http`: a stdlib HTTP server with a
request-coalescing :class:`DynamicBatcher`, background hot snapshot
swap, and an on-demand cold-user extraction path
(:class:`RecommendationHTTPServer`, CLI ``repro.cli serve``).
"""

from repro.serve.retriever import (
    ExclusionMask,
    MatrixBackend,
    ScorerBackend,
    TopKResult,
    TopKRetriever,
    backend_for,
)
from repro.serve.ann import ApproxRetriever, IVFIndex
from repro.serve.store import EmbeddingStore, SnapshotIntegrityError, model_version
from repro.serve.service import RecommendationService
from repro.serve.http import (
    DynamicBatcher,
    RecommendationHTTPServer,
    ServerBusy,
)

__all__ = [
    "ApproxRetriever",
    "DynamicBatcher",
    "ExclusionMask",
    "IVFIndex",
    "MatrixBackend",
    "ScorerBackend",
    "TopKResult",
    "TopKRetriever",
    "backend_for",
    "EmbeddingStore",
    "SnapshotIntegrityError",
    "model_version",
    "RecommendationService",
    "RecommendationHTTPServer",
    "ServerBusy",
]

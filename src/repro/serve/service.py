"""The serving facade: snapshot + retriever + exclusions in one object.

``RecommendationService`` is what an application holds: it snapshots the
model's serving embeddings once (float32 by default), builds the seen-item
exclusion mask from the training data, and answers ``recommend`` /
``score_candidates`` requests without touching autograd or re-propagating
the graph. When the underlying model trains on (engine version bump), the
service warm-reloads the snapshot transparently on the next request.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.serve.retriever import (
    ExclusionMask,
    ScorerBackend,
    TopKResult,
    TopKRetriever,
)
from repro.serve.store import EmbeddingStore, model_version


class RecommendationService:
    """Batched top-K serving over one recommender.

    Parameters
    ----------
    model:
        Any :class:`~repro.models.base.Recommender`. Factored models
        (GNMR, NGCF) serve through an :class:`EmbeddingStore` snapshot;
        others through brute-force scoring.
    train:
        Training :class:`~repro.data.dataset.InteractionDataset`; provides
        the seen-item exclusion mask (``None`` disables exclusion).
    dtype:
        Snapshot precision (float32 default; ``None`` keeps the model's).
    k_default:
        ``recommend`` cutoff when ``k`` is omitted.
    batch_users:
        Users per scoring block (peak memory ∝ ``batch_users × catalog``).
    exclude:
        ``"target"`` / ``"all"`` / iterable of behavior names — which
        interactions make an item non-recommendable for a user; ``None``
        disables exclusion even when ``train`` is given.
    auto_refresh:
        Warm-reload the snapshot automatically when the model's engine
        version moved (default on).
    retriever:
        ``"exact"`` (default) — blocked full-catalog scan; ``"ivf"`` —
        approximate retrieval through an
        :class:`~repro.serve.ann.IVFIndex` built over the snapshot's item
        matrix (requires a factored model). The index follows the
        snapshot lifecycle: a warm reload rebuilds it against the fresh
        tables.
    ann:
        Options for ``retriever="ivf"``: ``nprobe`` (lists probed per
        query, default 8), ``quant`` (``"none"``/``"fp16"``/``"int8"``),
        ``num_lists``, ``shortlist_k``, ``seed``.

    Lifecycle: construction cold-loads (snapshot + exclusion mask +
    retriever); every ``recommend`` / ``score_candidates`` call first
    checks the model's engine version and warm-reloads a stale snapshot;
    ``reload(cold=True)`` rebuilds everything (e.g. after the training
    data — and thus the exclusion mask — changed).

    >>> import numpy as np
    >>> from repro.data import taobao_like
    >>> from repro.models import BiasMF
    >>> data = taobao_like(num_users=25, num_items=40, seed=0)
    >>> model = BiasMF(data.num_users, data.num_items, seed=0)
    >>> service = RecommendationService(model, train=data, k_default=3)
    >>> result = service.recommend([0, 1])
    >>> result.items.shape          # (users, k), best item first
    (2, 3)
    >>> bool(np.isfinite(result.scores).all())
    True
    """

    def __init__(self, model, train=None, *, dtype="float32",
                 k_default: int = 10, batch_users: int = 256,
                 exclude: str | tuple | list | None = "target",
                 auto_refresh: bool = True, retriever: str = "exact",
                 ann: dict | None = None, retain: int = 2):
        if retriever not in ("exact", "ivf"):
            raise ValueError(f"unknown retriever {retriever!r}; "
                             "expected 'exact' or 'ivf'")
        self.model = model
        self.train = train
        self.dtype = dtype
        self.k_default = int(k_default)
        self.batch_users = int(batch_users)
        self.exclude_behaviors = exclude
        self.auto_refresh = auto_refresh
        self.retriever_kind = retriever
        self.ann_options = dict(ann or {})
        self.retain = int(retain)
        # Guards the snapshot lifecycle (reload / freshness check) against
        # concurrent callers — the HTTP tier runs the freshness check on a
        # background thread while request threads call ``recommend``.
        self._lock = threading.RLock()
        self._cold_load()

    # ------------------------------------------------------------------
    # snapshot lifecycle
    # ------------------------------------------------------------------
    def _build_retriever(self):
        """The retriever for the current snapshot (exact or IVF)."""
        if self.retriever_kind == "ivf":
            if self.store is None:
                raise ValueError(
                    "retriever='ivf' needs a factored model (serving "
                    "embeddings); this model only supports exact "
                    "brute-force retrieval")
            from repro.serve.ann import ApproxRetriever

            opts = self.ann_options
            index = self.store.ann_index(
                num_lists=opts.get("num_lists"),
                quant=opts.get("quant", "none"),
                seed=opts.get("seed", 0))
            return ApproxRetriever(
                self.store.backend(), index, exclude=self.exclusions,
                batch_users=self.batch_users,
                nprobe=opts.get("nprobe", 8),
                shortlist_k=opts.get("shortlist_k"))
        backend = (self.store.backend() if self.store is not None
                   else ScorerBackend(self.model))
        return TopKRetriever(backend, exclude=self.exclusions,
                             batch_users=self.batch_users)

    def _cold_load(self) -> None:
        """Rebuild everything: snapshot, exclusion mask, retriever."""
        self.store = EmbeddingStore.snapshot(self.model, dtype=self.dtype,
                                             retain=self.retain)
        if self.train is not None and self.exclude_behaviors is not None:
            self.exclusions = ExclusionMask.from_dataset(
                self.train, behaviors=self.exclude_behaviors)
        else:
            self.exclusions = None
        self.retriever = self._build_retriever()

    def reload(self, cold: bool = False) -> bool:
        """Refresh the serving state from the model.

        Warm reload (default) re-snapshots the embedding tables in place,
        keeping the exclusion mask and retriever wiring; cold reload
        rebuilds everything (use after swapping the training dataset or
        when the model gained/lost its factored form). Returns whether
        serving tables actually changed.
        """
        with self._lock:
            if cold or self.store is None:
                self._cold_load()
                return True
            changed = self.store.refresh(self.model, force=True)
            self._rewire_retriever()
            return changed

    def recover(self, version: int | None = None) -> int | None:
        """Roll the snapshot back to an archived good version and rewire.

        The serving-tier escape hatch: when a hot swap produced (or a
        freshness check discovered) a snapshot that fails integrity
        verification, ``recover()`` restores the newest archived snapshot
        — hash-verified on restore — and swaps in a retriever built over
        it, so requests go back to bit-matching the last good tables.
        Returns the restored engine version; raises ``ValueError`` when
        nothing is archived (or for brute-force models with no snapshot).
        """
        with self._lock:
            if self.store is None:
                raise ValueError(
                    "brute-force serving has no snapshot to roll back")
            restored = self.store.rollback(version)
            self._rewire_retriever()
            return restored

    def _rewire_retriever(self) -> None:
        """Swap in a retriever built against the refreshed snapshot.

        Always constructs a *new* retriever object and flips the
        ``self.retriever`` reference in one assignment: a request thread
        that already grabbed the old retriever finishes its whole
        retrieval on the old snapshot instead of seeing tables change
        under it mid-scan. The IVF index follows along through
        ``store.ann_index`` (cached per snapshot version, so an
        unchanged snapshot costs nothing).
        """
        self.retriever = self._build_retriever()

    def _ensure_fresh(self) -> None:
        if not (self.auto_refresh and self.store is not None):
            return
        if not self.store.is_stale(self.model):
            return
        with self._lock:
            if self.store.is_stale(self.model):
                self.store.refresh(self.model)
                self._rewire_retriever()

    @property
    def snapshot_version(self) -> int | None:
        """Engine version of the current snapshot (None for brute force)."""
        if self.store is not None:
            return self.store.version
        return model_version(self.model)

    # ------------------------------------------------------------------
    # serving API
    # ------------------------------------------------------------------
    def recommend(self, users, k: int | None = None) -> TopKResult:
        """Top-K recommendations for one user id or an array of them."""
        self._ensure_fresh()
        return self.retriever.retrieve(users, k if k is not None else self.k_default)

    def recommend_all(self, k: int | None = None,
                      users: np.ndarray | None = None) -> TopKResult:
        """Recommendations for every user (or a given subset), batched."""
        if users is None:
            num_users = (self.store.num_users if self.store is not None
                         else self.model.num_users)
            users = np.arange(num_users, dtype=np.int64)
        return self.recommend(users, k)

    def score_candidates(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Scores for parallel (user, item) arrays — reranking hook.

        Uses the snapshot when available (no propagation), the model's
        ``score`` otherwise.
        """
        self._ensure_fresh()
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if self.store is not None:
            return self.store.score(users, items)
        return np.asarray(self.model.score(users, items))

    # ------------------------------------------------------------------
    # cold-user path
    # ------------------------------------------------------------------
    def cold_user_embeddings(self, users) -> np.ndarray:
        """Fresh serving embeddings for a few users, bypassing the snapshot.

        Runs the model's single-seed layered extraction
        (``model.cold_user_embeddings``, backed by ``graph/layered.py``
        with ``fanout=None`` → exact full-neighborhood propagation for
        the seeds) over the *current* parameters, then casts to the
        snapshot dtype. The rows match what the user's row in the *next*
        snapshot will be, to within a float64 ulp — which is the whole
        point: a user who trained into the graph after the last snapshot
        can be served now.
        """
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        provider = getattr(self.model, "cold_user_embeddings", None)
        vectors = provider(users) if callable(provider) else None
        if vectors is None:
            raise ValueError(
                f"{type(self.model).__name__} has no cold-user extraction "
                "path (needs factored serving embeddings + layered blocks)")
        vectors = np.asarray(vectors)
        if self.store is not None:
            vectors = vectors.astype(self.store.user_matrix.dtype, copy=False)
        return vectors

    def recommend_cold(self, users, k: int | None = None) -> TopKResult:
        """Top-K through a freshly extracted embedding (cold-user path).

        Scores the cold embedding against the *current snapshot's* item
        matrix with the same GEMM, exclusion stamping, and selection as
        the warm path — when the model hasn't trained since the snapshot,
        the result matches :meth:`recommend` (same ranking; scores agree
        to the extraction's float64-ulp tolerance). Brute-force models
        (no factored form) already score current parameters, so they just
        delegate.
        """
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        k = int(k) if k is not None else self.k_default
        if k <= 0:
            raise ValueError("k must be positive")
        if self.store is None:
            return self.retriever.retrieve(users, k)
        vectors = self.cold_user_embeddings(users)
        backend = self.store.backend()
        if vectors.shape[1] != backend.dim:
            raise ValueError(
                f"cold embedding dim {vectors.shape[1]} does not match "
                f"snapshot dim {backend.dim}")
        # same operand layout as MatrixBackend.score_block: rows @ item_t
        scores = vectors @ backend.item_matrix.T
        if self.exclusions is not None:
            counts, cols = self.exclusions.gather(users)
            ExclusionMask.stamp(scores, counts, cols)
        k_eff = min(k, backend.num_items)
        top_items, top_scores = TopKRetriever._select(scores, k_eff)
        return TopKResult(users=users, items=top_items,
                          scores=top_scores.astype(np.float64, copy=False))

"""The serving facade: snapshot + retriever + exclusions in one object.

``RecommendationService`` is what an application holds: it snapshots the
model's serving embeddings once (float32 by default), builds the seen-item
exclusion mask from the training data, and answers ``recommend`` /
``score_candidates`` requests without touching autograd or re-propagating
the graph. When the underlying model trains on (engine version bump), the
service warm-reloads the snapshot transparently on the next request.
"""

from __future__ import annotations

import numpy as np

from repro.serve.retriever import (
    ExclusionMask,
    ScorerBackend,
    TopKResult,
    TopKRetriever,
)
from repro.serve.store import EmbeddingStore, model_version


class RecommendationService:
    """Batched top-K serving over one recommender.

    Parameters
    ----------
    model:
        Any :class:`~repro.models.base.Recommender`. Factored models
        (GNMR, NGCF) serve through an :class:`EmbeddingStore` snapshot;
        others through brute-force scoring.
    train:
        Training :class:`~repro.data.dataset.InteractionDataset`; provides
        the seen-item exclusion mask (``None`` disables exclusion).
    dtype:
        Snapshot precision (float32 default; ``None`` keeps the model's).
    k_default:
        ``recommend`` cutoff when ``k`` is omitted.
    batch_users:
        Users per scoring block (peak memory ∝ ``batch_users × catalog``).
    exclude:
        ``"target"`` / ``"all"`` / iterable of behavior names — which
        interactions make an item non-recommendable for a user; ``None``
        disables exclusion even when ``train`` is given.
    auto_refresh:
        Warm-reload the snapshot automatically when the model's engine
        version moved (default on).
    retriever:
        ``"exact"`` (default) — blocked full-catalog scan; ``"ivf"`` —
        approximate retrieval through an
        :class:`~repro.serve.ann.IVFIndex` built over the snapshot's item
        matrix (requires a factored model). The index follows the
        snapshot lifecycle: a warm reload rebuilds it against the fresh
        tables.
    ann:
        Options for ``retriever="ivf"``: ``nprobe`` (lists probed per
        query, default 8), ``quant`` (``"none"``/``"fp16"``/``"int8"``),
        ``num_lists``, ``shortlist_k``, ``seed``.

    Lifecycle: construction cold-loads (snapshot + exclusion mask +
    retriever); every ``recommend`` / ``score_candidates`` call first
    checks the model's engine version and warm-reloads a stale snapshot;
    ``reload(cold=True)`` rebuilds everything (e.g. after the training
    data — and thus the exclusion mask — changed).

    >>> import numpy as np
    >>> from repro.data import taobao_like
    >>> from repro.models import BiasMF
    >>> data = taobao_like(num_users=25, num_items=40, seed=0)
    >>> model = BiasMF(data.num_users, data.num_items, seed=0)
    >>> service = RecommendationService(model, train=data, k_default=3)
    >>> result = service.recommend([0, 1])
    >>> result.items.shape          # (users, k), best item first
    (2, 3)
    >>> bool(np.isfinite(result.scores).all())
    True
    """

    def __init__(self, model, train=None, *, dtype="float32",
                 k_default: int = 10, batch_users: int = 256,
                 exclude: str | tuple | list | None = "target",
                 auto_refresh: bool = True, retriever: str = "exact",
                 ann: dict | None = None):
        if retriever not in ("exact", "ivf"):
            raise ValueError(f"unknown retriever {retriever!r}; "
                             "expected 'exact' or 'ivf'")
        self.model = model
        self.train = train
        self.dtype = dtype
        self.k_default = int(k_default)
        self.batch_users = int(batch_users)
        self.exclude_behaviors = exclude
        self.auto_refresh = auto_refresh
        self.retriever_kind = retriever
        self.ann_options = dict(ann or {})
        self._cold_load()

    # ------------------------------------------------------------------
    # snapshot lifecycle
    # ------------------------------------------------------------------
    def _build_retriever(self):
        """The retriever for the current snapshot (exact or IVF)."""
        if self.retriever_kind == "ivf":
            if self.store is None:
                raise ValueError(
                    "retriever='ivf' needs a factored model (serving "
                    "embeddings); this model only supports exact "
                    "brute-force retrieval")
            from repro.serve.ann import ApproxRetriever

            opts = self.ann_options
            index = self.store.ann_index(
                num_lists=opts.get("num_lists"),
                quant=opts.get("quant", "none"),
                seed=opts.get("seed", 0))
            return ApproxRetriever(
                self.store.backend(), index, exclude=self.exclusions,
                batch_users=self.batch_users,
                nprobe=opts.get("nprobe", 8),
                shortlist_k=opts.get("shortlist_k"))
        backend = (self.store.backend() if self.store is not None
                   else ScorerBackend(self.model))
        return TopKRetriever(backend, exclude=self.exclusions,
                             batch_users=self.batch_users)

    def _cold_load(self) -> None:
        """Rebuild everything: snapshot, exclusion mask, retriever."""
        self.store = EmbeddingStore.snapshot(self.model, dtype=self.dtype)
        if self.train is not None and self.exclude_behaviors is not None:
            self.exclusions = ExclusionMask.from_dataset(
                self.train, behaviors=self.exclude_behaviors)
        else:
            self.exclusions = None
        self.retriever = self._build_retriever()

    def reload(self, cold: bool = False) -> bool:
        """Refresh the serving state from the model.

        Warm reload (default) re-snapshots the embedding tables in place,
        keeping the exclusion mask and retriever wiring; cold reload
        rebuilds everything (use after swapping the training dataset or
        when the model gained/lost its factored form). Returns whether
        serving tables actually changed.
        """
        if cold or self.store is None:
            self._cold_load()
            return True
        changed = self.store.refresh(self.model, force=True)
        self._rewire_retriever()
        return changed

    def _rewire_retriever(self) -> None:
        """Point the retriever at the refreshed snapshot.

        The exact retriever just swaps its backend; the IVF retriever is
        rebuilt so its index follows the snapshot (``ann_index`` caches
        per snapshot version, so an unchanged snapshot costs nothing).
        """
        if self.retriever_kind == "ivf":
            self.retriever = self._build_retriever()
        else:
            self.retriever.backend = (self.store.backend()
                                      if self.store is not None
                                      else ScorerBackend(self.model))

    def _ensure_fresh(self) -> None:
        if (self.auto_refresh and self.store is not None
                and self.store.is_stale(self.model)):
            self.store.refresh(self.model)
            self._rewire_retriever()

    @property
    def snapshot_version(self) -> int | None:
        """Engine version of the current snapshot (None for brute force)."""
        if self.store is not None:
            return self.store.version
        return model_version(self.model)

    # ------------------------------------------------------------------
    # serving API
    # ------------------------------------------------------------------
    def recommend(self, users, k: int | None = None) -> TopKResult:
        """Top-K recommendations for one user id or an array of them."""
        self._ensure_fresh()
        return self.retriever.retrieve(users, k if k is not None else self.k_default)

    def recommend_all(self, k: int | None = None,
                      users: np.ndarray | None = None) -> TopKResult:
        """Recommendations for every user (or a given subset), batched."""
        if users is None:
            num_users = (self.store.num_users if self.store is not None
                         else self.model.num_users)
            users = np.arange(num_users, dtype=np.int64)
        return self.recommend(users, k)

    def score_candidates(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Scores for parallel (user, item) arrays — reranking hook.

        Uses the snapshot when available (no propagation), the model's
        ``score`` otherwise.
        """
        self._ensure_fresh()
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if self.store is not None:
            return self.store.score(users, items)
        return np.asarray(self.model.score(users, items))

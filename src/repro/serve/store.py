"""Versioned snapshots of serving embeddings.

Training mutates model parameters every optimizer step and bumps the
:class:`~repro.graph.engine.PropagationEngine` version; serving must not
re-propagate the graph per request. The :class:`EmbeddingStore` snapshots
the model's serving embeddings (for GNMR the engine-cached multi-order
propagation, concatenated) into plain numpy matrices at a chosen serving
dtype, remembers the engine version the snapshot was taken at, and can
tell when a retrain has made it stale.
"""

from __future__ import annotations

import collections

import numpy as np

from repro.serve.retriever import MatrixBackend
from repro.utils.integrity import array_sha256


class SnapshotIntegrityError(ValueError):
    """A snapshot's content hash did not match the expected fingerprint."""


def model_version(model) -> int | None:
    """The model's propagation-engine version, or ``None`` without one.

    Graph models bump ``engine.version`` whenever parameters change (their
    ``on_step_end`` calls ``engine.invalidate()``), which makes it the
    natural staleness key for serving snapshots. Models without an engine
    have no observable version — their snapshots only refresh explicitly.
    """
    engine = getattr(model, "engine", None)
    if engine is None:
        return None
    return int(engine.version)


class EmbeddingStore:
    """A frozen (user_matrix, item_matrix) snapshot keyed by engine version.

    Parameters
    ----------
    user_matrix, item_matrix:
        Serving embedding tables whose inner product reproduces the
        model's score (see ``Recommender.serving_embeddings``).
    version:
        Engine version the snapshot was taken at (``None`` when the source
        model exposes no version).
    dtype:
        Serving precision of the stored tables; float32 by default —
        ranking is bandwidth-bound and the retriever re-ranks in float64.
    source:
        Human-readable provenance label (model name).
    retain:
        Archived snapshots kept for :meth:`rollback` (keep-last-N). Every
        :meth:`refresh` pushes the outgoing tables onto the archive after
        verifying their hash, so a bad swap can always be undone back to
        the last N good versions. ``0`` disables the archive.
    """

    def __init__(self, user_matrix: np.ndarray, item_matrix: np.ndarray,
                 version: int | None = None, dtype="float32",
                 source: str = "unknown", retain: int = 2):
        if retain < 0:
            raise ValueError("retain must be >= 0")
        self.dtype = np.dtype(dtype) if dtype is not None else None
        self.version = version
        self.source = source
        #: keep-last-N archive of verified outgoing snapshots (oldest first)
        self._history: collections.deque = collections.deque(maxlen=retain)
        self._set_matrices(user_matrix, item_matrix)

    def _set_matrices(self, user_matrix, item_matrix) -> None:
        user_matrix = np.asarray(user_matrix)
        item_matrix = np.asarray(item_matrix)
        if self.dtype is not None:
            user_matrix = user_matrix.astype(self.dtype, copy=False)
            item_matrix = item_matrix.astype(self.dtype, copy=False)
        self.user_matrix = user_matrix
        self.item_matrix = item_matrix
        # content fingerprint recorded at snapshot build: sha256 over both
        # tables' dtype/shape/bytes, the integrity anchor for cross-process
        # assembly (from_shards) and checkpoint reload round-trips
        self.content_hash = array_sha256(user_matrix, item_matrix)
        self._backend: MatrixBackend | None = None
        # ANN indexes are built over the item matrix, so every snapshot
        # refresh (engine version bump) invalidates them; they rebuild
        # lazily on the next ann_index call
        self._ann_indexes: dict[tuple, object] = {}

    # ------------------------------------------------------------------
    @classmethod
    def snapshot(cls, model, dtype="float32",
                 retain: int = 2) -> "EmbeddingStore | None":
        """Snapshot a model's serving embeddings; ``None`` if it has none.

        Models without a factored form (``serving_embeddings()`` returning
        ``None``) cannot be snapshotted — serving falls back to brute-force
        scoring through the model itself.
        """
        provider = getattr(model, "serving_embeddings", None)
        embeddings = provider() if callable(provider) else None
        if embeddings is None:
            return None
        user_matrix, item_matrix = embeddings
        return cls(user_matrix, item_matrix, version=model_version(model),
                   dtype=dtype, source=getattr(model, "name", "unknown"),
                   retain=retain)

    @classmethod
    def from_shards(cls, user_shards, item_shards, *,
                    user_spec=None, item_spec=None, version: int | None = None,
                    dtype="float32", source: str = "sharded",
                    expected_hash: str | None = None) -> "EmbeddingStore":
        """Assemble one serving snapshot from shard-local embedding tables.

        The parameter-server serving path: each shard owns a row partition
        of the user/item tables (``repro.shard.ShardedEmbedding``, or the
        per-shard matrices pulled from K servers), and the snapshot stitches
        them back into the dense matrices the blocked top-K retriever
        wants. Assembly is an exact row scatter, so a snapshot taken from
        sharded tables is bit-identical (before the serving-dtype cast) to
        one taken from the unsharded table.

        Parameters
        ----------
        user_shards, item_shards:
            Either a :class:`~repro.shard.ShardedEmbedding` or a list of
            per-shard row blocks (``shard_rows`` order).
        user_spec, item_spec:
            The :class:`~repro.shard.ShardSpec` describing each partition;
            required with raw block lists, ignored when a
            ``ShardedEmbedding`` is passed (it knows its own spec).
        expected_hash:
            Content fingerprint the assembled snapshot must match
            (``content_hash`` of the snapshot the shards came from).
            Guards the cross-process assembly path: a dropped, reordered,
            or truncated shard block raises
            :class:`SnapshotIntegrityError` instead of silently serving a
            scrambled table.
        """
        def assemble(shards, spec) -> np.ndarray:
            if hasattr(shards, "dense_table"):  # ShardedEmbedding
                return shards.dense_table()
            if spec is None:
                raise ValueError("raw shard blocks need an explicit spec")
            return spec.assemble(list(shards))

        store = cls(assemble(user_shards, user_spec),
                    assemble(item_shards, item_spec),
                    version=version, dtype=dtype, source=source)
        if expected_hash is not None:
            store.verify(expected_hash)
        return store

    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        return self.user_matrix.shape[0]

    @property
    def num_items(self) -> int:
        return self.item_matrix.shape[0]

    @property
    def dim(self) -> int:
        return self.user_matrix.shape[1]

    def backend(self) -> MatrixBackend:
        """The (cached) blocked-matmul backend over this snapshot."""
        if self._backend is None:
            self._backend = MatrixBackend(self.user_matrix, self.item_matrix)
        return self._backend

    def ann_index(self, *, num_lists: int | None = None, quant: str = "none",
                  seed: int = 0):
        """The (cached) IVF index over this snapshot's item matrix.

        Index builds are tied to the snapshot lifecycle: one index per
        ``(num_lists, quant, seed)`` configuration is kept until the
        snapshot's tables change (a :meth:`refresh` after an engine
        version bump), at which point the cache is dropped and the next
        call rebuilds against the new item matrix. K-means is seeded, so
        an identical snapshot + configuration always yields an identical
        index.
        """
        from repro.serve.ann import IVFIndex

        key = (num_lists, quant, seed)
        index = self._ann_indexes.get(key)
        if index is None:
            index = IVFIndex(self.item_matrix, num_lists=num_lists,
                             quant=quant, seed=seed)
            self._ann_indexes[key] = index
        return index

    def score(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Pairwise snapshot scores for parallel (user, item) arrays."""
        return self.backend().score_pairs(users, items)

    def verify(self, expected_hash: str | None = None) -> str:
        """Re-hash the tables and check them against a fingerprint.

        With ``expected_hash`` the recomputed hash must match it (the
        cross-process / checkpoint-reload integrity check); without one it
        must match the hash recorded when the snapshot was built, which
        catches in-place mutation of a supposedly frozen snapshot. Returns
        the recomputed hash; raises :class:`SnapshotIntegrityError` on any
        mismatch.
        """
        actual = array_sha256(self.user_matrix, self.item_matrix)
        expected = self.content_hash if expected_hash is None else expected_hash
        if actual != expected:
            raise SnapshotIntegrityError(
                f"snapshot content hash {actual[:16]}… does not match the "
                f"expected fingerprint {expected[:16]}… (source="
                f"{self.source!r}, version={self.version})")
        return actual

    # ------------------------------------------------------------------
    def is_stale(self, model) -> bool:
        """Whether the model has trained past this snapshot.

        True when the model's engine version moved beyond the one the
        snapshot was taken at. Version-less models are never *observably*
        stale — refresh them explicitly after training.
        """
        current = model_version(model)
        if current is None or self.version is None:
            return False
        return current != self.version

    def refresh(self, model, force: bool = False,
                expected_hash: str | None = None) -> bool:
        """Re-snapshot from the model if stale (or ``force``d).

        Every transition is hash-verified on both sides: the *outgoing*
        tables must still match the fingerprint recorded when they were
        built (a mutated supposedly-frozen snapshot raises
        :class:`SnapshotIntegrityError` instead of getting archived as
        "good"), and with ``expected_hash`` the *incoming* tables must
        match the producer's fingerprint — on mismatch the outgoing
        snapshot is put back and the error raised, so a corrupt rebuild
        never serves. The verified outgoing snapshot lands on the
        keep-last-N archive for :meth:`rollback`.

        Returns ``True`` when the tables were actually rebuilt.
        """
        if not force and not self.is_stale(model):
            return False
        self.verify()  # never archive (or discard) corrupt tables silently
        embeddings = model.serving_embeddings()
        if embeddings is None:
            raise ValueError(
                f"model {getattr(model, 'name', model)!r} no longer exposes "
                "serving embeddings")
        self._archive_current()
        self._set_matrices(*embeddings)
        if expected_hash is not None:
            try:
                self.verify(expected_hash)
            except SnapshotIntegrityError:
                if self._history:
                    self.rollback()
                raise
        self.version = model_version(model)
        return True

    # ------------------------------------------------------------------
    # retention + rollback
    # ------------------------------------------------------------------
    def _archive_current(self) -> None:
        """Push the current (verified) tables onto the keep-last-N archive."""
        if self._history.maxlen == 0:
            return
        self._history.append({
            "version": self.version,
            "user_matrix": self.user_matrix,
            "item_matrix": self.item_matrix,
            "content_hash": self.content_hash,
            "source": self.source,
        })

    def history_versions(self) -> list[int | None]:
        """Versions available to :meth:`rollback`, oldest first."""
        return [record["version"] for record in self._history]

    def rollback(self, version: int | None = None) -> int | None:
        """Restore an archived snapshot (the newest one by default).

        ``version`` picks a specific archived engine version; everything
        archived after it is discarded (rolling back past a snapshot
        abandons it). The restored tables are re-hashed against the
        fingerprint recorded at archive time — an archive that rotted in
        memory raises :class:`SnapshotIntegrityError` rather than serving
        silently wrong scores. Returns the restored version.
        """
        if version is not None and not any(
                record["version"] == version for record in self._history):
            raise ValueError(
                f"no archived snapshot with version {version}; available: "
                f"{self.history_versions()}")
        record = None
        while self._history:
            record = self._history.pop()
            if version is None or record["version"] == version:
                break
        if record is None:
            raise ValueError("no archived snapshot to roll back to "
                             "(retain=0, or no refresh has happened yet)")
        self._set_matrices(record["user_matrix"], record["item_matrix"])
        self.verify(record["content_hash"])
        self.version = record["version"]
        self.source = record["source"]
        return self.version

"""Batched top-K retrieval against the full item catalog.

The serving hot path is a blocked matrix product: a block of user vectors
against the whole item table, top-K selected per row with
``np.argpartition`` (O(J) per user instead of the O(J log J) full sort),
already-seen items suppressed through a CSR exclusion mask before
selection. Everything here is duck-typed on numpy arrays — no model or
dataset imports — so the layer sits below ``repro.models`` and
``repro.eval`` without cycles.

Two scoring backends feed the retriever:

* :class:`MatrixBackend` — factored models (GNMR, NGCF) whose preference
  score is an inner product of serving embeddings; one BLAS call scores a
  user block against the entire catalog.
* :class:`ScorerBackend` — brute-force fallback for models that only
  expose pairwise ``score(users, items)``; the retriever semantics are
  identical, only throughput differs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp


@dataclass
class TopKResult:
    """Top-K recommendations for a batch of users.

    Attributes
    ----------
    users:
        (U,) requested user ids.
    items:
        (U, k) recommended item ids, best first; ``-1`` pads rows with
        fewer than k recommendable items (catalog exhausted by exclusions).
    scores:
        (U, k) preference scores aligned with ``items``; ``-inf`` on pads.
    """

    users: np.ndarray
    items: np.ndarray
    scores: np.ndarray

    @property
    def k(self) -> int:
        return self.items.shape[1]

    def __len__(self) -> int:
        return len(self.users)

    def as_lists(self) -> list[list[tuple[int, float]]]:
        """Per-user ``[(item, score), ...]`` lists with padding dropped."""
        out: list[list[tuple[int, float]]] = []
        for row_items, row_scores in zip(self.items, self.scores):
            valid = row_items >= 0
            out.append([(int(i), float(s))
                        for i, s in zip(row_items[valid], row_scores[valid])])
        return out

    def to_payload(self) -> list[dict]:
        """JSON-serializable structure (the CLI ``recommend`` output)."""
        return [
            {"user": int(user),
             "items": [{"item": item, "score": score} for item, score in row]}
            for user, row in zip(self.users, self.as_lists())
        ]


class MatrixBackend:
    """Full-catalog scoring as one blocked matmul over serving embeddings.

    ``score_block(users)`` returns ``user_matrix[users] @ item_matrix.T``
    — exact for any model whose score is an inner product of (possibly
    concatenated multi-order) embeddings.

    Parameters
    ----------
    user_matrix, item_matrix:
        (U, D) and (J, D) serving embedding tables.
    dtype:
        Cast both tables (``None`` keeps their native precision; float32
        halves the bandwidth of the matmul and is the serving default
        upstream in :class:`~repro.serve.store.EmbeddingStore`).
    """

    #: retrievers may pass ``out=`` to ``score_block`` to reuse a scratch
    #: buffer across blocks instead of allocating one per call
    supports_out = True

    def __init__(self, user_matrix: np.ndarray, item_matrix: np.ndarray,
                 dtype=None):
        user_matrix = np.asarray(user_matrix)
        item_matrix = np.asarray(item_matrix)
        if user_matrix.ndim != 2 or item_matrix.ndim != 2:
            raise ValueError("serving embeddings must be 2-D matrices")
        if user_matrix.shape[1] != item_matrix.shape[1]:
            raise ValueError(
                f"embedding dims differ: users {user_matrix.shape[1]} vs "
                f"items {item_matrix.shape[1]}")
        if dtype is not None:
            user_matrix = user_matrix.astype(dtype, copy=False)
            item_matrix = item_matrix.astype(dtype, copy=False)
        self.user_matrix = user_matrix
        # keep the transposed catalog contiguous so every block matmul hits
        # the fast GEMM path instead of a strided fallback
        self._item_t = np.ascontiguousarray(item_matrix.T)

    @property
    def num_users(self) -> int:
        return self.user_matrix.shape[0]

    @property
    def num_items(self) -> int:
        return self._item_t.shape[1]

    @property
    def dim(self) -> int:
        return self.user_matrix.shape[1]

    @property
    def item_matrix(self) -> np.ndarray:
        """(J, D) catalog view — what the ANN index is built over."""
        return self._item_t.T

    @property
    def scores_dtype(self) -> np.dtype:
        """Dtype ``score_block`` produces (what an ``out`` buffer needs)."""
        return np.result_type(self.user_matrix, self._item_t)

    def score_block(self, users: np.ndarray,
                    out: np.ndarray | None = None) -> np.ndarray:
        """Scores of a user block against the full catalog: (B, J)."""
        users = np.asarray(users, dtype=np.int64)
        if out is not None:
            return np.dot(self.user_matrix[users], self._item_t, out=out)
        return self.user_matrix[users] @ self._item_t

    def score_pairs(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Pairwise scores for parallel (user, item) index arrays."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        return np.einsum("bd,bd->b", self.user_matrix[users],
                         self._item_t.T[items])


class ScorerBackend:
    """Brute-force catalog scoring through a pairwise ``score`` method.

    The universal fallback: any :class:`~repro.models.base.Recommender`
    (or eval-protocol ``Scorer``) works, at O(B·J) pair construction cost
    per block.
    """

    def __init__(self, model, num_items: int | None = None):
        self.model = model
        if num_items is None:
            num_items = getattr(model, "num_items", None)
        if num_items is None:
            raise ValueError("num_items required for models without a "
                             "num_items attribute")
        self.num_items = int(num_items)
        self._all_items = np.arange(self.num_items, dtype=np.int64)

    @property
    def num_users(self) -> int:
        return int(getattr(self.model, "num_users", 0))

    def score_block(self, users: np.ndarray) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        flat_users = np.repeat(users, self.num_items)
        flat_items = np.tile(self._all_items, users.size)
        scores = np.asarray(self.model.score(flat_users, flat_items))
        return scores.reshape(users.size, self.num_items)

    def score_pairs(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        return np.asarray(self.model.score(np.asarray(users, dtype=np.int64),
                                           np.asarray(items, dtype=np.int64)))


def backend_for(model, dtype=None, num_items: int | None = None):
    """Best scoring backend for a model: factored if it serves embeddings.

    Models exposing ``serving_embeddings()`` (GNMR, NGCF) get the blocked
    matmul; everything else falls back to brute-force pairwise scoring
    (``num_items`` covers bare scorers without a ``num_items`` attribute).
    """
    provider = getattr(model, "serving_embeddings", None)
    embeddings = provider() if callable(provider) else None
    if embeddings is None:
        return ScorerBackend(model, num_items=num_items)
    return MatrixBackend(*embeddings, dtype=dtype)


class ExclusionMask:
    """Per-user sets of non-recommendable items, stored as one CSR matrix.

    ``apply`` stamps ``-inf`` over the excluded entries of a score block
    in one vectorized pass — no per-user Python loop, which is what makes
    full-catalog retrieval and evaluation scale past toy sizes.
    """

    def __init__(self, matrix: sp.spmatrix):
        matrix = matrix.tocsr()
        matrix.sum_duplicates()
        self._indptr = matrix.indptr
        self._indices = matrix.indices.astype(np.int64, copy=False)
        self.shape = matrix.shape

    @classmethod
    def from_pairs(cls, users: np.ndarray, items: np.ndarray,
                   num_users: int, num_items: int) -> "ExclusionMask":
        """Mask from parallel (user, item) arrays of seen interactions."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        matrix = sp.csr_matrix(
            (np.ones(users.size, dtype=np.int8), (users, items)),
            shape=(num_users, num_items))
        return cls(matrix)

    @classmethod
    def from_dataset(cls, dataset, behaviors: str = "target") -> "ExclusionMask":
        """Mask of every item each user already interacted with.

        Parameters
        ----------
        dataset:
            Anything with the :class:`~repro.data.dataset.InteractionDataset`
            surface (``arrays``, ``behavior_names``, ``target_behavior``).
        behaviors:
            ``"target"`` — only target-behavior positives (matches the
            evaluation protocol); ``"all"`` — any interaction of any type
            (the conservative serving default for user-facing feeds); or an
            explicit iterable of behavior names.
        """
        if behaviors == "target":
            names = (dataset.target_behavior,)
        elif behaviors == "all":
            names = tuple(dataset.behavior_names)
        else:
            names = tuple(behaviors)
        user_parts: list[np.ndarray] = []
        item_parts: list[np.ndarray] = []
        for name in names:
            users, items, _ = dataset.arrays(name)
            user_parts.append(users)
            item_parts.append(items)
        return cls.from_pairs(np.concatenate(user_parts) if user_parts else np.array([], dtype=np.int64),
                              np.concatenate(item_parts) if item_parts else np.array([], dtype=np.int64),
                              dataset.num_users, dataset.num_items)

    def items_for(self, user: int) -> np.ndarray:
        """Excluded item ids of one user (sorted)."""
        return self._indices[self._indptr[user]:self._indptr[user + 1]]

    def counts(self, users: np.ndarray) -> np.ndarray:
        """Number of excluded items per requested user."""
        users = np.asarray(users, dtype=np.int64)
        return self._indptr[users + 1] - self._indptr[users]

    def gather(self, users: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Excluded columns of a user batch: ``(counts, cols)``.

        ``cols`` concatenates each user's excluded item ids in request
        order (ascending within a user — CSR column order); ``counts``
        says where each user's segment ends. Retrievers call this once
        per request and slice per scoring block, so the CSR range
        arithmetic is not re-derived inside the scoring loop.
        """
        users = np.asarray(users, dtype=np.int64)
        starts = self._indptr[users].astype(np.int64, copy=False)
        counts = (self._indptr[users + 1] - self._indptr[users]).astype(
            np.int64, copy=False)
        total = int(counts.sum())
        if total == 0:
            return counts, np.empty(0, dtype=np.int64)
        # flat positions [start_0..start_0+c_0) ∪ [start_1..) ∪ …
        offsets = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])),
                            counts)
        cols = self._indices[np.arange(total) + offsets]
        return counts, cols

    @staticmethod
    def stamp(scores: np.ndarray, counts: np.ndarray,
              cols: np.ndarray) -> np.ndarray:
        """Stamp ``-inf`` over pre-gathered ``(counts, cols)`` rows of a block."""
        if cols.size:
            rows = np.repeat(np.arange(counts.size), counts)
            scores[rows, cols] = -np.inf
        return scores

    def apply(self, users: np.ndarray, scores: np.ndarray) -> np.ndarray:
        """Stamp ``-inf`` on the excluded entries of ``scores`` in place.

        ``scores`` is the (B, J) block for ``users``. One-shot
        convenience over :meth:`gather` + :meth:`stamp`; blocked loops
        should gather once per request instead.
        """
        counts, cols = self.gather(users)
        return self.stamp(scores, counts, cols)


class TopKRetriever:
    """Vectorized blocked top-K retrieval over a scoring backend.

    Parameters
    ----------
    backend:
        :class:`MatrixBackend` / :class:`ScorerBackend` (anything with
        ``score_block`` and ``num_items``).
    exclude:
        Optional :class:`ExclusionMask` of already-seen items.
    batch_users:
        Upper bound on users scored per block — bounds peak memory at
        ``batch_users × num_items`` floats.

    Notes
    -----
    Scoring and selection run in the backend's native floating dtype and
    only the selected top-k is cast to float64; the cast is exact for
    every narrower float, so the ranking is identical to ranking the
    float64-cast block (what earlier versions did) at half the memory
    traffic. Matrix backends are additionally processed in
    cache-sized row chunks (``SELECT_CHUNK_BYTES`` of scores at a time,
    never more than ``batch_users``) through one reused scratch buffer:
    the selection passes over a block re-read it entirely, so keeping the
    block resident in cache is worth more than large-block GEMM — without
    the chunking, throughput *drops* as ``batch_users`` grows.

    Selection uses ``argpartition`` then orders the selected candidates by
    ``(-score, item id)``, so the returned ranking is deterministic; among
    exactly tied scores at the selection boundary the partition picks an
    arbitrary (but reproducible) subset.
    """

    #: score-block working set targeted by the internal chunking; ~a few
    #: MiB keeps the block in L2/L3 across the exclusion + selection passes
    SELECT_CHUNK_BYTES = 4 * 1024 * 1024

    def __init__(self, backend, exclude: ExclusionMask | None = None,
                 batch_users: int = 256):
        if batch_users <= 0:
            raise ValueError("batch_users must be positive")
        self.backend = backend
        self.exclude = exclude
        self.batch_users = int(batch_users)

    def _chunk_rows(self, num_items: int) -> tuple[int, np.ndarray | None]:
        """Rows per scoring chunk, plus a reusable scratch buffer."""
        if not getattr(self.backend, "supports_out", False):
            return self.batch_users, None
        dtype = np.dtype(self.backend.scores_dtype)
        if not np.issubdtype(dtype, np.floating):
            return self.batch_users, None
        budget = self.SELECT_CHUNK_BYTES // max(num_items * dtype.itemsize, 1)
        chunk = min(self.batch_users, max(16, int(budget)))
        return chunk, np.empty((chunk, num_items), dtype=dtype)

    def retrieve(self, users: np.ndarray, k: int) -> TopKResult:
        """Top-``k`` items per user, seen items excluded."""
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        if k <= 0:
            raise ValueError("k must be positive")
        num_items = self.backend.num_items
        k_eff = min(int(k), num_items)
        items = np.full((users.size, k_eff), -1, dtype=np.int64)
        scores = np.full((users.size, k_eff), -np.inf, dtype=np.float64)
        if self.exclude is not None:
            excl_counts, excl_cols = self.exclude.gather(users)
            excl_bounds = np.concatenate(([0], np.cumsum(excl_counts)))
        chunk, scratch = self._chunk_rows(num_items)
        for start in range(0, users.size, chunk):
            stop = min(start + chunk, users.size)
            block = users[start:stop]
            if scratch is not None:
                block_scores = self.backend.score_block(
                    block, out=scratch[:stop - start])
            else:
                block_scores = np.asarray(self.backend.score_block(block))
                if not np.issubdtype(block_scores.dtype, np.floating):
                    block_scores = block_scores.astype(np.float64)
            if self.exclude is not None:
                ExclusionMask.stamp(
                    block_scores, excl_counts[start:stop],
                    excl_cols[excl_bounds[start]:excl_bounds[stop]])
            top_items, top_scores = self._select(block_scores, k_eff)
            items[start:stop] = top_items
            scores[start:stop] = top_scores
        return TopKResult(users=users, items=items, scores=scores)

    @staticmethod
    def _select(block_scores: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-row top-k of a (B, J) block: ids best-first, -1 padding."""
        num_items = block_scores.shape[1]
        if k < num_items:
            part = np.argpartition(block_scores, num_items - k, axis=1)[:, -k:]
        else:
            part = np.broadcast_to(np.arange(num_items),
                                   block_scores.shape).copy()
        # ascending item ids first, then a stable sort on -score → ties
        # resolve to the lowest item id, matching a stable full argsort
        part.sort(axis=1)
        picked = np.take_along_axis(block_scores, part, axis=1)
        order = np.argsort(-picked, axis=1, kind="stable")
        top_items = np.take_along_axis(part, order, axis=1)
        top_scores = np.take_along_axis(picked, order, axis=1)
        # entries that remained -inf are exclusions/padding, not items
        top_items[~np.isfinite(top_scores)] = -1
        return top_items, top_scores

"""Training harness: generic pairwise trainer, seeding, callbacks."""

from repro.train.seed import seeded_rng, spawn_rngs
from repro.train.trainer import Trainer, TrainConfig, EpochLog
from repro.train.pipeline import SampledBatchPipeline, PreparedBatch
from repro.train.callbacks import EarlyStopping, HistoryRecorder

__all__ = [
    "seeded_rng",
    "spawn_rngs",
    "Trainer",
    "TrainConfig",
    "EpochLog",
    "SampledBatchPipeline",
    "PreparedBatch",
    "EarlyStopping",
    "HistoryRecorder",
]

"""Training callbacks: early stopping and history recording."""

from __future__ import annotations

from dataclasses import dataclass, field


class EarlyStopping:
    """Stop when a monitored metric hasn't improved for ``patience`` checks.

    ``mode='max'`` for HR/NDCG, ``'min'`` for losses. Tracks the best value
    seen so the caller can restore the corresponding snapshot if desired.
    """

    def __init__(self, patience: int = 5, mode: str = "max", min_delta: float = 0.0):
        if mode not in ("max", "min"):
            raise ValueError("mode must be 'max' or 'min'")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.mode = mode
        self.min_delta = min_delta
        self.best: float | None = None
        self.best_step: int = -1
        self._bad_checks = 0
        self._step = 0

    def update(self, value: float) -> bool:
        """Record a metric value; return True if training should stop."""
        improved = (
            self.best is None
            or (self.mode == "max" and value > self.best + self.min_delta)
            or (self.mode == "min" and value < self.best - self.min_delta)
        )
        if improved:
            self.best = value
            self.best_step = self._step
            self._bad_checks = 0
        else:
            self._bad_checks += 1
        self._step += 1
        return self._bad_checks >= self.patience


@dataclass
class HistoryRecorder:
    """Accumulates per-epoch dictionaries of scalars."""

    rows: list[dict[str, float]] = field(default_factory=list)

    def record(self, **values: float) -> None:
        self.rows.append(dict(values))

    def series(self, key: str) -> list[float]:
        return [row[key] for row in self.rows if key in row]

    def last(self) -> dict[str, float]:
        return self.rows[-1] if self.rows else {}

    def __len__(self) -> int:
        return len(self.rows)

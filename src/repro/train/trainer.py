"""Generic pairwise trainer implementing Algorithm 1 of the paper.

Each epoch: sample seed users, draw S positives and S negatives per user,
score both sides, apply the margin loss of Eq. (7) plus λ‖Θ‖², and update
with Adam under an exponential learning-rate decay (rate 0.96).

Three propagation modes (``TrainConfig.propagation``):

* ``"full"`` — every step propagates over the whole graph and regularizes
  every parameter; float64 runs are bit-reproducible with the seed goldens.
* ``"sampled"`` — graph models score through
  ``model.sampled_batch_scores`` (fanout-capped L-hop monolithic subgraph,
  row-sparse embedding gradients) and regularize batch-locally via
  ``model.l2_batch`` (λ‖Θ_batch‖²); the optimizer applies lazy per-row
  updates, so the step cost scales with batch size and fanout instead of
  graph size.
* ``"async"`` — the pipelined path (:mod:`repro.train.pipeline`): batches
  come from a pre-drawn deterministic stream, background workers extract
  per-hop *layered* blocks (each layer computes only the rows the next one
  needs — see :mod:`repro.graph.layered`) double-buffered ahead of the
  optimizer, and the model scores through ``block_batch_scores``. Same
  estimator family as ``"sampled"``, materially faster per step, and
  bit-reproducible across any worker count (extraction rngs are split
  per step, not per worker).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.graph.sampling import NegativeSampler, sample_pairwise_batch
from repro.graph.subgraph import validate_fanout
from repro.nn.losses import bpr_loss, l2_regularization, pairwise_hinge_loss
from repro.nn.optim import SGD, Adam, clip_grad_norm, shard_param_groups
from repro.nn.schedulers import ExponentialDecay
from repro.train.callbacks import EarlyStopping, HistoryRecorder
from repro.train.pipeline import SampledBatchPipeline


@dataclass
class TrainConfig:
    """Hyperparameters of the pairwise training loop.

    Defaults follow the paper: Adam, lr 1e-3, decay 0.96, batch size 32
    (seed users per step), margin hinge loss.

    >>> config = TrainConfig(epochs=2, propagation="async", fanout=(10, 5))
    >>> config.fanout
    (10, 5)
    >>> TrainConfig(fanout=0)
    Traceback (most recent call last):
        ...
    ValueError: fanout value must be >= 1 (or None for no cap), got 0
    """

    epochs: int = 30
    steps_per_epoch: int = 20
    batch_users: int = 32
    per_user: int = 4           # S in the paper's Algorithm 1
    lr: float = 1e-3
    lr_decay: float = 0.96
    l2_weight: float = 1e-4
    loss: str = "hinge"          # "hinge" (paper Eq. 7) or "bpr"
    margin: float = 1.0
    seed: int = 0
    early_stopping_patience: int | None = None
    verbose: bool = False
    #: compute precision for the training loop ("float32"/"float64");
    #: ``None`` keeps the ambient tensor default dtype
    dtype: str | None = None
    #: "full" propagates over the whole graph each step (bit-reproducible
    #: reference); "sampled" runs the fanout-capped subgraph path with
    #: row-sparse gradients; "async" adds the double-buffered prefetch
    #: pipeline over per-hop layered blocks (see the module docstring)
    propagation: str = "full"
    #: neighbors sampled per (node, behavior) per hop on the sampled/async
    #: paths: an ``int`` for every hop, ``None`` for no cap, or a per-hop
    #: schedule such as ``(10, 5)`` — first hop away from the seeds first.
    #: The default ``"model"`` defers to the model's own configured
    #: schedule (e.g. ``GNMRConfig.fanout``, itself defaulting to 10);
    #: setting anything else here overrides the model for this run
    fanout: int | None | tuple[int | None, ...] | str = "model"
    #: background extraction threads for ``propagation="async"``; ``0``
    #: runs the same pipeline inline. Extraction rngs are split per *step*,
    #: so training traces are bit-reproducible across any worker count —
    #: workers only changes how much extraction overlaps compute
    workers: int = 1
    #: per-worker block buffer depth for the async pipeline; 2 =
    #: double-buffering (one block consumed, one ready, one in flight)
    prefetch_depth: int = 2
    #: global-norm gradient clipping threshold (``None`` → no clipping);
    #: sparse-grad aware — row-sparse grads are scaled without densifying
    grad_clip: float | None = None
    #: optimizer family: "adam" (the paper's choice, default) or "sgd" —
    #: the latter is the reference for the sharded-table bit-parity
    #: contract (`shards=K` must match `shards=1` exactly under SGD)
    optimizer: str = "adam"
    #: build the optimizer from per-shard parameter groups
    #: (:func:`repro.nn.optim.shard_param_groups`) instead of the flat
    #: parameter list. Updates are bit-identical; the groups make
    #: optimizer state attributable per shard and enable per-shard
    #: ``step(shard=k)`` application. Set this when training a model built
    #: with sharded tables (``GNMRConfig.shards`` / model ``shards=``)
    shards: int | None = None
    #: run ``eval_fn`` every this many epochs (the final epoch always
    #: evaluates so the history ends with a metric)
    eval_every: int = 1
    #: multi-process parameter-server mode (:mod:`repro.dist`): "off"
    #: keeps every optimizer step in-process; "sync" ships shard
    #: gradients to owner processes and barriers each step (bit-matches
    #: in-process ``shards=K`` training); "async" lets the trainer run
    #: ahead of the owners by ``dist_staleness`` steps (stale-push mode —
    #: faster, nondeterministic). Requires ``shards``
    dist: str = "off"
    #: shard-owner process count for dist modes (default: one per shard)
    dist_workers: int | None = None
    #: bounded staleness window for ``dist="async"``: how many steps the
    #: trainer may lead the slowest shard owner. ``0`` degenerates to the
    #: synchronous barrier
    dist_staleness: int = 2
    #: gradient transport for dist modes: "shm" (shared-memory rings,
    #: default), "pipe" (socket/pipe fallback), or "inline" (owners run
    #: in-process through the full wire codec — tests/fallback)
    dist_transport: str = "shm"
    #: path of the training-state file (:mod:`repro.train.resume`) this run
    #: maintains: written atomically every ``save_every_steps`` steps and
    #: once more at the end of the run. ``Trainer.run(resume_from=...)``
    #: continues from such a file bit-exactly
    save_state: str | None = None
    #: mid-epoch save cadence in global steps (``None`` → only the
    #: end-of-run save); requires ``save_state``
    save_every_steps: int | None = None

    def __post_init__(self):
        if self.fanout != "model":
            validate_fanout(self.fanout)
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError(f"unknown optimizer {self.optimizer!r} "
                             "(use 'adam' or 'sgd')")
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be >= 1 (or None)")
        if self.dist not in ("off", "sync", "async"):
            raise ValueError(f"unknown dist mode {self.dist!r} "
                             "(use 'off', 'sync' or 'async')")
        if self.dist != "off":
            if self.shards is None:
                raise ValueError("dist training requires shards "
                                 "(the parameter-server partition)")
            if self.dist_transport not in ("shm", "pipe", "inline"):
                raise ValueError(
                    f"unknown dist transport {self.dist_transport!r} "
                    "(use 'shm', 'pipe' or 'inline')")
            if self.dist_workers is not None and self.dist_workers < 1:
                raise ValueError("dist_workers must be >= 1 (or None)")
            if self.dist_staleness < 0:
                raise ValueError("dist_staleness must be >= 0")
        if self.save_every_steps is not None:
            if self.save_every_steps < 1:
                raise ValueError("save_every_steps must be >= 1 (or None)")
            if self.save_state is None:
                raise ValueError("save_every_steps requires save_state "
                                 "(where would the state go?)")

    def fanout_kwargs(self) -> dict:
        """``{"fanout": ...}`` for the model calls, or ``{}`` to defer.

        ``fanout="model"`` omits the keyword entirely so each model's own
        default applies (``GNMRConfig.fanout`` for GNMR; 10 otherwise).
        """
        return {} if self.fanout == "model" else {"fanout": self.fanout}


@dataclass
class EpochLog:
    """Scalars logged once per epoch."""

    epoch: int
    loss: float
    lr: float
    metric: float | None = None


_LOSSES: dict[str, Callable] = {
    "hinge": lambda pos, neg, margin: pairwise_hinge_loss(pos, neg, margin=margin),
    "bpr": lambda pos, neg, margin: bpr_loss(pos, neg),
}


class Trainer:
    """Drives pairwise training of any model exposing ``batch_scores``.

    The model contract (see :class:`repro.models.base.Recommender`):

    * ``parameters()`` — trainable parameters,
    * ``batch_scores(users, pos_items, neg_items)`` — differentiable
      (pos_scores, neg_scores) tensors,
    * ``sampled_batch_scores(...)`` / ``l2_batch(...)`` — the sampled-mode
      pair (the :class:`~repro.models.base.Recommender` base provides
      brute-force fallbacks),
    * ``extract_block(...)`` / ``block_batch_scores(...)`` — the async-mode
      pair: parameter-free block extraction the pipeline can prefetch on a
      worker thread, and scoring over the prefetched block (base fallback:
      ``None`` block + dense scoring, so every model trains in async mode),
    * ``train()`` / ``eval()`` — mode switching,
    * ``on_step_end()`` — optional cache-invalidation hook.

    >>> from repro.data import taobao_like
    >>> from repro.models import BiasMF
    >>> data = taobao_like(num_users=30, num_items=60, seed=0)
    >>> model = BiasMF(data.num_users, data.num_items, seed=0)
    >>> config = TrainConfig(epochs=2, steps_per_epoch=2, batch_users=4,
    ...                      per_user=2, seed=0)
    >>> history = Trainer(model, data, config).run()
    >>> [sorted(row) for row in history.rows]
    [['epoch', 'loss', 'lr'], ['epoch', 'loss', 'lr']]
    """

    def __init__(self, model, train_data: InteractionDataset, config: TrainConfig,
                 eval_fn: Callable[[], float] | None = None,
                 step_hook: Callable[["Trainer", int], None] | None = None):
        if config.loss not in _LOSSES:
            raise ValueError(f"unknown loss {config.loss!r}")
        if config.propagation not in ("full", "sampled", "async"):
            raise ValueError(f"unknown propagation mode {config.propagation!r} "
                             "(use 'full', 'sampled' or 'async')")
        if config.eval_every < 1:
            raise ValueError("eval_every must be >= 1")
        if config.fanout != "model":
            validate_fanout(config.fanout)
        if config.workers < 0:
            raise ValueError("workers must be >= 0")
        if config.prefetch_depth < 1:
            raise ValueError("prefetch_depth must be >= 1")
        self.model = model
        self.data = train_data
        self.config = config
        self.eval_fn = eval_fn
        #: called as ``step_hook(trainer, global_step)`` after every loop
        #: iteration — the fault-injection substrate's crash point, also
        #: handy for external progress reporting
        self.step_hook = step_hook
        self.history = HistoryRecorder()
        self._rng = np.random.default_rng(config.seed)
        self._graph = train_data.graph()
        self._sampler = NegativeSampler(self._graph, train_data.target_behavior)
        degrees = self._graph.user_degree(train_data.target_behavior)
        self._eligible = np.flatnonzero(degrees > 0)

    def run(self, resume_from: str | None = None) -> HistoryRecorder:
        """Train for the configured epochs; returns the history.

        ``resume_from`` names a training-state file written by a previous
        run with ``TrainConfig.save_state`` set; training continues from
        its exact cursor (epoch, step, rng streams, optimizer clocks) —
        the combined history is bit-identical to one uninterrupted run.
        The resuming config must match the saved one on every field that
        shapes the training stream (``epochs`` may grow).
        """
        from repro.tensor import default_dtype

        with default_dtype(self.config.dtype):  # None → ambient default
            return self._run_loop(resume_from)

    def _make_pipeline(self, start_step: int = 0) -> SampledBatchPipeline:
        """The async mode's prefetcher over the whole run's step budget."""
        cfg = self.config

        def draw(rng: np.random.Generator):
            return sample_pairwise_batch(
                self._graph, self.data.target_behavior, self._sampler,
                cfg.batch_users, cfg.per_user, rng,
                eligible_users=self._eligible)

        def extract(batch, rng: np.random.Generator):
            return self.model.extract_block(
                batch.users, batch.pos_items, batch.neg_items,
                rng=rng, **cfg.fanout_kwargs())

        return SampledBatchPipeline(
            draw, extract, total_steps=cfg.epochs * cfg.steps_per_epoch,
            seed=cfg.seed, workers=cfg.workers, depth=cfg.prefetch_depth,
            start_step=start_step)

    def _run_loop(self, resume_from: str | None = None) -> HistoryRecorder:
        from repro.train.resume import check_resume_config, load_training_state

        cfg = self.config
        resume = None
        if resume_from is not None:
            resume = load_training_state(resume_from)
            check_resume_config(resume.config, cfg)
            if resume.global_step > cfg.epochs * cfg.steps_per_epoch:
                raise ValueError(
                    f"saved state is {resume.global_step} steps in; this "
                    f"config only trains "
                    f"{cfg.epochs * cfg.steps_per_epoch} steps")
            self.model.load_state_dict(resume.model_state)
            self._rng.bit_generator.state = resume.meta["rng_state"]
            self.history.rows = [dict(row) for row in resume.meta["history"]]
        if cfg.propagation == "async":
            pipeline = self._make_pipeline(resume.global_step if resume else 0)
            try:
                return self._run_epochs(pipeline, resume)
            finally:
                pipeline.close()
        return self._run_epochs(None, resume)

    def _step_scores(self, batch, prepared):
        """(pos, neg, reg) for one step under the configured propagation."""
        cfg = self.config
        if cfg.propagation == "full":
            pos_scores, neg_scores = self.model.batch_scores(
                batch.users, batch.pos_items, batch.neg_items)
            reg = l2_regularization(self.model.parameters(), cfg.l2_weight)
            return pos_scores, neg_scores, reg
        if cfg.propagation == "async":
            pos_scores, neg_scores = self.model.block_batch_scores(
                batch.users, batch.pos_items, batch.neg_items, prepared.block)
        else:
            pos_scores, neg_scores = self.model.sampled_batch_scores(
                batch.users, batch.pos_items, batch.neg_items,
                rng=self._rng, **cfg.fanout_kwargs())
        reg = self.model.l2_batch(
            batch.users, batch.pos_items, batch.neg_items, cfg.l2_weight)
        return pos_scores, neg_scores, reg

    def _make_optimizer(self):
        """The configured optimizer, grouped per shard when requested."""
        cfg = self.config
        params = (shard_param_groups(self.model) if cfg.shards is not None
                  else self.model.parameters())
        if cfg.optimizer == "sgd":
            return SGD(params, lr=cfg.lr)
        return Adam(params, lr=cfg.lr)

    def _param_names(self) -> dict[int, str]:
        """``id(parameter) → dotted name``, the optimizer-state key space."""
        return {id(p): name for name, p in self.model.named_parameters()}

    def _resume_states_for(self, params, optimizer_states: dict) -> list[dict]:
        """Saved per-parameter states in ``params`` order, keyed by name."""
        names = self._param_names()
        states = []
        for p in params:
            name = names.get(id(p))
            if name is None or name not in optimizer_states:
                raise ValueError(
                    f"training state has no optimizer entry for parameter "
                    f"{name or getattr(p, 'name', '?')!r} — was it saved "
                    "from a different model architecture?")
            states.append(optimizer_states[name])
        return states

    def _make_dist(self, resume=None):
        """``(bridge, local_optimizer)`` for the parameter-server modes.

        The bridge owns every shard-labeled parameter (its owner processes
        apply those updates); the local optimizer covers the unsharded
        rest, stepping in-process exactly as before. Either may be the
        scheduler's lr holder — pushes always carry the current rate.
        Resuming ships each owner its saved optimizer state at spawn.
        """
        from repro.dist import DistParameterServer

        cfg = self.config
        groups = shard_param_groups(self.model)
        shard_groups = [g for g in groups if g["shard"] is not None]
        local_params = [p for g in groups if g["shard"] is None
                        for p in g["params"]]
        if not shard_groups:
            raise ValueError(
                "dist training needs a model built with sharded tables "
                "(e.g. GNMRConfig(shards=K)) — no shard-labeled "
                "parameters found")
        initial_state = None
        if resume is not None:
            shard_params = [p for g in shard_groups for p in g["params"]]
            initial_state = self._resume_states_for(
                shard_params, resume.optimizer_states)
        bridge = DistParameterServer(
            shard_groups, optimizer=cfg.optimizer, lr=cfg.lr,
            workers=cfg.dist_workers,
            staleness=0 if cfg.dist == "sync" else cfg.dist_staleness,
            transport=cfg.dist_transport, initial_state=initial_state)
        if local_params:
            local = (SGD(local_params, lr=cfg.lr) if cfg.optimizer == "sgd"
                     else Adam(local_params, lr=cfg.lr))
        else:
            local = None
        return bridge, local

    def _run_epochs(self, pipeline: SampledBatchPipeline | None,
                    resume=None) -> HistoryRecorder:
        cfg = self.config
        if cfg.dist != "off":
            dist, optimizer = self._make_dist(resume)
            if resume is not None and optimizer is not None:
                optimizer.load_state_dict(self._resume_states_for(
                    optimizer.parameters, resume.optimizer_states))
            try:
                return self._epoch_loop(pipeline, optimizer, dist, resume)
            finally:
                dist.close()
        optimizer = self._make_optimizer()
        if resume is not None:
            optimizer.load_state_dict(self._resume_states_for(
                optimizer.parameters, resume.optimizer_states))
        return self._epoch_loop(pipeline, optimizer, None, resume)

    def _epoch_loop(self, pipeline: SampledBatchPipeline | None,
                    optimizer, dist, resume=None) -> HistoryRecorder:
        cfg = self.config
        # the scheduler mutates its holder's ``lr``; without unsharded
        # parameters the bridge itself carries the rate for the pushes
        lr_holder = optimizer if optimizer is not None else dist
        scheduler = ExponentialDecay(lr_holder, rate=cfg.lr_decay)
        stopper = (EarlyStopping(patience=cfg.early_stopping_patience)
                   if cfg.early_stopping_patience else None)
        loss_fn = _LOSSES[cfg.loss]

        start_epoch, resume_step = 0, 0
        if resume is not None:
            start_epoch, resume_step = resume.epoch, resume.step_in_epoch
            # the scheduler's lr₀ was captured at construction (above), so
            # restoring must come after: position first, then the decayed
            # rate the saved run was pushing with
            scheduler.epoch = int(resume.meta["scheduler_epoch"])
            lr_holder.lr = float(resume.meta["lr"])
            saved_stopper = resume.meta.get("stopper")
            if stopper is not None and saved_stopper is not None:
                stopper.best = saved_stopper["best"]
                stopper.best_step = int(saved_stopper["best_step"])
                stopper._bad_checks = int(saved_stopper["bad_checks"])
                stopper._step = int(saved_stopper["step"])

        epochs_completed = start_epoch
        self.model.train()
        for epoch in range(start_epoch, cfg.epochs):
            if resume is not None and epoch == start_epoch:
                # re-enter the interrupted epoch mid-flight
                epoch_loss = float(resume.meta["epoch_loss"])
                steps_done = int(resume.meta["steps_done"])
                first_step = resume_step
            else:
                epoch_loss = 0.0
                steps_done = 0
                first_step = 0
            for step_i in range(first_step, cfg.steps_per_epoch):
                if pipeline is not None:
                    prepared = next(pipeline)
                    batch = prepared.batch
                else:
                    prepared = None
                    batch = sample_pairwise_batch(
                        self._graph, self.data.target_behavior, self._sampler,
                        cfg.batch_users, cfg.per_user, self._rng,
                        eligible_users=self._eligible,
                    )
                if len(batch) > 0:
                    if dist is not None:
                        # bounded staleness: forward may only read tables the
                        # owners have caught up to within the window (0 = the
                        # synchronous barrier → bit-parity with in-process)
                        dist.throttle()
                    pos_scores, neg_scores, reg = self._step_scores(batch, prepared)
                    loss = loss_fn(pos_scores, neg_scores, cfg.margin)
                    loss = loss + reg
                    if optimizer is not None:
                        optimizer.zero_grad()
                    loss.backward()
                    if cfg.grad_clip is not None:
                        clip_grad_norm(self.model.parameters(), cfg.grad_clip)
                    if dist is not None:
                        dist.push(lr=lr_holder.lr)
                    if optimizer is not None:
                        optimizer.step()
                    if hasattr(self.model, "on_step_end"):
                        self.model.on_step_end()
                    epoch_loss += float(loss.data)
                    steps_done += 1
                # the cursor counts loop iterations (empty batches included:
                # they consumed rng draws), so a resumed stream lines up
                global_step = epoch * cfg.steps_per_epoch + step_i + 1
                if (cfg.save_state is not None
                        and cfg.save_every_steps is not None
                        and global_step % cfg.save_every_steps == 0):
                    self._save_state(optimizer, dist, scheduler, lr_holder,
                                     stopper, epoch, step_i + 1, epoch_loss,
                                     steps_done)
                if self.step_hook is not None:
                    self.step_hook(self, global_step)
            lr = scheduler.step()
            # each step's loss is a sum over its pairs plus one per-step L2
            # term, so normalize by the number of steps (not pairs): dividing
            # the mixed sum by pair_count scaled the L2 contribution with the
            # batch size and made reported losses incomparable across
            # configurations with different batch shapes
            mean_loss = epoch_loss / max(steps_done, 1)

            metric = None
            evaluate_now = (self.eval_fn is not None
                            and ((epoch + 1) % cfg.eval_every == 0
                                 or epoch == cfg.epochs - 1))
            if evaluate_now:
                if dist is not None:
                    dist.drain()  # evaluate fully-applied tables
                self.model.eval()
                metric = float(self.eval_fn())
                self.model.train()
            self.history.record(epoch=epoch, loss=mean_loss, lr=lr,
                                **({"metric": metric} if metric is not None else {}))
            if self.config.verbose:  # pragma: no cover - logging only
                suffix = f" metric={metric:.4f}" if metric is not None else ""
                print(f"epoch {epoch:3d} loss={mean_loss:.4f} lr={lr:.5f}{suffix}")
            epochs_completed = epoch + 1
            if stopper is not None and metric is not None and stopper.update(metric):
                break
        if dist is not None:
            dist.drain()
        if optimizer is not None:
            # flush exact-mixed Adam's deferred per-row replays so final
            # parameters don't depend on which rows the last batches drew
            optimizer.sync()
        self.model.eval()
        if cfg.save_state is not None:
            # end-of-run state: resuming it with a larger epoch budget
            # continues training exactly where this run left off
            self._save_state(optimizer, dist, scheduler, lr_holder, stopper,
                             epochs_completed, 0, 0.0, 0)
        return self.history

    def _save_state(self, optimizer, dist, scheduler, lr_holder, stopper,
                    epoch: int, step_in_epoch: int, epoch_loss: float,
                    steps_done: int) -> None:
        """One atomic training-state snapshot at the current cursor.

        Under dist training this drains every in-flight push first and
        pulls the shard owners' optimizer state over the control pipe, so
        the file is a consistent cut: tables, clocks, and cursor all
        describe the same step.
        """
        from repro.train.resume import config_echo, save_training_state

        cfg = self.config
        names = self._param_names()
        opt_states: dict[str, dict] = {}
        if dist is not None:
            for p, state in zip(dist.flat_params, dist.pull_state()):
                opt_states[names[id(p)]] = state
        if optimizer is not None:
            for p, state in zip(optimizer.parameters, optimizer.state_dict()):
                opt_states[names[id(p)]] = state
        meta = {
            "config": config_echo(cfg),
            "epoch": int(epoch),
            "step_in_epoch": int(step_in_epoch),
            "global_step": int(epoch * cfg.steps_per_epoch + step_in_epoch),
            "epoch_loss": float(epoch_loss),
            "steps_done": int(steps_done),
            "lr": float(lr_holder.lr),
            "scheduler_epoch": int(scheduler.epoch),
            "rng_state": self._rng.bit_generator.state,
            "history": self.history.rows,
            "stopper": (None if stopper is None else {
                "best": stopper.best,
                "best_step": stopper.best_step,
                "bad_checks": stopper._bad_checks,
                "step": stopper._step,
            }),
        }
        save_training_state(cfg.save_state, self.model.state_dict(),
                            opt_states, meta)

"""Generic pairwise trainer implementing Algorithm 1 of the paper.

Each epoch: sample seed users, draw S positives and S negatives per user,
score both sides, apply the margin loss of Eq. (7) plus λ‖Θ‖², and update
with Adam under an exponential learning-rate decay (rate 0.96).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.graph.sampling import NegativeSampler, sample_pairwise_batch
from repro.nn.losses import bpr_loss, l2_regularization, pairwise_hinge_loss
from repro.nn.optim import Adam
from repro.nn.schedulers import ExponentialDecay
from repro.train.callbacks import EarlyStopping, HistoryRecorder


@dataclass
class TrainConfig:
    """Hyperparameters of the pairwise training loop.

    Defaults follow the paper: Adam, lr 1e-3, decay 0.96, batch size 32
    (seed users per step), margin hinge loss.
    """

    epochs: int = 30
    steps_per_epoch: int = 20
    batch_users: int = 32
    per_user: int = 4           # S in the paper's Algorithm 1
    lr: float = 1e-3
    lr_decay: float = 0.96
    l2_weight: float = 1e-4
    loss: str = "hinge"          # "hinge" (paper Eq. 7) or "bpr"
    margin: float = 1.0
    seed: int = 0
    early_stopping_patience: int | None = None
    verbose: bool = False
    #: compute precision for the training loop ("float32"/"float64");
    #: ``None`` keeps the ambient tensor default dtype
    dtype: str | None = None


@dataclass
class EpochLog:
    """Scalars logged once per epoch."""

    epoch: int
    loss: float
    lr: float
    metric: float | None = None


_LOSSES: dict[str, Callable] = {
    "hinge": lambda pos, neg, margin: pairwise_hinge_loss(pos, neg, margin=margin),
    "bpr": lambda pos, neg, margin: bpr_loss(pos, neg),
}


class Trainer:
    """Drives pairwise training of any model exposing ``batch_scores``.

    The model contract (see :class:`repro.models.base.Recommender`):

    * ``parameters()`` — trainable parameters,
    * ``batch_scores(users, pos_items, neg_items)`` — differentiable
      (pos_scores, neg_scores) tensors,
    * ``train()`` / ``eval()`` — mode switching,
    * ``on_step_end()`` — optional cache-invalidation hook.
    """

    def __init__(self, model, train_data: InteractionDataset, config: TrainConfig,
                 eval_fn: Callable[[], float] | None = None):
        if config.loss not in _LOSSES:
            raise ValueError(f"unknown loss {config.loss!r}")
        self.model = model
        self.data = train_data
        self.config = config
        self.eval_fn = eval_fn
        self.history = HistoryRecorder()
        self._rng = np.random.default_rng(config.seed)
        self._graph = train_data.graph()
        self._sampler = NegativeSampler(self._graph, train_data.target_behavior)
        degrees = self._graph.user_degree(train_data.target_behavior)
        self._eligible = np.flatnonzero(degrees > 0)

    def run(self) -> HistoryRecorder:
        """Train for the configured epochs; returns the history."""
        from repro.tensor import default_dtype

        with default_dtype(self.config.dtype):  # None → ambient default
            return self._run_loop()

    def _run_loop(self) -> HistoryRecorder:
        cfg = self.config
        optimizer = Adam(self.model.parameters(), lr=cfg.lr)
        scheduler = ExponentialDecay(optimizer, rate=cfg.lr_decay)
        stopper = (EarlyStopping(patience=cfg.early_stopping_patience)
                   if cfg.early_stopping_patience else None)
        loss_fn = _LOSSES[cfg.loss]

        self.model.train()
        for epoch in range(cfg.epochs):
            epoch_loss = 0.0
            pair_count = 0
            for _ in range(cfg.steps_per_epoch):
                batch = sample_pairwise_batch(
                    self._graph, self.data.target_behavior, self._sampler,
                    cfg.batch_users, cfg.per_user, self._rng,
                    eligible_users=self._eligible,
                )
                if len(batch) == 0:
                    continue
                pos_scores, neg_scores = self.model.batch_scores(
                    batch.users, batch.pos_items, batch.neg_items,
                )
                loss = loss_fn(pos_scores, neg_scores, cfg.margin)
                loss = loss + l2_regularization(self.model.parameters(), cfg.l2_weight)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                if hasattr(self.model, "on_step_end"):
                    self.model.on_step_end()
                epoch_loss += float(loss.data)
                pair_count += len(batch)
            lr = scheduler.step()
            mean_loss = epoch_loss / max(pair_count, 1)

            metric = None
            if self.eval_fn is not None:
                self.model.eval()
                metric = float(self.eval_fn())
                self.model.train()
            self.history.record(epoch=epoch, loss=mean_loss, lr=lr,
                                **({"metric": metric} if metric is not None else {}))
            if self.config.verbose:  # pragma: no cover - logging only
                suffix = f" metric={metric:.4f}" if metric is not None else ""
                print(f"epoch {epoch:3d} loss={mean_loss:.4f} lr={lr:.5f}{suffix}")
            if stopper is not None and metric is not None and stopper.update(metric):
                break
        self.model.eval()
        return self.history

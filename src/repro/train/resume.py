"""Mid-epoch training state: the on-disk format behind exact resume.

A *training state* is a superset of a model checkpoint: besides every
parameter table it persists the pieces that make a training run a pure
function of its config — the trainer's rng stream, the epoch/step cursor
into the step-ordered batch stream, per-parameter optimizer state (Adam
moments and step clocks, per-row counters, the exact-mixed-mode replay
history — all raw, nothing flushed), the learning-rate schedule position,
the recorded history, and the early-stopping counters. Restoring all of it
and continuing is bit-identical to never having stopped: ``train N epochs
== train M + resume N-M`` for every propagation mode (full/sampled/async)
and for dist sync training, which is the oracle ``tests/train/test_resume``
pins.

Files are written atomically (:func:`repro.utils.checkpoint.save_arrays`:
temp file + ``os.replace``), so a crash — including SIGKILL — mid-save
leaves either the previous complete state or the new one, never a torn
file, and every array carries a sha256 fingerprint verified on load.

Layout inside the ``.npz``:

* ``model::{param}`` — one array per model parameter (``state_dict``),
* ``optim::{param}::{slot}`` — array-valued optimizer slots (Adam ``m``,
  ``v``, ``row_steps``, …), keyed by the owning parameter's name,
* scalar optimizer slots and all trainer scalars ride in the JSON
  metadata block under the archive's reserved key.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.utils.checkpoint import load_arrays, save_arrays

#: metadata ``format`` tag distinguishing training states from checkpoints
TRAIN_STATE_FORMAT = "train-state"
TRAIN_STATE_VERSION = 1

_MODEL_PREFIX = "model::"
_OPTIM_PREFIX = "optim::"

#: TrainConfig fields that must match between the saving and resuming run
#: for bit-exact continuation (``epochs`` may grow — that's the point)
RESUME_CONFIG_KEYS = (
    "steps_per_epoch", "batch_users", "per_user", "lr", "lr_decay",
    "l2_weight", "loss", "margin", "seed", "dtype", "propagation", "fanout",
    "grad_clip", "optimizer", "shards", "eval_every", "dist",
)


def config_echo(config) -> dict:
    """The resume-relevant slice of a :class:`TrainConfig`, JSON-ready."""
    echo = {}
    for key in RESUME_CONFIG_KEYS:
        value = getattr(config, key)
        if isinstance(value, tuple):
            value = list(value)
        echo[key] = value
    return echo


@dataclass
class TrainState:
    """A loaded training state, split into its three layers."""

    #: parameter name → array, exactly ``model.state_dict()`` at save time
    model_state: dict[str, np.ndarray]
    #: parameter name → per-parameter optimizer state dict
    optimizer_states: dict[str, dict]
    #: trainer scalars (epoch/step cursor, rng, scheduler, history, …)
    meta: dict

    @property
    def epoch(self) -> int:
        """Epoch in progress at save time (== epochs completed when the
        state was written at an epoch boundary or end of run)."""
        return int(self.meta["epoch"])

    @property
    def step_in_epoch(self) -> int:
        """Steps already consumed inside :attr:`epoch`."""
        return int(self.meta["step_in_epoch"])

    @property
    def global_step(self) -> int:
        """Batch-stream cursor: loop iterations consumed so far."""
        return int(self.meta["global_step"])

    @property
    def config(self) -> dict:
        return self.meta["config"]


def save_training_state(path: str | Path, model_state: dict[str, np.ndarray],
                        optimizer_states: dict[str, dict],
                        trainer_meta: dict) -> Path:
    """Write one atomic training-state file; returns the final path.

    ``model_state`` is a ``model.state_dict()`` mapping; the reshard tool
    writes migrated states through the same function.
    """
    arrays: dict[str, np.ndarray] = {}
    for name, value in model_state.items():
        arrays[_MODEL_PREFIX + name] = value
    scalars: dict[str, dict] = {}
    for pname, state in optimizer_states.items():
        scalar_slots = {}
        for slot, value in state.items():
            if "::" in slot:
                raise ValueError(f"optimizer slot name {slot!r} may not "
                                 "contain '::'")
            if isinstance(value, np.ndarray):
                arrays[f"{_OPTIM_PREFIX}{pname}::{slot}"] = value
            else:
                scalar_slots[slot] = value
        scalars[pname] = scalar_slots
    meta = dict(trainer_meta)
    meta["format"] = TRAIN_STATE_FORMAT
    meta["state_version"] = TRAIN_STATE_VERSION
    meta["optim_scalars"] = scalars
    return save_arrays(path, arrays, meta)


def load_training_state(path: str | Path, verify: bool = True) -> TrainState:
    """Read a file written by :func:`save_training_state` (verified)."""
    arrays, meta = load_arrays(path, verify=verify)
    if meta.get("format") != TRAIN_STATE_FORMAT:
        raise ValueError(
            f"{path} is not a training state (format="
            f"{meta.get('format')!r}); plain checkpoints hold no resume "
            "cursor — pass a file written by TrainConfig.save_state")
    model_state: dict[str, np.ndarray] = {}
    optimizer_states: dict[str, dict] = {
        pname: dict(slots)
        for pname, slots in meta.get("optim_scalars", {}).items()}
    for key, value in arrays.items():
        if key.startswith(_MODEL_PREFIX):
            model_state[key[len(_MODEL_PREFIX):]] = value
        elif key.startswith(_OPTIM_PREFIX):
            pname, slot = key[len(_OPTIM_PREFIX):].rsplit("::", 1)
            optimizer_states.setdefault(pname, {})[slot] = value
        else:
            raise ValueError(f"unrecognized training-state array {key!r}")
    return TrainState(model_state=model_state,
                      optimizer_states=optimizer_states, meta=meta)


def check_resume_config(saved: dict, config) -> None:
    """Refuse to resume under a config that changes the training stream.

    ``epochs`` may grow (resuming 6 → 10 is the whole point); everything
    in :data:`RESUME_CONFIG_KEYS` must match — those fields determine the
    batch stream, rng consumption, and optimizer arithmetic, so changing
    any of them silently breaks the bit-parity contract.
    """
    current = config_echo(config)
    mismatched = {key: (saved.get(key), current[key])
                  for key in RESUME_CONFIG_KEYS
                  if saved.get(key) != current[key]}
    if mismatched:
        detail = ", ".join(f"{k}: saved={s!r} now={n!r}"
                           for k, (s, n) in sorted(mismatched.items()))
        raise ValueError(f"cannot resume: config differs from the saved "
                         f"run ({detail})")

"""Reproducibility helpers.

Every stochastic component (init, sampling, dropout, data generation) takes
an explicit ``numpy.random.Generator``; these helpers create and fan out
generators deterministically.
"""

from __future__ import annotations

import numpy as np


def seeded_rng(seed: int | None) -> np.random.Generator:
    """A generator from an optional seed (fresh entropy when ``None``)."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Uses ``SeedSequence.spawn`` so the streams are statistically independent
    (unlike seed+i arithmetic).
    """
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]

"""Async double-buffered sampled-batch pipeline.

Sampled mini-batch training pays for two very different things per step:
*extraction* (draw the pairwise batch, expand it L hops, slice the per-hop
sub-adjacencies — pure graph work that never reads a parameter) and
*compute* (forward, backward, optimizer). Run serially, extraction is dead
time the optimizer waits on. :class:`SampledBatchPipeline` moves it off
the training thread: while the optimizer applies step ``t``, background
workers extract the blocks for steps ``t+1, t+2, …`` from a pre-drawn
batch stream, double-buffered so the training loop always finds the next
block ready (hardware permitting).

Determinism contract
--------------------
Everything random is split off one seed, and nothing random depends on
the worker count:

* the **batch stream** is drawn step-ordered from its own generator on
  the consuming thread, so step ``t``'s batch never depends on worker
  count or scheduling;
* **extraction** for step ``t`` runs on its own per-step spawned child
  generator — whichever worker (or the inline ``workers=0`` path) ends
  up executing it. Traces are therefore bit-reproducible across *any*
  worker count: ``workers=0``, ``1`` and ``8`` draw the exact same
  neighborhoods for every step, which is what the cross-worker
  determinism golden in ``tests/train/test_pipeline.py`` pins down.

Worker count is purely an execution knob (how much extraction overlaps
compute), never a sampling knob.

>>> draws = iter([[0], [1], [2]])
>>> pipe = SampledBatchPipeline(
...     draw_batch=lambda rng: next(draws),
...     extract=lambda batch, rng: batch[0] * 10,
...     total_steps=3, seed=0, workers=1)
>>> with pipe:
...     [(p.step, p.batch, p.block) for p in pipe]
[(0, [0], 0), (1, [1], 10), (2, [2], 20)]
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

_SENTINEL = object()


@dataclass
class PreparedBatch:
    """One step's prefetched work unit: the batch plus its sampled block."""

    step: int
    batch: Any
    block: Any


class SampledBatchPipeline:
    """Step-ordered iterator of :class:`PreparedBatch`, extraction prefetched.

    Parameters
    ----------
    draw_batch:
        ``rng → batch``. Called in step order on the consuming thread
        (batches are cheap; blocks are not).
    extract:
        ``(batch, rng) → block``. Runs on a background worker when
        ``workers ≥ 1``; must not read mutable training state (the models'
        ``extract_block`` reads only graph structure, so it qualifies).
        Skipped (block ``None``) for empty batches (``len(batch) == 0``).
    total_steps:
        Number of steps the stream produces.
    seed:
        Root seed; the batch stream and each *step's* extraction get
        spawned children (per-step, not per-worker, so traces are
        invariant to the worker count).
    workers:
        Background extraction threads. ``0`` runs everything inline on
        the consuming thread — same rng streams as any worker count, no
        threading — the reference the equivalence tests compare against.
    depth:
        Per-worker buffer depth; ``2`` double-buffers (one block being
        consumed, one ready, one in flight per worker).
    """

    def __init__(self, draw_batch: Callable[[np.random.Generator], Any],
                 extract: Callable[[Any, np.random.Generator], Any],
                 total_steps: int, *, seed: int = 0, workers: int = 1,
                 depth: int = 2, start_step: int = 0):
        if total_steps < 0:
            raise ValueError("total_steps must be >= 0")
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if start_step < 0 or start_step > total_steps:
            raise ValueError("start_step must be in [0, total_steps]")
        self._draw_batch = draw_batch
        self._extract = extract
        self.total_steps = int(total_steps)
        self.workers = int(workers)
        self.depth = int(depth)

        root = np.random.SeedSequence(seed)
        batch_ss, extract_ss = root.spawn(2)
        self._batch_rng = np.random.default_rng(batch_ss)
        # one child seed per STEP (not per worker): extraction randomness is
        # a property of the step, so any worker count replays the same trace.
        # Children are derived lazily (bit-identical to extract_ss.spawn —
        # a spawned child is SeedSequence(entropy, spawn_key + (i,))) so
        # construction stays O(1) however many total steps the run has.
        self._extract_ss = extract_ss

        # mid-epoch resume: fast-forward the batch stream through the steps
        # a previous run already consumed. Replaying the draws (rather than
        # restoring a live generator state) keeps the cursor exact even
        # though prefetching advances _batch_rng ahead of the consumed
        # step; per-step extraction rngs are derived from the absolute step
        # index so they need no fast-forward at all.
        for _ in range(start_step):
            self._draw_batch(self._batch_rng)
        self._produced = start_step  # next step to enqueue (batch drawn)
        self._consumed = start_step  # next step to hand out
        self._stop = False
        self._threads: list[threading.Thread] = []
        self._in_queues: list[queue.Queue] = []
        self._out_queues: list[queue.Queue] = []
        if self.workers >= 1:
            for w in range(self.workers):
                self._in_queues.append(queue.Queue(maxsize=self.depth))
                self._out_queues.append(queue.Queue(maxsize=self.depth))
                thread = threading.Thread(
                    target=self._worker_loop, args=(w,),
                    name=f"sampled-batch-worker-{w}", daemon=True)
                self._threads.append(thread)
                thread.start()

    def _step_rng(self, step: int) -> np.random.Generator:
        """The step's extraction generator, derived lazily from the seed
        tree (bit-identical to ``extract_ss.spawn(total_steps)[step]``)."""
        parent = self._extract_ss
        child = np.random.SeedSequence(entropy=parent.entropy,
                                       spawn_key=parent.spawn_key + (step,))
        return np.random.default_rng(child)

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _worker_loop(self, w: int) -> None:
        in_q, out_q = self._in_queues[w], self._out_queues[w]
        while True:
            item = in_q.get()
            if item is _SENTINEL:
                return
            step, batch = item
            try:
                rng = self._step_rng(step)
                block = self._extract(batch, rng) if len(batch) else None
                result = (step, batch, block, None)
            except BaseException as exc:  # surfaced on the consuming thread
                result = (step, batch, None, exc)
            while not self._stop:
                try:
                    out_q.put(result, timeout=0.05)
                    break
                except queue.Full:
                    continue
            if self._stop:
                return

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def _top_up(self) -> None:
        """Draw batches (in step order) and hand them to their workers."""
        while self._produced < self.total_steps:
            in_q = self._in_queues[self._produced % self.workers]
            if in_q.full():
                return  # must enqueue in order; stop at the first full lane
            batch = self._draw_batch(self._batch_rng)
            in_q.put_nowait((self._produced, batch))
            self._produced += 1

    def __iter__(self):
        return self

    def __next__(self) -> PreparedBatch:
        if self._consumed >= self.total_steps:
            raise StopIteration
        if self._stop:
            raise RuntimeError("pipeline is closed")
        if self.workers == 0:
            batch = self._draw_batch(self._batch_rng)
            rng = self._step_rng(self._consumed)
            block = self._extract(batch, rng) if len(batch) else None
            prepared = PreparedBatch(self._consumed, batch, block)
            self._consumed += 1
            return prepared
        self._top_up()
        out_q = self._out_queues[self._consumed % self.workers]
        step, batch, block, exc = out_q.get()
        assert step == self._consumed, "pipeline delivered out of order"
        self._consumed += 1
        self._top_up()  # keep the buffers primed before compute starts
        if exc is not None:
            self.close()
            raise exc
        return PreparedBatch(step, batch, block)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and release their buffers (idempotent)."""
        if self._stop:
            return
        self._stop = True
        for in_q in self._in_queues:
            while True:  # only this thread enqueues; drain then sentinel
                try:
                    in_q.get_nowait()
                except queue.Empty:
                    break
            in_q.put(_SENTINEL)
        for out_q in self._out_queues:
            while True:
                try:
                    out_q.get_nowait()
                except queue.Empty:
                    break
        for thread in self._threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "SampledBatchPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

"""Module / Parameter abstraction (a small torch.nn.Module analogue).

Modules form a tree; parameters are discovered recursively by attribute
walking, so optimizers can be constructed with ``Adam(model.parameters())``
and L2 regularization can sum over ``model.parameters()``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor; always requires grad.

    Unlike plain tensors, a parameter is always materialized in an explicit
    dtype — the module default unless overridden — so a model constructed
    under ``default_dtype("float32")`` is uniformly float32 even where its
    code builds weights from float64 numpy arrays (``np.zeros`` biases etc.).
    """

    def __init__(self, data, name: str | None = None, dtype=None):
        from repro.tensor.tensor import resolve_dtype

        super().__init__(data, requires_grad=True, name=name,
                         dtype=resolve_dtype(dtype))


class Module:
    """Base class for neural modules.

    Subclasses assign :class:`Parameter` and ``Module`` instances as
    attributes; :meth:`parameters` and :meth:`named_parameters` walk the
    resulting tree. ``training`` toggles dropout-style behaviour and is
    propagated by :meth:`train` / :meth:`eval`.
    """

    def __init__(self):
        self.training: bool = True

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for attr, value in vars(self).items():
            name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, element in enumerate(value):
                    if isinstance(element, Parameter):
                        yield f"{name}.{i}", element
                    elif isinstance(element, Module):
                        yield from element.named_parameters(prefix=f"{name}.{i}.")
            elif isinstance(value, dict):
                for key, element in value.items():
                    if isinstance(element, Parameter):
                        yield f"{name}.{key}", element
                    elif isinstance(element, Module):
                        yield from element.named_parameters(prefix=f"{name}.{key}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for element in value:
                    if isinstance(element, Module):
                        yield from element.modules()
            elif isinstance(value, dict):
                for element in value.values():
                    if isinstance(element, Module):
                        yield from element.modules()

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array, keyed by dotted path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays saved by :meth:`state_dict` (strict matching)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, p in own.items():
            # preserve each parameter's dtype so checkpoints restore into
            # float32 models without silently upcasting them
            array = np.asarray(state[name], dtype=p.data.dtype)
            if array.shape != p.data.shape:
                raise ValueError(f"shape mismatch for {name}: {array.shape} vs {p.data.shape}")
            p.data = array.copy()

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """A list of sub-modules that registers its children for parameter walks."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self.items: list[Module] = list(modules or [])

    def append(self, module: Module) -> None:
        self.items.append(module)

    def __iter__(self):
        return iter(self.items)

    def __getitem__(self, index: int) -> Module:
        return self.items[index]

    def __len__(self) -> int:
        return len(self.items)

    def forward(self, *args, **kwargs):  # pragma: no cover - container only
        raise RuntimeError("ModuleList is a container and cannot be called")

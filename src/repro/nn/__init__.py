"""Minimal neural-network library on top of :mod:`repro.tensor`.

Provides the module/parameter abstraction, common layers, initializers,
losses, optimizers and learning-rate schedulers used by GNMR and all the
baseline recommenders.
"""

from repro.nn.module import Module, Parameter, ModuleList
from repro.nn.layers import Linear, Embedding, MLP, Dropout, GRUCell, Identity
from repro.nn import init
from repro.nn.losses import (
    pairwise_hinge_loss,
    bpr_loss,
    mse_loss,
    bce_with_logits_loss,
    softmax_cross_entropy,
    l2_regularization,
    l2_regularization_batch,
)
from repro.nn.optim import (
    Optimizer,
    SGD,
    Momentum,
    Adagrad,
    Adam,
    clip_grad_norm,
    global_grad_norm,
    shard_param_groups,
)
from repro.nn.schedulers import ExponentialDecay, StepDecay, ConstantSchedule

__all__ = [
    "Module",
    "Parameter",
    "ModuleList",
    "Linear",
    "Embedding",
    "MLP",
    "Dropout",
    "GRUCell",
    "Identity",
    "init",
    "pairwise_hinge_loss",
    "bpr_loss",
    "mse_loss",
    "bce_with_logits_loss",
    "softmax_cross_entropy",
    "l2_regularization",
    "l2_regularization_batch",
    "Optimizer",
    "SGD",
    "Momentum",
    "Adagrad",
    "Adam",
    "clip_grad_norm",
    "global_grad_norm",
    "shard_param_groups",
    "ExponentialDecay",
    "StepDecay",
    "ConstantSchedule",
]

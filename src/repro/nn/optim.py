"""First-order optimizers.

The paper trains GNMR with Adam (lr 1e-3, exponential decay 0.96); the
other optimizers exist for baselines and for completeness of the substrate.

Optimizer state mirrors each parameter's dtype (``np.zeros_like``), and all
updates are in-place, so float32 models keep float32 state and updates even
if a stray float64 gradient reaches them.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, parameters: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla stochastic gradient descent."""

    def step(self) -> None:
        for p in self.parameters:
            if p.grad is None:
                continue
            p.data -= self.lr * p.grad


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, parameters: list[Parameter], lr: float, momentum: float = 0.9):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data += v


class Adagrad(Optimizer):
    """Adagrad with accumulated squared gradients."""

    def __init__(self, parameters: list[Parameter], lr: float, eps: float = 1e-10):
        super().__init__(parameters, lr)
        self.eps = eps
        self._accum = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, acc in zip(self.parameters, self._accum):
            if p.grad is None:
                continue
            acc += p.grad ** 2
            p.data -= self.lr * p.grad / (np.sqrt(acc) + self.eps)


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(self, parameters: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

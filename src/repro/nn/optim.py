"""First-order optimizers.

The paper trains GNMR with Adam (lr 1e-3, exponential decay 0.96); the
other optimizers exist for baselines and for completeness of the substrate.

Optimizer state mirrors each parameter's dtype (``np.zeros_like``), and all
updates are in-place, so float32 models keep float32 state and updates even
if a stray float64 gradient reaches them.

Every optimizer also understands :class:`~repro.tensor.RowSparseGrad` — the
row-sparse gradients emitted by ``Tensor.embedding_rows`` on the sampled
training path — and applies *lazy* per-row updates: only the rows present
in the gradient are read or written, so the per-step optimizer cost scales
with the batch instead of the embedding-table size. Rows a sparse step does
not touch keep their state frozen (velocity, Adam moments, Adagrad
accumulators), the standard lazy semantics of sparse optimizers. Dense
gradients take the exact same code path as before, bit for bit.

Parameter groups
----------------
Optimizers accept either a flat parameter list or a list of *groups*
(``{"params": [...], "shard": label}``), the hook the sharded-embedding
subsystem (:mod:`repro.shard`) uses: each shard's parameters form one
group, so optimizer state is attributable per shard and ``step(shard=k)``
applies exactly one shard's updates — the parameter-server execution
model where each server steps the rows it owns. A plain ``step()`` updates
every group in declaration order, bit-identical to the ungrouped path.
:func:`shard_param_groups` builds the grouping from any module whose
parameters carry the ``.shard`` tag :class:`~repro.shard.ShardedEmbedding`
sets.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor.rowsparse import RowSparseGrad


def shard_param_groups(module_or_params) -> list[dict]:
    """Group parameters by their ``.shard`` tag (``None`` = unsharded).

    Accepts a :class:`~repro.nn.module.Module` or a parameter iterable and
    returns optimizer parameter groups: the untagged parameters first
    (one group, ``shard=None``), then one group per shard id in ascending
    order. Declaration order inside each group follows the module's
    parameter walk, so a model with no sharded tables yields a single
    group equivalent to the flat list.
    """
    params = (module_or_params.parameters()
              if isinstance(module_or_params, Module)
              else list(module_or_params))
    by_shard: dict[int | None, list[Parameter]] = {}
    for p in params:
        by_shard.setdefault(getattr(p, "shard", None), []).append(p)
    labels = sorted((k for k in by_shard if k is not None))
    ordered: list[int | None] = ([None] if None in by_shard else []) + labels
    return [{"params": by_shard[label], "shard": label} for label in ordered]


def _row_bias(correction: np.ndarray, values_ndim: int) -> np.ndarray:
    """Reshape a per-row (r,) factor to broadcast against (r, *row_shape)."""
    return correction.reshape(correction.shape + (1,) * (values_ndim - 1))


def global_grad_norm(parameters: list[Parameter]) -> float:
    """Global L2 norm over all gradients, sparse-grad aware.

    Accumulates in float64 so float32 models get a stable norm.
    """
    total = 0.0
    for p in parameters:
        grad = p.grad
        if grad is None:
            continue
        if isinstance(grad, RowSparseGrad):
            total += grad.sq_norm()
        else:
            flat = np.asarray(grad, dtype=np.float64)
            total += float(np.sum(flat * flat))
    return float(np.sqrt(total))


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global norm is at most ``max_norm``.

    Row-sparse gradients are scaled in place on their value block only —
    clipping never densifies. Returns the pre-clip global norm.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norm = global_grad_norm(parameters)
    if norm > max_norm:
        scale = max_norm / norm
        for p in parameters:
            grad = p.grad
            if grad is None:
                continue
            if isinstance(grad, RowSparseGrad):
                grad.scale_(scale)
            else:
                p.grad = grad * grad.dtype.type(scale)
    return norm


class Optimizer:
    """Base optimizer over a flat parameter list or parameter groups."""

    def __init__(self, parameters, lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        parameters = list(parameters)
        if parameters and isinstance(parameters[0], dict):
            self.param_groups = [{"params": list(g["params"]),
                                  "shard": g.get("shard")}
                                 for g in parameters]
        else:
            self.param_groups = [{"params": parameters, "shard": None}]
        self.parameters = [p for g in self.param_groups for p in g["params"]]
        self._shard_of = [g["shard"] for g in self.param_groups
                          for _ in g["params"]]
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def shards(self) -> list:
        """Distinct shard labels across the groups (``None`` excluded)."""
        seen: list = []
        for g in self.param_groups:
            if g["shard"] is not None and g["shard"] not in seen:
                seen.append(g["shard"])
        return seen

    def _active(self, shard) -> list[int]:
        """Parameter indices a ``step(shard=...)`` call updates."""
        if shard is None:
            return list(range(len(self.parameters)))
        indices = [i for i, label in enumerate(self._shard_of)
                   if label == shard]
        if not indices:
            raise ValueError(f"no parameter group with shard {shard!r}")
        return indices

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self, shard=None) -> None:
        raise NotImplementedError

    def sync(self) -> None:
        """Flush any deferred lazy state so parameters are final.

        Stateless and purely-lazy optimizers have nothing deferred; Adam's
        exact mixed dense/sparse mode overrides this to replay the dense
        updates it skipped on rows absent from sparse gradients.
        """

    # -- state serialization (mid-run checkpointing / resharding) --------
    def _param_state(self, i: int) -> dict:
        """Serializable state for parameter ``i`` (stateless = empty)."""
        return {}

    def _load_param_state(self, i: int, state: dict) -> None:
        if state:
            raise ValueError(f"{type(self).__name__} carries no per-parameter "
                             f"state, got keys {sorted(state)}")

    def state_dict(self) -> list[dict]:
        """Per-parameter state, one dict per parameter in declaration order.

        Values are numpy arrays or plain Python scalars; loading the result
        back through :meth:`load_state_dict` reproduces the optimizer's
        behavior bit-exactly from this point on.
        """
        return [self._param_state(i) for i in range(len(self.parameters))]

    def load_state_dict(self, states: list[dict]) -> None:
        states = list(states)
        if len(states) != len(self.parameters):
            raise ValueError(f"state covers {len(states)} parameters, "
                             f"optimizer has {len(self.parameters)}")
        for i, state in enumerate(states):
            self._load_param_state(i, dict(state))


class SGD(Optimizer):
    """Vanilla stochastic gradient descent."""

    def step(self, shard=None) -> None:
        for i in self._active(shard):
            p = self.parameters[i]
            if p.grad is None:
                continue
            if isinstance(p.grad, RowSparseGrad):
                g = p.grad
                p.data[g.indices] -= self.lr * g.values
            else:
                p.data -= self.lr * p.grad


class Momentum(Optimizer):
    """SGD with classical momentum.

    Sparse steps update velocity lazily: rows absent from the gradient keep
    their velocity untouched (no decay) until the next time they appear.
    """

    def __init__(self, parameters: list[Parameter], lr: float, momentum: float = 0.9):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self, shard=None) -> None:
        for i in self._active(shard):
            p, v = self.parameters[i], self._velocity[i]
            if p.grad is None:
                continue
            if isinstance(p.grad, RowSparseGrad):
                g = p.grad
                rows = g.indices
                v[rows] = self.momentum * v[rows] - self.lr * g.values
                p.data[rows] += v[rows]
            else:
                v *= self.momentum
                v -= self.lr * p.grad
                p.data += v

    def _param_state(self, i: int) -> dict:
        return {"velocity": np.array(self._velocity[i])}

    def _load_param_state(self, i: int, state: dict) -> None:
        self._velocity[i][...] = state.pop("velocity")
        super()._load_param_state(i, state)


class Adagrad(Optimizer):
    """Adagrad with accumulated squared gradients (naturally lazy)."""

    def __init__(self, parameters: list[Parameter], lr: float, eps: float = 1e-10):
        super().__init__(parameters, lr)
        self.eps = eps
        self._accum = [np.zeros_like(p.data) for p in self.parameters]

    def step(self, shard=None) -> None:
        for i in self._active(shard):
            p, acc = self.parameters[i], self._accum[i]
            if p.grad is None:
                continue
            if isinstance(p.grad, RowSparseGrad):
                g = p.grad
                rows = g.indices
                acc[rows] += g.values ** 2
                p.data[rows] -= self.lr * g.values / (np.sqrt(acc[rows]) + self.eps)
            else:
                acc += p.grad ** 2
                p.data -= self.lr * p.grad / (np.sqrt(acc) + self.eps)

    def _param_state(self, i: int) -> dict:
        return {"accum": np.array(self._accum[i])}

    def _load_param_state(self, i: int, state: dict) -> None:
        self._accum[i][...] = state.pop("accum")
        super()._load_param_state(i, state)


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015).

    Dense gradients use the parameter's step count ``t`` exactly as the
    original implementation did (with a flat parameter list every ``t``
    advances on every ``step()``, so this *is* the classic global count).
    Row-sparse gradients run *lazy Adam*: moments are updated only on the
    touched rows, and bias correction uses a per-row step count (how many
    times that row has actually been updated) — the correction a fresh row
    needs, which the global ``t`` would understate drastically for
    rarely-sampled rows. Parameters that only ever receive dense gradients
    never allocate the per-row counters.

    Mixed dense/sparse interop on one parameter is *exact*: once a
    parameter that already took a dense step receives a row-sparse
    gradient, the optimizer switches that parameter to a timestamped
    regime — every row carries the step it was last updated through, each
    covering step's ``(had_grad, lr)`` is recorded, and before a row is
    read or written its skipped dense updates (zero gradient, decaying
    moments) are replayed with the exact arithmetic and learning rate of
    the steps it missed. The result is bit-identical to running dense Adam
    on densified gradients, at sparse per-step cost. :meth:`sync` replays
    every lagging row, which :class:`~repro.train.trainer.Trainer` calls at
    the end of a run so final parameters never depend on which rows the
    last batches happened to sample. Parameters whose first sparse
    gradient precedes any dense gradient keep the per-row-count lazy
    semantics above (the standard sparse-optimizer contract the sampled
    trainer and all goldens rely on).

    With per-shard parameter groups the step counts are kept per parameter,
    so ``step(shard=k)`` advances only shard ``k``'s clocks — moments, row
    counters and bias corrections stay shard-local, never mixing state
    across shards.
    """

    def __init__(self, parameters, lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._param_t = [0] * len(self.parameters)
        self._row_steps: list[np.ndarray | None] = [None] * len(self.parameters)
        # exact mixed-mode state (allocated on first sparse grad after a
        # dense step): per-row last-processed step, and per-step history of
        # (had_grad, lr) from _hist_base onward for replaying skipped steps
        self._saw_dense = [False] * len(self.parameters)
        self._row_t: list[np.ndarray | None] = [None] * len(self.parameters)
        self._lr_hist: list[list | None] = [None] * len(self.parameters)
        self._hist_base = [0] * len(self.parameters)

    @property
    def _t(self) -> int:
        """Max per-parameter step count (the classic global ``t`` when no
        shard-filtered steps have run)."""
        return max(self._param_t)

    def _sparse_step(self, i: int, p: Parameter, g: RowSparseGrad) -> None:
        m, v = self._m[i], self._v[i]
        counts = self._row_steps[i]
        if counts is None:
            counts = np.zeros(p.data.shape[0], dtype=np.int64)
            # rows already advanced by earlier dense steps keep their global
            # count so their bias correction stays monotone
            counts[:] = self._param_t[i] - 1
            self._row_steps[i] = counts
        rows = g.indices
        counts[rows] += 1
        values = g.values
        m[rows] = self.beta1 * m[rows] + (1.0 - self.beta1) * values
        v[rows] = self.beta2 * v[rows] + (1.0 - self.beta2) * values ** 2
        t_rows = counts[rows].astype(p.data.dtype)
        bias1 = _row_bias(1.0 - self.beta1 ** t_rows, values.ndim)
        bias2 = _row_bias(1.0 - self.beta2 ** t_rows, values.ndim)
        m_hat = m[rows] / bias1
        v_hat = v[rows] / bias2
        p.data[rows] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _catch_up(self, i: int, p: Parameter, rows: np.ndarray | None,
                  upto: int) -> None:
        """Replay the dense zero-gradient updates ``rows`` missed.

        Brings each row's state through step ``upto`` by applying, in step
        order and with each step's recorded learning rate, exactly what the
        dense path would have done with a zero gradient on that row:
        moments decay by beta, and the bias-corrected update still moves
        the row while ``m`` is nonzero. Bit-matches the dense path because
        the arithmetic (scalar Python-pow bias corrections, scalar-array
        multiply order) mirrors it operation for operation.
        """
        ts = self._row_t[i]
        if rows is None:
            lagging = np.flatnonzero(ts < upto)
        else:
            lagging = rows[ts[rows] < upto]
        if lagging.size == 0:
            return
        m, v = self._m[i], self._v[i]
        hist, base = self._lr_hist[i], self._hist_base[i]
        for s in range(int(ts[lagging].min()) + 1, upto + 1):
            had_grad, lr = hist[s - base]
            if not had_grad:
                continue
            sel = lagging[ts[lagging] < s]
            mm = self.beta1 * m[sel] + 0.0
            vv = self.beta2 * v[sel] + 0.0
            m[sel] = mm
            v[sel] = vv
            bias1 = 1.0 - self.beta1 ** s
            bias2 = 1.0 - self.beta2 ** s
            p.data[sel] -= lr * (mm / bias1) / (np.sqrt(vv / bias2) + self.eps)
        ts[lagging] = upto

    def _exact_sparse_step(self, i: int, p: Parameter, g: RowSparseGrad) -> None:
        t = self._param_t[i]
        rows = g.indices
        self._catch_up(i, p, rows, t - 1)
        m, v = self._m[i], self._v[i]
        values = g.values
        m[rows] = self.beta1 * m[rows] + (1.0 - self.beta1) * values
        v[rows] = self.beta2 * v[rows] + (1.0 - self.beta2) * values ** 2
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        m_hat = m[rows] / bias1
        v_hat = v[rows] / bias2
        p.data[rows] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        self._row_t[i][rows] = t

    def sync(self) -> None:
        """Replay every lagging row in exact mixed-mode parameters.

        After this, each such parameter is bit-identical to one trained
        with dense Adam on densified gradients; pure-sparse and pure-dense
        parameters are untouched. Safe to call at any point mid-training.
        """
        for i, p in enumerate(self.parameters):
            if self._row_t[i] is not None:
                self._catch_up(i, p, None, self._param_t[i])

    def step(self, shard=None) -> None:
        for i in self._active(shard):
            # the parameter's clock advances on every step that covers it,
            # grad or not — identical to the old global `t` for full steps
            self._param_t[i] += 1
            p, m, v = self.parameters[i], self._m[i], self._v[i]
            exact = self._row_t[i] is not None
            if exact:
                self._lr_hist[i].append((p.grad is not None, self.lr))
            if p.grad is None:
                continue
            if isinstance(p.grad, RowSparseGrad):
                if not exact and self._saw_dense[i] and self._row_steps[i] is None:
                    # dense-then-sparse interop: switch to the timestamped
                    # exact regime — all rows are current through t-1
                    exact = True
                    self._row_t[i] = np.full(p.data.shape[0], self._param_t[i] - 1,
                                             dtype=np.int64)
                    self._hist_base[i] = self._param_t[i]
                    self._lr_hist[i] = [(True, self.lr)]
                if exact:
                    self._exact_sparse_step(i, p, p.grad)
                else:
                    self._sparse_step(i, p, p.grad)
                continue
            self._saw_dense[i] = True
            if exact:
                # dense step on a timestamped parameter: bring every row
                # current first, then the plain dense update below
                self._catch_up(i, p, None, self._param_t[i] - 1)
                self._row_t[i][:] = self._param_t[i]
            elif self._row_steps[i] is not None:
                # dense step on a row-counted parameter advances every row
                self._row_steps[i] += 1
            bias1 = 1.0 - self.beta1 ** self._param_t[i]
            bias2 = 1.0 - self.beta2 ** self._param_t[i]
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _param_state(self, i: int) -> dict:
        """Full Adam state for parameter ``i``, including the exact
        mixed-mode regime raw (un-synced) — loading it back continues the
        deferred replay bit-exactly."""
        state = {
            "m": np.array(self._m[i]),
            "v": np.array(self._v[i]),
            "param_t": int(self._param_t[i]),
            "saw_dense": bool(self._saw_dense[i]),
            "hist_base": int(self._hist_base[i]),
        }
        if self._row_steps[i] is not None:
            state["row_steps"] = np.array(self._row_steps[i])
        if self._row_t[i] is not None:
            state["row_t"] = np.array(self._row_t[i])
            # (had_grad, lr) pairs as a (n, 2) float64 block; lr round-trips
            # exactly (float64 in, float64 out) and had_grad is 0.0/1.0
            hist = self._lr_hist[i]
            state["lr_hist"] = np.array(
                [(1.0 if had else 0.0, lr) for had, lr in hist],
                dtype=np.float64).reshape(len(hist), 2)
        return state

    def _load_param_state(self, i: int, state: dict) -> None:
        self._m[i][...] = state.pop("m")
        self._v[i][...] = state.pop("v")
        self._param_t[i] = int(state.pop("param_t"))
        self._saw_dense[i] = bool(state.pop("saw_dense"))
        self._hist_base[i] = int(state.pop("hist_base"))
        if "row_steps" in state:
            self._row_steps[i] = np.array(state.pop("row_steps"),
                                          dtype=np.int64)
        else:
            self._row_steps[i] = None
        if "row_t" in state:
            self._row_t[i] = np.array(state.pop("row_t"), dtype=np.int64)
            hist = np.asarray(state.pop("lr_hist"), dtype=np.float64)
            self._lr_hist[i] = [(bool(had), float(lr)) for had, lr in hist]
        else:
            self._row_t[i] = None
            self._lr_hist[i] = None
        super()._load_param_state(i, state)

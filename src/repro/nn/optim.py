"""First-order optimizers.

The paper trains GNMR with Adam (lr 1e-3, exponential decay 0.96); the
other optimizers exist for baselines and for completeness of the substrate.

Optimizer state mirrors each parameter's dtype (``np.zeros_like``), and all
updates are in-place, so float32 models keep float32 state and updates even
if a stray float64 gradient reaches them.

Every optimizer also understands :class:`~repro.tensor.RowSparseGrad` — the
row-sparse gradients emitted by ``Tensor.embedding_rows`` on the sampled
training path — and applies *lazy* per-row updates: only the rows present
in the gradient are read or written, so the per-step optimizer cost scales
with the batch instead of the embedding-table size. Rows a sparse step does
not touch keep their state frozen (velocity, Adam moments, Adagrad
accumulators), the standard lazy semantics of sparse optimizers. Dense
gradients take the exact same code path as before, bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.tensor.rowsparse import RowSparseGrad


def _row_bias(correction: np.ndarray, values_ndim: int) -> np.ndarray:
    """Reshape a per-row (r,) factor to broadcast against (r, *row_shape)."""
    return correction.reshape(correction.shape + (1,) * (values_ndim - 1))


def global_grad_norm(parameters: list[Parameter]) -> float:
    """Global L2 norm over all gradients, sparse-grad aware.

    Accumulates in float64 so float32 models get a stable norm.
    """
    total = 0.0
    for p in parameters:
        grad = p.grad
        if grad is None:
            continue
        if isinstance(grad, RowSparseGrad):
            total += grad.sq_norm()
        else:
            flat = np.asarray(grad, dtype=np.float64)
            total += float(np.sum(flat * flat))
    return float(np.sqrt(total))


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global norm is at most ``max_norm``.

    Row-sparse gradients are scaled in place on their value block only —
    clipping never densifies. Returns the pre-clip global norm.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norm = global_grad_norm(parameters)
    if norm > max_norm:
        scale = max_norm / norm
        for p in parameters:
            grad = p.grad
            if grad is None:
                continue
            if isinstance(grad, RowSparseGrad):
                grad.scale_(scale)
            else:
                p.grad = grad * grad.dtype.type(scale)
    return norm


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, parameters: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla stochastic gradient descent."""

    def step(self) -> None:
        for p in self.parameters:
            if p.grad is None:
                continue
            if isinstance(p.grad, RowSparseGrad):
                g = p.grad
                p.data[g.indices] -= self.lr * g.values
            else:
                p.data -= self.lr * p.grad


class Momentum(Optimizer):
    """SGD with classical momentum.

    Sparse steps update velocity lazily: rows absent from the gradient keep
    their velocity untouched (no decay) until the next time they appear.
    """

    def __init__(self, parameters: list[Parameter], lr: float, momentum: float = 0.9):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if isinstance(p.grad, RowSparseGrad):
                g = p.grad
                rows = g.indices
                v[rows] = self.momentum * v[rows] - self.lr * g.values
                p.data[rows] += v[rows]
            else:
                v *= self.momentum
                v -= self.lr * p.grad
                p.data += v


class Adagrad(Optimizer):
    """Adagrad with accumulated squared gradients (naturally lazy)."""

    def __init__(self, parameters: list[Parameter], lr: float, eps: float = 1e-10):
        super().__init__(parameters, lr)
        self.eps = eps
        self._accum = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, acc in zip(self.parameters, self._accum):
            if p.grad is None:
                continue
            if isinstance(p.grad, RowSparseGrad):
                g = p.grad
                rows = g.indices
                acc[rows] += g.values ** 2
                p.data[rows] -= self.lr * g.values / (np.sqrt(acc[rows]) + self.eps)
            else:
                acc += p.grad ** 2
                p.data -= self.lr * p.grad / (np.sqrt(acc) + self.eps)


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015).

    Dense gradients use the global step count ``t`` exactly as the original
    implementation did. Row-sparse gradients run *lazy Adam*: moments are
    updated only on the touched rows, and bias correction uses a per-row
    step count (how many times that row has actually been updated) — the
    correction a fresh row needs, which the global ``t`` would understate
    drastically for rarely-sampled rows. Parameters that only ever receive
    dense gradients never allocate the per-row counters.
    """

    def __init__(self, parameters: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0
        self._row_steps: list[np.ndarray | None] = [None] * len(self.parameters)

    def _sparse_step(self, i: int, p: Parameter, g: RowSparseGrad) -> None:
        m, v = self._m[i], self._v[i]
        counts = self._row_steps[i]
        if counts is None:
            counts = np.zeros(p.data.shape[0], dtype=np.int64)
            # rows already advanced by earlier dense steps keep their global
            # count so their bias correction stays monotone
            counts[:] = self._t - 1
            self._row_steps[i] = counts
        rows = g.indices
        counts[rows] += 1
        values = g.values
        m[rows] = self.beta1 * m[rows] + (1.0 - self.beta1) * values
        v[rows] = self.beta2 * v[rows] + (1.0 - self.beta2) * values ** 2
        t_rows = counts[rows].astype(p.data.dtype)
        bias1 = _row_bias(1.0 - self.beta1 ** t_rows, values.ndim)
        bias2 = _row_bias(1.0 - self.beta2 ** t_rows, values.ndim)
        m_hat = m[rows] / bias1
        v_hat = v[rows] / bias2
        p.data[rows] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for i, (p, m, v) in enumerate(zip(self.parameters, self._m, self._v)):
            if p.grad is None:
                continue
            if isinstance(p.grad, RowSparseGrad):
                self._sparse_step(i, p, p.grad)
                continue
            if self._row_steps[i] is not None:
                # dense step on a row-tracked parameter advances every row
                self._row_steps[i] += 1
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so that every
model in the reproduction is fully seedable. Values are always *drawn* in
float64 and then rounded to the module default dtype, so a given seed
produces the same initialization (up to rounding) at every precision.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import get_default_dtype


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(get_default_dtype())


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot normal: N(0, 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(shape) * std).astype(get_default_dtype())


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Kaiming normal for ReLU networks: N(0, 2 / fan_in)."""
    fan_in, _ = _fans(shape)
    return (rng.standard_normal(shape) * np.sqrt(2.0 / fan_in)).astype(get_default_dtype())


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Plain Gaussian init, the classic MF embedding initializer."""
    return (rng.standard_normal(shape) * std).astype(get_default_dtype())


def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    return np.zeros(shape, dtype=get_default_dtype())


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out

"""Common neural layers used across GNMR and the baselines."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn import init as init_schemes
from repro.nn.module import Module, ModuleList, Parameter
from repro.tensor import Tensor, functional as F


class Identity(Module):
    """Pass-through layer (useful as an ablation stand-in)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Affine transform ``x @ Wᵀ + b``.

    Weights are stored as (out_features, in_features), applied to the last
    axis of the input (supports batched inputs of any leading shape).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None,
                 init: str = "xavier_uniform"):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        scheme = getattr(init_schemes, init)
        self.weight = Parameter(scheme((out_features, in_features), rng), name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight.T)
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table of ``num_embeddings`` rows of size ``embedding_dim``."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | None = None,
                 init: str = "xavier_normal"):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        scheme = getattr(init_schemes, init)
        self.weight = Parameter(scheme((num_embeddings, embedding_dim), rng), name="embedding")

    def forward(self, indices: np.ndarray) -> Tensor:
        return self.weight.gather_rows(np.asarray(indices))

    def rows(self, indices: np.ndarray) -> Tensor:
        """Row-sparse lookup for the sampled training path.

        Like calling the layer, but the backward pass emits a
        :class:`~repro.tensor.RowSparseGrad` over the touched rows instead
        of scatter-adding into a table-shaped zero array (see
        :meth:`~repro.tensor.Tensor.embedding_rows`); indices must be 1-D.
        """
        return self.weight.embedding_rows(np.asarray(indices, dtype=np.int64))

    #: alias so an ``Embedding`` can stand in wherever a raw table
    #: parameter (or a :class:`~repro.shard.ShardedEmbedding`) is expected,
    #: e.g. in ``l2_regularization_batch`` ``(table, rows)`` entries
    embedding_rows = rows

    def all(self) -> Tensor:
        """The full table as a tensor (for full-graph propagation)."""
        return self.weight


class Dropout(Module):
    """Inverted dropout honoring the module's ``training`` flag."""

    def __init__(self, rate: float, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, training=self.training, rng=self.rng)


_ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "relu": F.relu,
    "sigmoid": F.sigmoid,
    "tanh": F.tanh,
    "identity": lambda x: x,
    "leaky_relu": lambda x: x.leaky_relu(),
}


class MLP(Module):
    """Multi-layer perceptron with configurable hidden sizes and activation.

    ``sizes`` includes the input dimension, e.g. ``MLP([32, 16, 8])`` maps a
    32-d input to an 8-d output through one 16-d hidden layer. The final
    layer's activation is controlled separately (``out_activation``).
    """

    def __init__(self, sizes: Sequence[int], activation: str = "relu",
                 out_activation: str = "identity", dropout: float = 0.0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        rng = rng or np.random.default_rng()
        self.layers = ModuleList(
            [Linear(sizes[i], sizes[i + 1], rng=rng) for i in range(len(sizes) - 1)]
        )
        if activation not in _ACTIVATIONS or out_activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation: {activation!r} / {out_activation!r}")
        self.activation = activation
        self.out_activation = out_activation
        self.dropout = Dropout(dropout, rng=rng) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            x = layer(x)
            act = self.out_activation if i == last else self.activation
            x = _ACTIVATIONS[act](x)
            if self.dropout is not None and i != last:
                x = self.dropout(x)
        return x


class GRUCell(Module):
    """Gated recurrent unit cell (used by the DIPN baseline).

    Implements the standard GRU update:
        z = σ(W_z x + U_z h), r = σ(W_r x + U_r h),
        ĥ = tanh(W_h x + U_h (r ⊙ h)), h' = (1 − z) ⊙ h + z ⊙ ĥ.
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.x_proj = Linear(input_dim, 3 * hidden_dim, rng=rng)
        self.h_proj = Linear(hidden_dim, 3 * hidden_dim, bias=False, rng=rng)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        gates_x = self.x_proj(x)
        gates_h = self.h_proj(h)
        d = self.hidden_dim
        z = (gates_x[:, 0:d] + gates_h[:, 0:d]).sigmoid()
        r = (gates_x[:, d:2 * d] + gates_h[:, d:2 * d]).sigmoid()
        candidate = (gates_x[:, 2 * d:3 * d] + r * gates_h[:, 2 * d:3 * d]).tanh()
        return (1.0 - z) * h + z * candidate

    def initial_state(self, batch: int) -> Tensor:
        from repro.tensor import get_default_dtype

        return Tensor(np.zeros((batch, self.hidden_dim), dtype=get_default_dtype()))

"""Learning-rate schedules.

The paper applies an exponential decay of 0.96 during training; schedules
here mutate the wrapped optimizer's ``lr`` when :meth:`step` is called at
each epoch boundary.
"""

from __future__ import annotations

from repro.nn.optim import Optimizer


class ConstantSchedule:
    """No-op schedule (keeps the initial learning rate)."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer

    def step(self) -> float:
        return self.optimizer.lr


class ExponentialDecay:
    """lr ← lr₀ · rateᵉᵖᵒᶜʰ, the paper's 0.96 decay."""

    def __init__(self, optimizer: Optimizer, rate: float = 0.96):
        if not 0 < rate <= 1:
            raise ValueError("decay rate must be in (0, 1]")
        self.optimizer = optimizer
        self.rate = rate
        self.initial_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        self.optimizer.lr = self.initial_lr * self.rate ** self.epoch
        return self.optimizer.lr


class StepDecay:
    """Multiply lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.initial_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        self.optimizer.lr = self.initial_lr * self.gamma ** (self.epoch // self.step_size)
        return self.optimizer.lr

"""Loss functions for recommendation training.

The paper optimizes the pairwise hinge (margin) loss of Eq. (7):
``L = Σ_i Σ_s max(0, 1 − Pr_{i,ps} + Pr_{i,ns}) + λ‖Θ‖²_F``.
BPR is provided for baselines and for the loss ablation bench.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.tensor import Tensor, functional as F


def pairwise_hinge_loss(pos_scores: Tensor, neg_scores: Tensor,
                        margin: float = 1.0) -> Tensor:
    """Σ max(0, margin − pos + neg), summed over the batch (paper Eq. 7)."""
    return (margin - pos_scores + neg_scores).relu().sum()


def bpr_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """Bayesian personalized ranking: −Σ log σ(pos − neg)."""
    diff = pos_scores - neg_scores
    # -log σ(x) = softplus(-x), computed stably.
    return ((-diff).maximum(Tensor(np.zeros(diff.shape, dtype=diff.data.dtype)))
            + ((-(diff.abs())).exp() + 1.0).log()).sum()


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error (AutoRec / DMF reconstruction objectives)."""
    return F.mse(prediction, target)


def bce_with_logits_loss(logits: Tensor, target) -> Tensor:
    """Numerically stable binary cross-entropy on logits (NCF/NMTR)."""
    return F.binary_cross_entropy_with_logits(logits, target)


def softmax_cross_entropy(logits: Tensor, target_index: np.ndarray) -> Tensor:
    """Mean cross-entropy of integer targets under ``softmax(logits)``.

    ``logits``: (batch, classes); ``target_index``: (batch,) int array.
    """
    logp = F.log_softmax(logits, axis=-1)
    batch = logits.shape[0]
    picked = logp[np.arange(batch), np.asarray(target_index, dtype=np.int64)]
    return -picked.mean()


def l2_regularization(parameters: Iterable[Tensor], weight: float) -> Tensor:
    """λ Σ ‖θ‖²_F over the given parameters (0 tensor when weight == 0)."""
    params = list(parameters)
    if weight == 0.0 or not params:
        return Tensor(0.0)
    # accumulate in the parameters' own dtype so float32 models stay float32
    total = (params[0] * params[0]).sum()
    for p in params[1:]:
        total = total + (p * p).sum()
    return total * weight

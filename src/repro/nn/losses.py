"""Loss functions for recommendation training.

The paper optimizes the pairwise hinge (margin) loss of Eq. (7):
``L = Σ_i Σ_s max(0, 1 − Pr_{i,ps} + Pr_{i,ns}) + λ‖Θ‖²_F``.
BPR is provided for baselines and for the loss ablation bench.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.tensor import Tensor, functional as F


def pairwise_hinge_loss(pos_scores: Tensor, neg_scores: Tensor,
                        margin: float = 1.0) -> Tensor:
    """Σ max(0, margin − pos + neg), summed over the batch (paper Eq. 7)."""
    return (margin - pos_scores + neg_scores).relu().sum()


def bpr_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """Bayesian personalized ranking: −Σ log σ(pos − neg)."""
    diff = pos_scores - neg_scores
    # -log σ(x) = softplus(-x), computed stably.
    return ((-diff).maximum(Tensor(np.zeros(diff.shape, dtype=diff.data.dtype)))
            + ((-(diff.abs())).exp() + 1.0).log()).sum()


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error (AutoRec / DMF reconstruction objectives)."""
    return F.mse(prediction, target)


def bce_with_logits_loss(logits: Tensor, target) -> Tensor:
    """Numerically stable binary cross-entropy on logits (NCF/NMTR)."""
    return F.binary_cross_entropy_with_logits(logits, target)


def softmax_cross_entropy(logits: Tensor, target_index: np.ndarray) -> Tensor:
    """Mean cross-entropy of integer targets under ``softmax(logits)``.

    ``logits``: (batch, classes); ``target_index``: (batch,) int array.
    """
    logp = F.log_softmax(logits, axis=-1)
    batch = logits.shape[0]
    picked = logp[np.arange(batch), np.asarray(target_index, dtype=np.int64)]
    return -picked.mean()


def l2_regularization(parameters: Iterable[Tensor], weight: float) -> Tensor:
    """λ Σ ‖θ‖²_F over the given parameters (0 tensor when weight == 0)."""
    params = list(parameters)
    if weight == 0.0 or not params:
        return Tensor(0.0)
    # accumulate in the parameters' own dtype so float32 models stay float32
    total = (params[0] * params[0]).sum()
    for p in params[1:]:
        total = total + (p * p).sum()
    return total * weight


def l2_regularization_batch(embedding_rows: Iterable[tuple[Tensor, np.ndarray]],
                            dense_parameters: Iterable[Tensor],
                            weight: float) -> Tensor:
    """Batch-local λ‖Θ_batch‖²: penalize only the rows a step touched.

    The paper's regularizer is λ‖Θ‖² over the *batch* parameters — for a
    mini-batch of seed users that is a few hundred embedding rows plus the
    (small, always-touched) layer weights, not the full tables. Each
    ``(table, rows)`` pair is gathered with
    :meth:`~repro.tensor.Tensor.embedding_rows`, so the penalty's gradient
    reaches the table as a :class:`~repro.tensor.RowSparseGrad` and the
    whole regularization step stays row-sparse; ``dense_parameters`` (layer
    weights, biases) are penalized in full as before.

    Duplicate row indices are de-duplicated so a row sampled as both a
    positive and a negative is penalized once, matching the dense
    semantics where each parameter entry appears once in ‖Θ‖².
    """
    pairs = [(table, np.unique(np.asarray(rows, dtype=np.int64)))
             for table, rows in embedding_rows]
    dense = list(dense_parameters)
    if weight == 0.0 or (not pairs and not dense):
        return Tensor(0.0)
    total: Tensor | None = None
    for table, rows in pairs:
        if rows.size == 0:
            continue
        picked = table.embedding_rows(rows)
        term = (picked * picked).sum()
        total = term if total is None else total + term
    for p in dense:
        term = (p * p).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total * weight

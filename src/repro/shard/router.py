"""Gradient routing between full-table and shard-local coordinates.

In a parameter-server deployment the trainer computes one
:class:`~repro.tensor.RowSparseGrad` per logical table — (rows, value
block) pairs are exactly the wire format — and each server applies the
slice it owns. :class:`GradRouter` is that boundary: :meth:`split` routes
a full-table gradient into per-shard gradients in shard-local
coordinates, :meth:`merge` is the exact inverse, and :meth:`apply`
accumulates a full-table gradient onto a
:class:`~repro.shard.ShardedEmbedding`'s shard parameters so a stock
optimizer (with its shard-local lazy per-row state) can step them.

Routing is bit-exact: splitting reorders *rows*, never sums values —
duplicate-row coalescing happens inside ``RowSparseGrad`` with the same
per-row accumulation order the unsharded path uses.
"""

from __future__ import annotations

import numpy as np

from repro.shard.embedding import ShardedEmbedding
from repro.shard.spec import ShardSpec
from repro.tensor.rowsparse import RowSparseGrad, add_grads


class GradRouter:
    """Split/merge/apply gradients across a :class:`ShardSpec` partition."""

    def __init__(self, spec: ShardSpec):
        self.spec = spec

    # ------------------------------------------------------------------
    def split(self, grad) -> dict[int, RowSparseGrad | np.ndarray]:
        """Per-shard gradients (shard-local row coordinates) from a full one.

        Row-sparse input stays row-sparse — each shard receives only the
        rows it owns, re-indexed locally; shards owning none of the
        gradient's rows are absent from the result. A dense input is
        sliced into one dense block per shard (every shard present).
        """
        spec = self.spec
        if isinstance(grad, RowSparseGrad):
            if grad.num_rows != spec.num_rows:
                raise ValueError(f"gradient covers {grad.num_rows} rows, "
                                 f"spec {spec.num_rows}")
            out: dict[int, RowSparseGrad | np.ndarray] = {}
            shards = spec.shard_of(grad.indices)
            local = spec.local_of(grad.indices)
            for k in range(spec.num_shards):
                mask = shards == k
                if not mask.any():
                    continue
                out[k] = RowSparseGrad(local[mask], grad.values[mask],
                                       int(spec.shard_rows(k).size),
                                       coalesced=True)
            return out
        grad = np.asarray(grad)
        if grad.shape[0] != spec.num_rows:
            raise ValueError(f"gradient covers {grad.shape[0]} rows, "
                             f"spec {spec.num_rows}")
        return {k: grad[spec.shard_rows(k)] for k in range(spec.num_shards)}

    def merge(self, parts: dict[int, RowSparseGrad | np.ndarray]):
        """Reassemble a full-table gradient from per-shard pieces.

        The inverse of :meth:`split`: sparse pieces merge into one
        row-sparse gradient over global rows; any dense piece densifies
        the result (matching ``RowSparseGrad``'s mixing rules).
        """
        spec = self.spec
        if parts and any(not isinstance(g, RowSparseGrad)
                         for g in parts.values()):
            blocks = {k: (piece.to_dense() if isinstance(piece, RowSparseGrad)
                          else np.asarray(piece))
                      for k, piece in parts.items()}
            first = next(iter(blocks.values()))
            dense = np.zeros((spec.num_rows,) + first.shape[1:],
                             dtype=first.dtype)
            for k, block in blocks.items():
                dense[spec.shard_rows(spec._check_shard(k))] += block
            return dense
        indices = []
        values = []
        for k, piece in sorted(parts.items()):
            spec._check_shard(k)
            indices.append(spec.shard_rows(k)[piece.indices])
            values.append(piece.values)
        if not indices:
            return RowSparseGrad(np.empty(0, dtype=np.int64),
                                 np.empty((0,)), spec.num_rows)
        return RowSparseGrad(np.concatenate(indices),
                             np.concatenate(values), spec.num_rows)

    # ------------------------------------------------------------------
    def apply(self, table: ShardedEmbedding, grad) -> None:
        """Accumulate a full-table gradient onto the shard parameters.

        The parameter-server "push": after this, each shard parameter's
        ``.grad`` holds (only) its slice and a stock optimizer step
        applies shard-local updates with shard-local state. Gradients
        accumulate — call ``zero_grad`` between steps as usual.
        """
        if table.spec != self.spec:
            raise ValueError("table spec does not match router spec")
        for k, piece in self.split(grad).items():
            p = table.shards[k]
            p.grad = piece if p.grad is None else add_grads(p.grad, piece)

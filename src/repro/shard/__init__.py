"""Sharded embedding tables (parameter-server-style row partitioning).

The user/item embedding tables are the only model state that grows with
the catalog; everything else (propagation layers, MLP heads) is a few KB.
Once the tables outgrow one worker's memory, the standard industrial move
is to partition them row-wise across K shard servers and ship row-sparse
gradients — exactly the ``(rows, value block)`` wire format
:class:`~repro.tensor.RowSparseGrad` already carries. This package is
that partitioning, kept bit-compatible with the unsharded path:

* :class:`ShardSpec` — row-range or hashed partitioning arithmetic;
* :class:`ShardedEmbedding` — one logical table as K shard-local
  parameters with the same ``rows()`` / forward surface as
  ``nn.Embedding`` (and raw ``Parameter`` tables);
* :class:`GradRouter` — split/merge/apply between full-table gradients
  and shard-local ones;
* :mod:`repro.shard.reshard` — exact K→K' migration of checkpoints and
  training states (rows and their optimizer state move bit-for-bit).

The contract, enforced by ``tests/shard/``: ``shards=1`` bit-matches the
unsharded float64 goldens; ``shards=K`` matches ``shards=1`` bit-exactly
under SGD and within documented tolerance under Adam (in practice the
per-row lazy updates make Adam bit-exact too — the tolerance is the
contract, the exactness an implementation detail).
"""

from repro.shard.spec import ShardSpec, STRATEGIES
from repro.shard.embedding import (
    ShardedEmbedding,
    table_array,
    table_parameters,
    table_rows,
    table_tensor,
)
from repro.shard.router import GradRouter
from repro.shard.reshard import ReshardError, reshard_file, reshard_state

__all__ = [
    "ShardSpec",
    "STRATEGIES",
    "ShardedEmbedding",
    "GradRouter",
    "ReshardError",
    "reshard_file",
    "reshard_state",
    "table_array",
    "table_parameters",
    "table_rows",
    "table_tensor",
]

"""Partitioning specs for sharded embedding tables.

A :class:`ShardSpec` describes how the rows of one logical table are split
across ``K`` shard-local tables — the parameter-server layout where each
server owns a row partition of the user/item embedding matrix. Two
strategies cover the standard deployments:

* ``"range"`` — contiguous row ranges (shard 0 owns rows ``[0, n0)``,
  shard 1 owns ``[n0, n0+n1)``, …), the layout that keeps locality for
  id-sorted access patterns and makes shard boundaries human-readable;
* ``"hash"`` — modulo partitioning (row ``r`` lives on shard ``r % K``),
  the layout that load-balances skewed id distributions (hot low ids
  spread across every shard).

The spec is pure index arithmetic: it owns no data, is cheap to construct,
and every method is vectorized over numpy index arrays. ``shard_rows(k)``
enumerates a shard's global rows in ascending order, and ``local_of`` is
defined so that ``shard_rows(k)[local_of(r)] == r`` for every row ``r``
owned by shard ``k`` — the old↔shard maps :class:`~repro.shard.ShardedEmbedding`
and :class:`~repro.shard.GradRouter` build on.

>>> spec = ShardSpec(num_rows=10, num_shards=3, strategy="range")
>>> spec.shard_sizes()
[4, 3, 3]
>>> spec.shard_of([0, 3, 4, 9]).tolist()
[0, 0, 1, 2]
>>> ShardSpec(10, 3, strategy="hash").shard_rows(1).tolist()
[1, 4, 7]
"""

from __future__ import annotations

import numpy as np

#: partitioning strategies understood by :class:`ShardSpec`
STRATEGIES = ("range", "hash")


class ShardSpec:
    """Row-partitioning of a ``num_rows``-row table across ``num_shards``.

    Parameters
    ----------
    num_rows:
        Number of rows in the logical (unsharded) table.
    num_shards:
        K — number of logical shards; must be ≥ 1. ``num_shards=1`` is a
        valid degenerate spec (one shard owning every row) that the
        bit-parity contract is anchored on.
    strategy:
        ``"range"`` (contiguous row ranges) or ``"hash"`` (modulo).
    """

    __slots__ = ("num_rows", "num_shards", "strategy", "_offsets")

    def __init__(self, num_rows: int, num_shards: int, strategy: str = "range"):
        num_rows = int(num_rows)
        num_shards = int(num_shards)
        if num_rows < 0:
            raise ValueError("num_rows must be >= 0")
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if num_shards > max(num_rows, 1):
            raise ValueError(
                f"cannot split {num_rows} rows across {num_shards} shards "
                "(at most one shard per row)")
        if strategy not in STRATEGIES:
            raise ValueError(f"strategy must be one of {STRATEGIES}, "
                             f"got {strategy!r}")
        self.num_rows = num_rows
        self.num_shards = num_shards
        self.strategy = strategy
        # range strategy: front-load the remainder so sizes differ by ≤ 1
        base, extra = divmod(num_rows, num_shards)
        sizes = np.full(num_shards, base, dtype=np.int64)
        sizes[:extra] += 1
        self._offsets = np.concatenate([[0], np.cumsum(sizes)])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ShardSpec(num_rows={self.num_rows}, "
                f"num_shards={self.num_shards}, strategy={self.strategy!r})")

    def __eq__(self, other) -> bool:
        return (isinstance(other, ShardSpec)
                and self.num_rows == other.num_rows
                and self.num_shards == other.num_shards
                and self.strategy == other.strategy)

    def __hash__(self) -> int:
        return hash((self.num_rows, self.num_shards, self.strategy))

    # ------------------------------------------------------------------
    # row → shard maps
    # ------------------------------------------------------------------
    def _check(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.num_rows):
            raise IndexError(f"row index out of range [0, {self.num_rows})")
        return rows

    def shard_of(self, rows) -> np.ndarray:
        """Shard id owning each of the given global rows."""
        rows = self._check(rows)
        if self.strategy == "hash":
            return rows % self.num_shards
        return np.searchsorted(self._offsets, rows, side="right") - 1

    def local_of(self, rows) -> np.ndarray:
        """Each row's index inside its owning shard's local table."""
        rows = self._check(rows)
        if self.strategy == "hash":
            return rows // self.num_shards
        return rows - self._offsets[self.shard_of(rows)]

    def shard_sizes(self) -> list[int]:
        """Rows owned per shard, ``sum == num_rows``."""
        return [int(self.shard_rows(k).size) for k in range(self.num_shards)]

    def shard_rows(self, shard: int) -> np.ndarray:
        """Global rows owned by ``shard``, ascending (the shard→old map).

        Ascending order means ``shard_rows(k)[local] == global`` inverts
        :meth:`local_of` exactly.
        """
        shard = self._check_shard(shard)
        if self.strategy == "hash":
            return np.arange(shard, self.num_rows, self.num_shards,
                             dtype=np.int64)
        return np.arange(self._offsets[shard], self._offsets[shard + 1],
                         dtype=np.int64)

    def _check_shard(self, shard: int) -> int:
        shard = int(shard)
        if not 0 <= shard < self.num_shards:
            raise IndexError(f"shard {shard} out of range "
                             f"[0, {self.num_shards})")
        return shard

    # ------------------------------------------------------------------
    # batch routing
    # ------------------------------------------------------------------
    def split(self, rows) -> list[tuple[int, np.ndarray, np.ndarray]]:
        """Route a global row batch to its shards.

        Returns ``(shard, local_rows, positions)`` triples — one per shard
        that owns at least one of the requested rows, in ascending shard
        order. ``positions`` are the indices into the input batch, so a
        per-shard result block can be scattered back into batch order;
        duplicate input rows stay duplicated (routing must not coalesce —
        gradient rows are summed later, by ``RowSparseGrad``).
        """
        rows = self._check(rows)
        shards = self.shard_of(rows)
        local = self.local_of(rows)
        out = []
        for k in range(self.num_shards):
            positions = np.flatnonzero(shards == k)
            if positions.size:
                out.append((k, local[positions], positions))
        return out

    def assemble(self, parts: list[np.ndarray]) -> np.ndarray:
        """Reassemble one full table from per-shard row blocks.

        ``parts[k]`` must hold shard ``k``'s rows in ``shard_rows(k)``
        order. Inverse of slicing the table by ``shard_rows`` — bit-exact.
        """
        if len(parts) != self.num_shards:
            raise ValueError(f"expected {self.num_shards} parts, "
                             f"got {len(parts)}")
        parts = [np.asarray(part) for part in parts]
        row_shape = parts[0].shape[1:]
        dtype = np.result_type(*[p.dtype for p in parts]) if parts else None
        out = np.empty((self.num_rows,) + row_shape, dtype=dtype)
        for k, part in enumerate(parts):
            rows = self.shard_rows(k)
            if part.shape[0] != rows.size or part.shape[1:] != row_shape:
                raise ValueError(
                    f"shard {k} block has shape {part.shape}, expected "
                    f"({rows.size},) + {row_shape}")
            out[rows] = part
        return out

"""K→K' migration of sharded tables inside checkpoints and train states.

Production tables get resharded: a table trained across K shard servers
has to move to K' (scale-out, scale-in, or a range↔hash layout change)
without losing a step of training. Because a :class:`~repro.shard.ShardSpec`
is pure index arithmetic over one logical table, migration is exact:
assemble each table's K shard blocks back into the full logical array,
then re-split it under the new spec. No float is ever recomputed — rows
move, bit for bit.

Optimizer state moves *with its rows*. Every per-row slot (Adam moments
``m``/``v``, lazy per-row step counters, exact-mode row timestamps,
Momentum velocity, Adagrad accumulators) is assembled and re-split under
the same specs as its table, so a row's clock and moments follow it to its
new shard. Per-parameter scalars (the Adam step clock ``param_t``, the
replay history) are validated equal across the old shards — the trainer
advances every shard's clock on every step, so they must agree — and
replicated to each new shard.

The contract, pinned by ``tests/shard/test_reshard.py`` and the resume
parity suite: training resumed from a resharded training state bit-matches
training that never resharded (same loss trace, same final logical
tables), riding the PR-5 invariance that ``shards=K`` training is
layout-independent.

One documented limitation: a *lazy* Adam per-row counter that was never
materialized on some old shards but materialized on others cannot be
migrated exactly when shard boundaries move (the unmaterialized baseline
is a property of the shard's future first touch, not of its rows);
:class:`ReshardError` is raised rather than guessing. In practice every
shard is touched within the first training step, so counters materialize
together.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np

from repro.shard.spec import STRATEGIES, ShardSpec

#: state-dict key of shard ``k`` of a sharded table (the attribute path
#: ``{base}.shards.{k}`` that :class:`~repro.shard.ShardedEmbedding`'s
#: parameter list produces)
_SHARD_KEY = re.compile(r"^(?P<base>.+)\.shards\.(?P<k>\d+)$")

#: optimizer-state slots indexed by table row (first dim == shard rows):
#: these migrate with their rows; every other slot is per-parameter and
#: must be identical across a table's shards
ROW_SLOTS = ("m", "v", "velocity", "accum", "row_steps", "row_t")


class ReshardError(ValueError):
    """A state cannot be migrated to the requested shard layout."""


def find_sharded_tables(keys) -> dict[str, list[str]]:
    """``base → [shard-0 key, …, shard-(K-1) key]`` over state-dict keys.

    Validates each table's shard indices are dense ``0..K-1``.
    """
    by_base: dict[str, dict[int, str]] = {}
    for key in keys:
        match = _SHARD_KEY.match(key)
        if match:
            by_base.setdefault(match["base"], {})[int(match["k"])] = key
    tables: dict[str, list[str]] = {}
    for base, by_k in sorted(by_base.items()):
        ks = sorted(by_k)
        if ks != list(range(len(ks))):
            raise ReshardError(f"table {base!r} has shard indices {ks}, "
                               f"expected 0..{len(ks) - 1}")
        tables[base] = [by_k[k] for k in ks]
    return tables


def _assemble(base: str, parts: list[np.ndarray],
              strategy: str) -> tuple[np.ndarray, ShardSpec]:
    """Full logical array + the old spec from per-shard blocks."""
    num_rows = int(sum(p.shape[0] for p in parts))
    spec = ShardSpec(num_rows, len(parts), strategy)
    sizes = spec.shard_sizes()
    for k, part in enumerate(parts):
        if part.shape[0] != sizes[k]:
            raise ReshardError(
                f"table {base!r} shard {k} holds {part.shape[0]} rows; a "
                f"{strategy!r} split of {num_rows} rows across "
                f"{len(parts)} shards owns {sizes[k]} — wrong "
                "--old-strategy or a corrupted state")
    return spec.assemble(parts), spec


def _split(full: np.ndarray, spec: ShardSpec) -> list[np.ndarray]:
    return [np.ascontiguousarray(full[spec.shard_rows(k)])
            for k in range(spec.num_shards)]


def _reshard_param_states(base: str, states: list[dict], old_spec: ShardSpec,
                          new_spec: ShardSpec) -> list[dict]:
    """Migrate one table's per-shard optimizer states to the new spec."""
    slot_names: set[str] = set()
    for state in states:
        slot_names.update(state)
    new_states: list[dict] = [{} for _ in range(new_spec.num_shards)]
    for slot in sorted(slot_names):
        present = [slot in state for state in states]
        if slot in ROW_SLOTS:
            if not all(present):
                owners = [k for k, p in enumerate(present) if p]
                raise ReshardError(
                    f"table {base!r} slot {slot!r} is materialized on "
                    f"shards {owners} but not the rest — lazy per-row "
                    "state cannot move across shard boundaries before it "
                    "materializes everywhere (train at least one step "
                    "touching every shard, then reshard)")
            full = old_spec.assemble([np.asarray(state[slot])
                                      for state in states])
            for k, block in enumerate(_split(full, new_spec)):
                new_states[k][slot] = block
            continue
        # per-parameter slot: equal across shards, replicated to each new one
        if not all(present):
            raise ReshardError(f"table {base!r} slot {slot!r} is missing "
                               "from some shards")
        first = states[0][slot]
        for k, state in enumerate(states[1:], start=1):
            value = state[slot]
            same = (np.array_equal(first, value)
                    if isinstance(first, np.ndarray) else first == value)
            if not same:
                raise ReshardError(
                    f"table {base!r} slot {slot!r} differs between shard 0 "
                    f"and shard {k} ({first!r} vs {value!r}) — the shards "
                    "were not stepped in lockstep, so their clocks cannot "
                    "be replicated to a new layout")
        for state in new_states:
            state[slot] = first
    return new_states


def reshard_state(model_state: dict[str, np.ndarray],
                  optimizer_states: dict[str, dict] | None, *,
                  num_shards: int, strategy: str = "range",
                  old_strategy: str = "range",
                  ) -> tuple[dict, dict | None, dict]:
    """Migrate every sharded table in a state dict to ``num_shards``.

    Returns ``(new_model_state, new_optimizer_states, tables)`` where
    ``tables`` maps each migrated base name to its row count and old shard
    count. Unsharded entries pass through untouched (same objects).
    """
    if strategy not in STRATEGIES or old_strategy not in STRATEGIES:
        raise ReshardError(f"strategy must be one of {STRATEGIES}")
    tables = find_sharded_tables(model_state)
    if not tables:
        raise ReshardError(
            "no sharded tables found (no '<base>.shards.<k>' keys) — only "
            "models built with shards (e.g. --shards K) can be resharded")
    new_model = {key: value for key, value in model_state.items()
                 if _SHARD_KEY.match(key) is None}
    new_opt = None
    if optimizer_states is not None:
        new_opt = {key: value for key, value in optimizer_states.items()
                   if _SHARD_KEY.match(key) is None}
    info: dict[str, dict] = {}
    for base, keys in tables.items():
        parts = [np.asarray(model_state[key]) for key in keys]
        full, old_spec = _assemble(base, parts, old_strategy)
        try:
            new_spec = ShardSpec(old_spec.num_rows, num_shards, strategy)
        except ValueError as exc:
            raise ReshardError(
                f"cannot reshard table {base!r} to {num_shards} shards: "
                f"{exc}") from exc
        for k, block in enumerate(_split(full, new_spec)):
            new_model[f"{base}.shards.{k}"] = block
        info[base] = {"rows": old_spec.num_rows,
                      "old_shards": old_spec.num_shards}
        if optimizer_states is not None:
            old_states = [optimizer_states.get(key) for key in keys]
            present = [state is not None for state in old_states]
            if any(present):
                if not all(present):
                    raise ReshardError(
                        f"table {base!r} has optimizer state for some "
                        "shards but not others")
                migrated = _reshard_param_states(base, old_states, old_spec,
                                                 new_spec)
                for k, state in enumerate(migrated):
                    new_opt[f"{base}.shards.{k}"] = state
    return new_model, new_opt, info


def reshard_file(input_path: str | Path, output_path: str | Path,
                 num_shards: int, *, strategy: str | None = None,
                 old_strategy: str | None = None, verify: bool = True) -> dict:
    """Reshard a checkpoint or training-state file on disk.

    Accepts both artifact kinds (they share the archive format):

    * a model checkpoint written by
      :func:`repro.utils.checkpoint.save_checkpoint` — tables are
      migrated and the ``shards``/``shard_strategy`` metadata updated so
      the serving CLI rebuilds the right layout;
    * a training state written by ``TrainConfig.save_state`` — tables
      *and* per-row optimizer state are migrated, and the embedded config
      echo's ``shards`` updated so ``--resume`` accepts it.

    Strategies default to the file's recorded ``shard_strategy`` (both
    old and new), so a plain ``reshard --shards K'`` keeps the layout
    family. The output is written atomically; returns a summary dict.
    """
    from repro.train.resume import (
        TRAIN_STATE_FORMAT,
        load_training_state,
        save_training_state,
    )
    from repro.utils.checkpoint import load_arrays, save_arrays

    if num_shards < 1:
        raise ReshardError("num_shards must be >= 1")
    arrays, meta = load_arrays(input_path, verify=verify)
    recorded = meta.get("shard_strategy") or "range"
    old_strategy = old_strategy or recorded
    strategy = strategy or old_strategy
    is_train_state = meta.get("format") == TRAIN_STATE_FORMAT
    if is_train_state:
        state = load_training_state(input_path, verify=verify)
        new_model, new_opt, tables = reshard_state(
            state.model_state, state.optimizer_states,
            num_shards=num_shards, strategy=strategy,
            old_strategy=old_strategy)
        new_meta = {key: value for key, value in state.meta.items()
                    if key not in ("format", "state_version",
                                   "optim_scalars", "array_sha256")}
        new_meta["config"] = dict(new_meta.get("config", {}),
                                  shards=num_shards)
        new_meta["shard_strategy"] = strategy
        save_training_state(output_path, new_model, new_opt, new_meta)
    else:
        new_model, _, tables = reshard_state(
            arrays, None, num_shards=num_shards, strategy=strategy,
            old_strategy=old_strategy)
        new_meta = {key: value for key, value in meta.items()
                    if key != "array_sha256"}
        new_meta["shards"] = num_shards
        new_meta["shard_strategy"] = strategy
        save_arrays(output_path, new_model, new_meta)
    return {"format": "train-state" if is_train_state else "checkpoint",
            "tables": tables, "shards": num_shards, "strategy": strategy,
            "old_strategy": old_strategy}

"""Sharded embedding tables with a drop-in ``nn.Embedding`` surface.

:class:`ShardedEmbedding` stores one logical ``(num_rows, *row_shape)``
table as K shard-local :class:`~repro.nn.module.Parameter` blocks laid out
by a :class:`~repro.shard.ShardSpec` — the parameter-server partitioning of
the user/item tables. The forward surfaces mirror the unsharded layers
bit for bit:

* :meth:`rows` / :meth:`embedding_rows` — the sampled-training gather;
  indices are routed to their shards, each shard block is gathered with
  the row-sparse ``embedding_rows`` op (so backward emits one
  :class:`~repro.tensor.RowSparseGrad` *per shard*, in shard-local
  coordinates), and the pieces are permuted back into batch order.
* :meth:`forward` / :meth:`all` — the dense full-graph path; ``all()``
  reassembles the logical table (exact row copies, dense gradients flow
  back as per-shard blocks), matching the unsharded dense-Adam semantics.

Because each shard is its own ``Parameter``, every optimizer state slot —
velocity, Adagrad accumulators, Adam moments *and the lazy per-row step
counters* — is naturally shard-local: state never crosses shards, which
is exactly the invariant a parameter-server deployment needs.

Each shard parameter is tagged with ``.shard = k`` so
:func:`repro.nn.optim.shard_param_groups` can build per-shard optimizer
parameter groups without knowing about this class.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init as init_schemes
from repro.nn.module import Module, Parameter
from repro.shard.spec import ShardSpec
from repro.tensor import Tensor
from repro.tensor.tensor import concat


class ShardedEmbedding(Module):
    """One logical embedding table stored as K shard-local parameters.

    Parameters
    ----------
    weight:
        The full ``(num_rows, *row_shape)`` table to shard. Construction
        slices this exact array row-by-row, so a sharded table initialized
        from the same array as an unsharded one holds bit-identical values
        (the anchor of the ``shards=1`` parity contract). 1-D tables
        (bias vectors) shard the same way with an empty ``row_shape``.
    spec:
        Row partitioning; a :class:`~repro.shard.ShardSpec` or ``None``
        to build one from ``num_shards``/``strategy``.
    num_shards, strategy:
        Convenience spec construction when ``spec`` is ``None``.
    name:
        Base parameter name; shard ``k`` is named ``{name}[shard{k}]``.
    """

    def __init__(self, weight: np.ndarray, spec: ShardSpec | None = None, *,
                 num_shards: int = 1, strategy: str = "range",
                 name: str = "sharded"):
        super().__init__()
        weight = np.asarray(weight)
        if weight.ndim < 1:
            raise ValueError("weight must have at least one (row) dimension")
        if spec is None:
            spec = ShardSpec(weight.shape[0], num_shards, strategy)
        elif spec.num_rows != weight.shape[0]:
            raise ValueError(f"spec covers {spec.num_rows} rows but weight "
                             f"has {weight.shape[0]}")
        self.spec = spec
        self.table_name = name
        self.shards: list[Parameter] = []
        for k in range(spec.num_shards):
            p = Parameter(weight[spec.shard_rows(k)], name=f"{name}[shard{k}]")
            p.shard = k
            self.shards.append(p)
        # hash layout needs a permutation to reassemble concat → global order;
        # range layout concatenates in global order already (identity map)
        if spec.strategy == "range" or spec.num_shards == 1:
            self._concat_order = None
        else:
            order = np.empty(spec.num_rows, dtype=np.int64)
            offset = 0
            for k in range(spec.num_shards):
                rows = spec.shard_rows(k)
                order[rows] = offset + np.arange(rows.size)
                offset += rows.size
            self._concat_order = order

    # ------------------------------------------------------------------
    @classmethod
    def init(cls, num_embeddings: int, row_shape: int | tuple[int, ...],
             rng: np.random.Generator | None = None, *,
             init: str = "xavier_normal", num_shards: int = 1,
             strategy: str = "range", name: str = "embedding",
             ) -> "ShardedEmbedding":
        """Mirror ``nn.Embedding``'s initialization, then shard the table.

        The full table is drawn first with the same scheme and rng stream
        as the unsharded layer would use, then split — so ``num_shards=1``
        and ``nn.Embedding`` start from bit-identical weights.
        """
        rng = rng or np.random.default_rng()
        if isinstance(row_shape, int):
            row_shape = (row_shape,)
        scheme = getattr(init_schemes, init)
        weight = scheme((num_embeddings,) + tuple(row_shape), rng)
        return cls(weight, num_shards=num_shards, strategy=strategy, name=name)

    # ------------------------------------------------------------------
    @property
    def num_embeddings(self) -> int:
        return self.spec.num_rows

    @property
    def row_shape(self) -> tuple[int, ...]:
        return self.shards[0].data.shape[1:]

    @property
    def embedding_dim(self) -> int | None:
        """Row width for 2-D tables; ``None`` for 1-D bias tables."""
        return self.row_shape[0] if self.row_shape else None

    @property
    def num_shards(self) -> int:
        return self.spec.num_shards

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ShardedEmbedding({self.num_embeddings} rows x "
                f"{self.row_shape}, shards={self.num_shards}, "
                f"strategy={self.spec.strategy!r})")

    # ------------------------------------------------------------------
    # row-sparse (sampled training) path
    # ------------------------------------------------------------------
    def rows(self, indices) -> Tensor:
        """Row gather whose backward emits one ``RowSparseGrad`` per shard.

        Same forward values as the unsharded ``embedding_rows`` gather —
        indices are split by owning shard, each shard-local block is
        gathered row-sparsely, and the per-shard pieces are permuted back
        to batch order (an exact, per-row-unique scatter: no float
        reordering anywhere).
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise ValueError("rows expects 1-D row indices "
                             f"(got shape {indices.shape})")
        if self.num_shards == 1:
            return self.shards[0].embedding_rows(indices)
        routed = self.spec.split(indices)
        if not routed:  # empty batch
            return self.shards[0].embedding_rows(indices)
        if len(routed) == 1:
            _, local, _ = routed[0]
            piece = self.shards[routed[0][0]].embedding_rows(local)
            return piece
        pieces = [self.shards[k].embedding_rows(local)
                  for k, local, _ in routed]
        positions = np.concatenate([pos for _, _, pos in routed])
        unpermute = np.empty(indices.size, dtype=np.int64)
        unpermute[positions] = np.arange(indices.size)
        return concat(pieces, axis=0).gather_rows(unpermute)

    #: alias so ``(table, rows)`` pairs work in ``l2_regularization_batch``
    #: exactly like a raw ``Parameter`` table
    embedding_rows = rows

    # ------------------------------------------------------------------
    # dense (full-graph) path
    # ------------------------------------------------------------------
    def all(self) -> Tensor:
        """The full logical table as one tensor (dense gradients).

        With one shard this *is* the shard parameter — the same autograd
        node the unsharded path trains, hence bit-parity for free. With K
        shards the blocks are concatenated (and, for hash layout, permuted
        back to global row order); backward splits the dense gradient into
        exact per-shard blocks.

        Assembly is deliberately NOT cached: the optimizer mutates shard
        data in place between calls, and a stale autograd node would be a
        silent correctness bug. Inference paths that call this repeatedly
        should memoize at their own level, where invalidation is visible
        (the graph models already do, via the engine's version-keyed
        cache).
        """
        if self.num_shards == 1:
            return self.shards[0]
        stacked = concat(list(self.shards), axis=0)
        if self._concat_order is None:
            return stacked
        return stacked.gather_rows(self._concat_order)

    def forward(self, indices) -> Tensor:
        """Dense-path lookup (``layer(indices)``), any index shape."""
        indices = np.asarray(indices, dtype=np.int64)
        return self.all().gather_rows(indices)

    # ------------------------------------------------------------------
    # numpy views (serving / inspection)
    # ------------------------------------------------------------------
    def shard_arrays(self) -> list[np.ndarray]:
        """Per-shard weight blocks (the arrays a shard server would own)."""
        return [p.data for p in self.shards]

    def dense_table(self) -> np.ndarray:
        """The assembled logical table as a plain array (copy)."""
        return self.spec.assemble(self.shard_arrays())


def table_tensor(table) -> Tensor:
    """Full-table tensor for the dense/full-graph path.

    Accepts the three table kinds the models use interchangeably: a raw
    :class:`~repro.nn.module.Parameter` (returned as-is), an
    ``nn.Embedding`` (its weight), or a :class:`ShardedEmbedding` (the
    assembled table).
    """
    if isinstance(table, Tensor):
        return table
    return table.all()


def table_rows(table, indices) -> Tensor:
    """Row-sparse gather for the sampled path, any table kind."""
    if isinstance(table, Tensor):
        return table.embedding_rows(np.asarray(indices, dtype=np.int64))
    return table.rows(np.asarray(indices, dtype=np.int64))


def table_parameters(table) -> list[Parameter]:
    """The trainable parameters behind a table (1 dense or K shard blocks)."""
    if isinstance(table, Tensor):
        return [table]
    return table.parameters()


def table_array(table) -> np.ndarray:
    """Inference-time numpy view of a table's full contents."""
    if isinstance(table, Tensor):
        return table.data
    if isinstance(table, ShardedEmbedding):
        return table.dense_table()
    return table.weight.data

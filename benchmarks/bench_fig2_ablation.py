"""Figure 2 — component ablation on MovieLens-like and Yelp-like data.

GNMR-be removes the type-specific behavior embedding layer η; GNMR-ma
removes the cross-behavior attention ξ. The paper reports the full model
winning on both datasets and both metrics.
"""

import pytest

from benchmarks.conftest import run_once, save_results
from repro.experiments import format_table, run_fig2


@pytest.mark.parametrize("dataset", ["movielens", "yelp"])
def test_fig2_component_ablation(benchmark, bench_scale, dataset):
    results = run_once(benchmark, run_fig2, dataset, bench_scale)
    save_results(f"fig2_{dataset}", results)
    print()
    print(format_table(results, title=f"Figure 2 — ablation on {dataset}"))

    full = results["GNMR"]
    for variant in ("GNMR-be", "GNMR-ma"):
        delta_hr = full["HR@10"] - results[variant]["HR@10"]
        delta_ndcg = full["NDCG@10"] - results[variant]["NDCG@10"]
        print(f"GNMR vs {variant}: ΔHR@10={delta_hr:+.3f} ΔNDCG@10={delta_ndcg:+.3f}")

    for row in results.values():
        assert 0.0 <= row["NDCG@10"] <= row["HR@10"] <= 1.0
    # shape: removing a component must never *help* beyond small-scale noise
    # (paper: the full model is strictly better on both metrics).
    for variant in ("GNMR-be", "GNMR-ma"):
        assert results[variant]["HR@10"] <= full["HR@10"] + 0.05, \
            f"{variant} beats full GNMR by more than noise on {dataset}"
        assert results[variant]["NDCG@10"] <= full["NDCG@10"] + 0.05

"""HTTP serving-tier benchmarks: latency SLOs under concurrent load.

Measures the ``repro.serve.http`` tier end to end — real sockets, real
handler threads, the request-coalescing :class:`DynamicBatcher` in the
middle — with closed-loop clients (each holds one keep-alive connection
and fires its next request the moment the previous answer lands). Three
configurations over one synthetic factored catalog:

* ``exact_single`` — one client, ``max_batch=1``: the no-coalescing
  baseline every speedup is quoted against;
* ``exact_batched`` — ≥8 concurrent clients against the exact blocked
  retriever with coalescing on;
* ``ivf_int8_batched`` — the same client fleet against the approximate
  retriever (IVF inverted lists, int8 compressed-domain scoring).

Each configuration reports p50/p99/max request latency and sustained
users/sec, plus the batcher's coalescing counters. Every response body
is compared against a library-direct ``RecommendationService.recommend``
call for the same users — the HTTP tier must be a transport, not a
different answer (``bit_match``). The regression gate
(``benchmarks/check_regression.py``) requires the batched exact
configuration to sustain ≥ ``BENCH_HTTP_BATCH_MIN``× the single-client
throughput with ``bit_match`` true everywhere.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_http_serving.py
"""

import json
import socket
import threading
import time
from pathlib import Path

import numpy as np

from repro.serve import RecommendationService
from repro.serve.http import RecommendationHTTPServer

RESULTS_PATH = Path(__file__).parent / "results" / "http_serving.json"

TOP_K = 10
NUM_USERS = 8192
# the catalog must be big enough that the blocked scan (not per-request
# HTTP/JSON overhead) dominates — that scan is what coalescing amortizes:
# one batched GEMM over the ~200MB item matrix instead of one scan per
# requester
NUM_ITEMS = 400_000
DIM = 128
REQUEST_USERS = 256          # distinct users the clients cycle through
SINGLE_REQUESTS = 192        # exact_single request count
# 16 concurrent clients: the scan's per-user cost keeps dropping through
# batch 16 (≈3x over single-user), so the fleet is sized to let coalesced
# batches actually reach that width
BATCHED_CLIENTS = 16
REQUESTS_PER_CLIENT = 64     # per client in the batched configurations


class _FactoredTables:
    """A snapshot-able stand-in model: fixed serving tables, no training.

    Exposes exactly what :class:`~repro.serve.EmbeddingStore` needs
    (``serving_embeddings`` + user/item counts); having no ``engine``
    means the snapshot is never observably stale, so the benchmark
    measures steady-state serving with the freshness watcher idle.
    """

    name = "factored-tables"

    def __init__(self, num_users: int, num_items: int, dim: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.num_users = int(num_users)
        self.num_items = int(num_items)
        self._user = rng.standard_normal((num_users, dim)).astype(np.float32)
        self._item = rng.standard_normal((num_items, dim)).astype(np.float32)

    def serving_embeddings(self):
        return self._user, self._item


def _reference_matmul_seconds(rounds: int = 5) -> float:
    """Fixed dense matmul timing — normalizes throughput across machines."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((1024, 256)).astype(np.float32)
    b = rng.standard_normal((256, 2048)).astype(np.float32)
    a @ b  # warm up
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        a @ b
        best = min(best, time.perf_counter() - start)
    return best


def _percentile(ordered: list, q: float) -> float:
    index = max(0, min(len(ordered) - 1, int(np.ceil(q * len(ordered))) - 1))
    return ordered[index]


def _client_loop(host: str, port: int, users: list, k: int,
                 go: threading.Event, latencies: list, responses: list) -> None:
    """One closed-loop client: keep-alive connection, back-to-back requests.

    Hand-rolled over a raw socket rather than ``http.client``: every
    client thread shares the server's CPUs, so client-side parsing
    overhead directly suppresses the throughput being measured.
    """
    sock = socket.create_connection((host, port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    reader = sock.makefile("rb")
    try:
        go.wait()
        for user in users:
            request = (f"GET /recommend?user={user}&k={k} HTTP/1.1\r\n"
                       f"Host: {host}\r\n\r\n").encode("ascii")
            start = time.perf_counter()
            sock.sendall(request)
            status = int(reader.readline().split()[1])
            length = 0
            while True:
                line = reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                if line.lower().startswith(b"content-length:"):
                    length = int(line.split(b":", 1)[1])
            body = reader.read(length)
            latencies.append(time.perf_counter() - start)
            responses.append((user, status, json.loads(body)))
    finally:
        reader.close()
        sock.close()


def measure_http_config(service: RecommendationService, *, clients: int,
                        requests_per_client: int, max_batch: int,
                        max_wait_ms: float, k: int = TOP_K) -> dict:
    """Drive one server configuration with a closed-loop client fleet."""
    server = RecommendationHTTPServer(service, port=0, max_batch=max_batch,
                                      max_wait_ms=max_wait_ms).start()
    go = threading.Event()
    latencies: list[list[float]] = [[] for _ in range(clients)]
    responses: list[list[tuple]] = [[] for _ in range(clients)]
    try:
        threads = []
        for i in range(clients):
            # disjoint user strides so the fleet covers the request pool
            users = [(i + j * clients) % REQUEST_USERS
                     for j in range(requests_per_client)]
            thread = threading.Thread(
                target=_client_loop,
                args=("127.0.0.1", server.port, users, k, go,
                      latencies[i], responses[i]),
                daemon=True)
            thread.start()
            threads.append(thread)
        started = time.perf_counter()
        go.set()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        batcher_stats = server.batcher.stats()
    finally:
        server.close()

    # library-direct references for every user the fleet could request —
    # the HTTP tier must return byte-identical rankings and scores. Two
    # reference shapes because BLAS accumulates a 1-row matmul (GEMV
    # kernel) differently from the n-row GEMM: a response must bit-match
    # the direct call of its batch arity — coalesced rows match the
    # batched reference, singleton flushes match the single-user one.
    # Either way the ranking is identical; the HTTP tier adds no third
    # answer of its own.
    ref_multi = {row["user"]: row["items"]
                 for row in service.recommend(
                     np.arange(REQUEST_USERS, dtype=np.int64), k).to_payload()}
    ref_single = {user: service.recommend(
                      np.asarray([user], dtype=np.int64), k).to_payload()[0]["items"]
                  for user in range(REQUEST_USERS)}
    total = clients * requests_per_client
    flat = [entry for per_client in responses for entry in per_client]
    errors = sum(1 for _, status, _ in flat if status != 200)
    bit_match = (len(flat) == total and errors == 0 and
                 all(payload["items"] in (ref_multi[user], ref_single[user])
                     for user, _, payload in flat))
    ordered = sorted(seconds for per_client in latencies for seconds in per_client)
    return {
        "clients": clients,
        "requests": total,
        "max_batch": max_batch,
        "max_wait_ms": max_wait_ms,
        "k": k,
        "errors": errors,
        "bit_match": bool(bit_match),
        "p50_ms": _percentile(ordered, 0.50) * 1000.0,
        "p99_ms": _percentile(ordered, 0.99) * 1000.0,
        "max_ms": ordered[-1] * 1000.0,
        "users_per_sec": total / wall,
        "wall_seconds": wall,
        "batcher": {key: batcher_stats[key]
                    for key in ("batches", "largest_batch", "mean_batch_size")},
    }


def collect() -> dict:
    """All three configurations over one synthetic factored catalog."""
    model = _FactoredTables(NUM_USERS, NUM_ITEMS, DIM, seed=0)
    exact_service = RecommendationService(model, k_default=TOP_K)
    payload: dict = {
        "workload": {
            "num_users": NUM_USERS,
            "num_items": NUM_ITEMS,
            "dim": DIM,
            "k": TOP_K,
            "request_users": REQUEST_USERS,
            "dtype": "float32",
        },
        "configs": {},
    }
    payload["configs"]["exact_single"] = measure_http_config(
        exact_service, clients=1, requests_per_client=SINGLE_REQUESTS,
        max_batch=1, max_wait_ms=0.0)
    payload["configs"]["exact_batched"] = measure_http_config(
        exact_service, clients=BATCHED_CLIENTS,
        requests_per_client=REQUESTS_PER_CLIENT, max_batch=32,
        max_wait_ms=2.0)
    ivf_service = RecommendationService(
        model, k_default=TOP_K, retriever="ivf",
        ann={"quant": "int8", "nprobe": 8})
    payload["configs"]["ivf_int8_batched"] = measure_http_config(
        ivf_service, clients=BATCHED_CLIENTS,
        requests_per_client=REQUESTS_PER_CLIENT, max_batch=32,
        max_wait_ms=2.0)
    single = payload["configs"]["exact_single"]["users_per_sec"]
    batched = payload["configs"]["exact_batched"]["users_per_sec"]
    payload["batched_speedup_vs_single"] = batched / single
    payload["reference_matmul_seconds"] = _reference_matmul_seconds()
    return payload


def save(payload: dict, path: Path = RESULTS_PATH) -> Path:
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


# ----------------------------------------------------------------------
# pytest-benchmark entry point (explicit runs on dedicated hardware)
# ----------------------------------------------------------------------

def test_bench_http_serving(benchmark):
    from conftest import run_once, save_results

    results = run_once(benchmark, collect)
    save_results("http_serving", results)
    for name, config in results["configs"].items():
        assert config["errors"] == 0, f"{name} saw non-200 responses"
        assert config["bit_match"], f"{name} diverged from library-direct calls"
        assert config["users_per_sec"] > 0
    assert results["configs"]["exact_batched"]["clients"] >= 8
    assert results["batched_speedup_vs_single"] >= 2.0


if __name__ == "__main__":  # CI path: no pytest required
    payload = collect()
    path = save(payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}")

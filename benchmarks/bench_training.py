"""Training throughput benchmarks: full vs sampled vs async-pipelined steps.

Measures per-step wall time and steps/sec of GNMR pairwise training under
``TrainConfig.propagation="full"`` (whole-graph SpMM + dense optimizer
sweep every step), ``"sampled"`` (fanout-capped monolithic subgraph,
row-sparse embedding gradients, lazy per-row Adam), and ``"async"`` (the
:mod:`repro.train.pipeline` path: pre-drawn batch stream, per-hop layered
blocks extracted by a background worker, double-buffered ahead of the
optimizer) at two synthetic graph scales, and emits
``benchmarks/results/training_throughput.json`` for the CI regression
gate (``benchmarks/check_regression.py``).

Two headline numbers, both gated:

* ``speedup_sampled_large`` — the sampled step must be ≥ 3× faster than
  the full-graph step at batch 32 on the large graph (best-of-N per-step
  time, as always): step cost must track batch size and fanout, not graph
  size.
* ``speedup_async_large`` — the async-pipelined step must be ≥ 1.3× the
  sync sampled step. This compares *mean* per-step time over the measured
  window for both modes (a best-of comparison could flatter the async
  path whenever a lucky step overlaps no extraction at all; means charge
  every mode its full amortized cost). The win is structural: layered
  blocks compute each propagation order only on the rows the next order
  needs, and extraction runs on a worker thread while the optimizer is
  busy.

A third, bounded-overhead number rides along: ``shard_overhead_large`` —
the sampled step with the embedding tables split across two shards
(``GNMRConfig(shards=2)``, parameter-server layout) versus the unsharded
sampled step, on mean step time. Sharding routes every gather/gradient
through per-shard tables, which costs some Python-level bookkeeping per
step; the gate bounds that tax (``BENCH_SHARD_MAX``) so the sharded path
stays a constant-factor overhead, never an asymptotic one.

A fourth section sweeps the multi-process parameter server
(``repro.dist``): the sampled step with shard-owner processes applying
optimizer updates over shared-memory gradient transport, across worker
counts (sync mode) and staleness windows (async mode), against the
single-process sharded sampled step on the same graph. The payload
records ``cpu_count`` alongside the sweep because the speedup is real
concurrency: on a multi-core box (≥ 4 cores) sync dist must reach
``BENCH_DIST_MIN`` (1.6×); on fewer cores the sweep still runs and is
recorded, but the gate skips — a single core can only measure the
transport overhead, never the overlap win.

The interaction graphs are built directly from random edge lists (the
latent-factor generator in ``repro.data.synthetic`` is O(users × items)
and would dominate the benchmark at the large scale).

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_training.py
"""

import json
import time
from pathlib import Path

import numpy as np

RESULTS_PATH = Path(__file__).parent / "results" / "training_throughput.json"

BATCH_USERS = 32
PER_USER = 4
#: per-(node, behavior) neighbor cap; with K=3 behaviors the per-hop
#: branching factor is 3·FANOUT = 9, so a batch-32 block stays ~25k nodes
#: regardless of graph size — the sublinearity the gate asserts
FANOUT = 3
SCALES = {
    "small": {"num_users": 6000, "num_items": 9000,
              "edges_per_user": 24, "steps": 6},
    "large": {"num_users": 60000, "num_items": 90000,
              "edges_per_user": 24, "steps": 3},
}


def _reference_matmul_seconds(rounds: int = 5) -> float:
    """Fixed dense matmul timing — normalizes throughput across machines."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((1024, 256)).astype(np.float32)
    b = rng.standard_normal((256, 2048)).astype(np.float32)
    a @ b
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        a @ b
        best = min(best, time.perf_counter() - start)
    return best


def _random_graph_dataset(num_users: int, num_items: int,
                          edges_per_user: int, seed: int = 0):
    """A multi-behavior dataset from uniform random edges (O(edges) build)."""
    from repro.data.dataset import InteractionDataset

    rng = np.random.default_rng(seed)
    behaviors = ("view", "cart", "purchase")
    density = {"view": 1.0, "cart": 0.4, "purchase": 0.25}
    interactions = {}
    for behavior in behaviors:
        count = int(num_users * edges_per_user * density[behavior])
        users = rng.integers(0, num_users, size=count)
        # every user keeps at least one target edge so batch sampling never
        # starves at any scale
        if behavior == "purchase":
            users = np.concatenate([users, np.arange(num_users)])
        items = rng.integers(0, num_items, size=users.size)
        interactions[behavior] = {"users": users, "items": items}
    return InteractionDataset(
        name=f"bench-{num_users}x{num_items}", num_users=num_users,
        num_items=num_items, behavior_names=behaviors,
        target_behavior="purchase", interactions=interactions)


def _measure_steps(model, data, propagation: str,
                   steps: int) -> tuple[float, float]:
    """(best, mean) per-step seconds over ``steps`` measured steps."""
    from repro.graph.sampling import NegativeSampler, sample_pairwise_batch
    from repro.nn.losses import l2_regularization, pairwise_hinge_loss
    from repro.nn.optim import Adam

    rng = np.random.default_rng(0)
    graph = data.graph()
    sampler = NegativeSampler(graph, data.target_behavior)
    eligible = np.flatnonzero(graph.user_degree(data.target_behavior) > 0)
    optimizer = Adam(model.parameters(), lr=1e-3)
    model.train()

    def one_step():
        batch = sample_pairwise_batch(graph, data.target_behavior, sampler,
                                      BATCH_USERS, PER_USER, rng,
                                      eligible_users=eligible)
        if propagation == "sampled":
            pos, neg = model.sampled_batch_scores(
                batch.users, batch.pos_items, batch.neg_items,
                fanout=FANOUT, rng=rng)
            reg = model.l2_batch(batch.users, batch.pos_items,
                                 batch.neg_items, 1e-4)
        else:
            pos, neg = model.batch_scores(batch.users, batch.pos_items,
                                          batch.neg_items)
            reg = l2_regularization(model.parameters(), 1e-4)
        loss = pairwise_hinge_loss(pos, neg) + reg
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        model.on_step_end()

    one_step()  # warm up caches / lazy state
    best = float("inf")
    total = 0.0
    for _ in range(steps):
        start = time.perf_counter()
        one_step()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        total += elapsed
    return best, total / steps


def _measure_async_steps(model, data, steps: int) -> tuple[float, float]:
    """(best, mean) per-step seconds through the double-buffered pipeline.

    Mirrors the trainer's ``propagation="async"`` loop: batches come from
    the pipeline's pre-drawn stream, a background worker extracts per-hop
    layered blocks, the training thread scores via ``block_batch_scores``.
    """
    from repro.nn.losses import pairwise_hinge_loss
    from repro.nn.optim import Adam
    from repro.train.pipeline import SampledBatchPipeline
    from repro.graph.sampling import NegativeSampler, sample_pairwise_batch

    graph = data.graph()
    sampler = NegativeSampler(graph, data.target_behavior)
    eligible = np.flatnonzero(graph.user_degree(data.target_behavior) > 0)
    optimizer = Adam(model.parameters(), lr=1e-3)
    model.train()

    def draw(rng):
        return sample_pairwise_batch(graph, data.target_behavior, sampler,
                                     BATCH_USERS, PER_USER, rng,
                                     eligible_users=eligible)

    def extract(batch, rng):
        return model.extract_block(batch.users, batch.pos_items,
                                   batch.neg_items, fanout=FANOUT, rng=rng)

    def one_step(prepared):
        batch = prepared.batch
        pos, neg = model.block_batch_scores(
            batch.users, batch.pos_items, batch.neg_items, prepared.block)
        reg = model.l2_batch(batch.users, batch.pos_items,
                             batch.neg_items, 1e-4)
        loss = pairwise_hinge_loss(pos, neg) + reg
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        model.on_step_end()

    best = float("inf")
    total = 0.0
    with SampledBatchPipeline(draw, extract, total_steps=steps + 1,
                              seed=0, workers=1, depth=2) as pipeline:
        one_step(next(pipeline))  # warm up caches / prime the buffers
        for _ in range(steps):
            # time the blocking wait for the prefetched block too — stalls
            # waiting on the worker are real per-step cost
            start = time.perf_counter()
            one_step(next(pipeline))
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
            total += elapsed
    return best, total / steps


#: dist sweep workload: the "small" graph with the tables in 4 shards —
#: enough shards to feed up to 3 owner processes on a 4-core runner
DIST_SHARDS = 4
DIST_STEPS = 8


def _measure_dist_steps(model, data, server, local_optimizer,
                        steps: int) -> tuple[float, float]:
    """(best, mean) per-step seconds through the parameter-server loop.

    Mirrors the trainer's dist step: throttle on the staleness window,
    forward/backward, push shard gradients, step the local optimizer over
    whatever parameters are unsharded.
    """
    from repro.graph.sampling import NegativeSampler, sample_pairwise_batch
    from repro.nn.losses import pairwise_hinge_loss

    rng = np.random.default_rng(0)
    graph = data.graph()
    sampler = NegativeSampler(graph, data.target_behavior)
    eligible = np.flatnonzero(graph.user_degree(data.target_behavior) > 0)
    model.train()

    def one_step():
        server.throttle()
        batch = sample_pairwise_batch(graph, data.target_behavior, sampler,
                                      BATCH_USERS, PER_USER, rng,
                                      eligible_users=eligible)
        pos, neg = model.sampled_batch_scores(
            batch.users, batch.pos_items, batch.neg_items,
            fanout=FANOUT, rng=rng)
        reg = model.l2_batch(batch.users, batch.pos_items,
                             batch.neg_items, 1e-4)
        loss = pairwise_hinge_loss(pos, neg) + reg
        if local_optimizer is not None:
            local_optimizer.zero_grad()
        loss.backward()
        server.push(lr=1e-3)
        if local_optimizer is not None:
            local_optimizer.step()
        model.on_step_end()

    one_step()  # warm up caches / owner processes
    best = float("inf")
    total = 0.0
    for _ in range(steps):
        start = time.perf_counter()
        one_step()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        total += elapsed
    server.drain()
    return best, total / steps


def _dist_config_row(data, *, workers: int, staleness: int,
                     transport: str = "shm") -> dict:
    from repro.core import GNMR, GNMRConfig
    from repro.dist import DistParameterServer
    from repro.nn.optim import Adam, shard_param_groups

    model = GNMR(data, GNMRConfig(pretrain=False, seed=0, num_layers=2,
                                  dtype="float32", shards=DIST_SHARDS))
    groups = shard_param_groups(model)
    shard_groups = [g for g in groups if g.get("shard") is not None]
    local = [p for g in groups if g.get("shard") is None
             for p in g["params"]]
    local_optimizer = Adam(local, lr=1e-3) if local else None
    server = DistParameterServer(shard_groups, optimizer="adam", lr=1e-3,
                                 workers=workers, staleness=staleness,
                                 transport=transport)
    try:
        best, mean = _measure_dist_steps(model, data, server,
                                         local_optimizer, DIST_STEPS)
    finally:
        server.close()
    return {
        "workers": server.num_workers,
        "staleness": staleness,
        "transport": transport,
        "step_ms": best * 1e3,
        "mean_step_ms": mean * 1e3,
        "steps_per_sec": 1.0 / mean,
    }


def measure_dist() -> dict:
    """Worker/staleness sweep of the dist parameter server, small scale."""
    import os

    from repro.core import GNMR, GNMRConfig

    spec = SCALES["small"]
    data = _random_graph_dataset(spec["num_users"], spec["num_items"],
                                 spec["edges_per_user"])
    cpu_count = os.cpu_count() or 1
    # single-process baseline: the same sharded model, same sampled step
    model = GNMR(data, GNMRConfig(pretrain=False, seed=0, num_layers=2,
                                  dtype="float32", shards=DIST_SHARDS))
    best, mean = _measure_steps(model, data, "sampled", DIST_STEPS)
    single = {"step_ms": best * 1e3, "mean_step_ms": mean * 1e3,
              "steps_per_sec": 1.0 / mean}

    worker_counts = sorted({1, 2, max(1, min(DIST_SHARDS - 1,
                                             cpu_count - 1))})
    sync_rows = [_dist_config_row(data, workers=w, staleness=0)
                 for w in worker_counts]
    best_sync = max(sync_rows, key=lambda r: r["steps_per_sec"])
    async_workers = best_sync["workers"]
    async_rows = [_dist_config_row(data, workers=async_workers, staleness=s)
                  for s in (1, 2, 4)]
    for row in sync_rows + async_rows:
        row["speedup_vs_single"] = (row["steps_per_sec"]
                                    / single["steps_per_sec"])
    return {
        "cpu_count": cpu_count,
        "shards": DIST_SHARDS,
        "measure_steps": DIST_STEPS,
        "single_process": single,
        "sync_sweep": sync_rows,
        # the staleness-vs-throughput curve: how much the async stale-push
        # window buys over the per-step sync barrier
        "async_staleness_curve": async_rows,
        "sync_speedup": best_sync["speedup_vs_single"],
        "sync_best_workers": best_sync["workers"],
    }


def measure_scale(name: str, spec: dict) -> dict:
    from repro.core import GNMR, GNMRConfig

    data = _random_graph_dataset(spec["num_users"], spec["num_items"],
                                 spec["edges_per_user"])
    row = {
        "num_users": spec["num_users"],
        "num_items": spec["num_items"],
        "interactions": data.graph().interaction_count(),
        "measure_steps": spec["steps"],
    }
    model = GNMR(data, GNMRConfig(pretrain=False, seed=0, num_layers=2,
                                  dtype="float32"))
    def mode_row(best: float, mean: float) -> dict:
        # step_ms stays best-of (noise-robust, baseline-comparable for the
        # sampled-vs-full gate); steps_per_sec reports the SUSTAINABLE
        # rate from the mean — a best-of rate would claim throughput a
        # mode only hits on its luckiest step
        return {
            "step_ms": best * 1e3,
            "mean_step_ms": mean * 1e3,
            "steps_per_sec": 1.0 / mean,
        }

    for propagation in ("full", "sampled"):
        best, mean = _measure_steps(model, data, propagation, spec["steps"])
        row[propagation] = mode_row(best, mean)
    best, mean = _measure_async_steps(model, data, spec["steps"])
    row["async"] = mode_row(best, mean)
    # same workload with the user/item tables split across two shards —
    # the sampled path's constant-factor sharding tax, gated in CI
    sharded_model = GNMR(data, GNMRConfig(pretrain=False, seed=0,
                                          num_layers=2, dtype="float32",
                                          shards=2))
    best, mean = _measure_steps(sharded_model, data, "sampled", spec["steps"])
    row["sharded"] = mode_row(best, mean)
    row["speedup_sampled"] = (row["full"]["step_ms"]
                              / row["sampled"]["step_ms"])
    # async vs sync sampled compares MEANS: every mode pays its amortized
    # extraction cost, nothing hides between best-of windows
    row["speedup_async"] = (row["sampled"]["mean_step_ms"]
                            / row["async"]["mean_step_ms"])
    row["shard_overhead"] = (row["sharded"]["mean_step_ms"]
                             / row["sampled"]["mean_step_ms"])
    return row


def collect() -> dict:
    payload = {
        "workload": {
            "model": "GNMR",
            "num_layers": 2,
            "batch_users": BATCH_USERS,
            "per_user": PER_USER,
            "fanout": FANOUT,
            "dtype": "float32",
        },
        "scales": {name: measure_scale(name, spec)
                   for name, spec in SCALES.items()},
        "dist": measure_dist(),
    }
    payload["dist_sync_speedup"] = payload["dist"]["sync_speedup"]
    payload["speedup_sampled_large"] = payload["scales"]["large"]["speedup_sampled"]
    payload["speedup_async_large"] = payload["scales"]["large"]["speedup_async"]
    payload["shard_overhead_large"] = payload["scales"]["large"]["shard_overhead"]
    payload["reference_matmul_seconds"] = _reference_matmul_seconds()
    return payload


def save(payload: dict) -> Path:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return RESULTS_PATH


# ----------------------------------------------------------------------
# pytest-benchmark entry points (explicit runs on dedicated hardware)
# ----------------------------------------------------------------------

def test_bench_training_throughput(benchmark):
    from conftest import run_once, save_results

    results = run_once(benchmark, collect)
    save_results("training_throughput", results)
    for name, row in results["scales"].items():
        assert row["full"]["steps_per_sec"] > 0, name
        assert row["sampled"]["steps_per_sec"] > 0, name
        assert row["async"]["steps_per_sec"] > 0, name
    # the whole point of the sampled path: step time must not track graph
    # size — on the large graph it must beat full-graph by a wide margin
    assert results["speedup_sampled_large"] >= 3.0
    # and the async pipeline must beat sync sampled steps on mean step time
    assert results["speedup_async_large"] >= 1.3
    # sharding is a bounded constant-factor tax on the sampled step
    assert results["shard_overhead_large"] <= 2.0
    dist = results["dist"]
    for row in dist["sync_sweep"] + dist["async_staleness_curve"]:
        assert row["steps_per_sec"] > 0, row
    # concurrent shard owners need real cores; on fewer than 4 the sweep
    # only documents transport overhead and the speedup bar doesn't apply
    if dist["cpu_count"] >= 4:
        assert results["dist_sync_speedup"] >= 1.6


if __name__ == "__main__":  # CI path: no pytest required
    payload = collect()
    path = save(payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}")

"""Training throughput benchmarks: full-graph vs sampled-subgraph steps.

Measures per-step wall time and steps/sec of GNMR pairwise training under
``TrainConfig.propagation="full"`` (whole-graph SpMM + dense optimizer
sweep every step) and ``"sampled"`` (fanout-capped subgraph propagation,
row-sparse embedding gradients, lazy per-row Adam) at two synthetic graph
scales, and emits ``benchmarks/results/training_throughput.json`` for the
CI regression gate (``benchmarks/check_regression.py``).

The headline number is ``speedup_sampled_large``: on the large graph the
sampled step must be ≥ 3× faster than the full-graph step at batch 32 —
the point of the row-sparse path is that step cost tracks batch size and
fanout, not graph size. The interaction graphs are built directly from
random edge lists (the latent-factor generator in ``repro.data.synthetic``
is O(users × items) and would dominate the benchmark at the large scale).

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_training.py
"""

import json
import time
from pathlib import Path

import numpy as np

RESULTS_PATH = Path(__file__).parent / "results" / "training_throughput.json"

BATCH_USERS = 32
PER_USER = 4
#: per-(node, behavior) neighbor cap; with K=3 behaviors the per-hop
#: branching factor is 3·FANOUT = 9, so a batch-32 block stays ~25k nodes
#: regardless of graph size — the sublinearity the gate asserts
FANOUT = 3
SCALES = {
    "small": {"num_users": 6000, "num_items": 9000,
              "edges_per_user": 24, "steps": 6},
    "large": {"num_users": 60000, "num_items": 90000,
              "edges_per_user": 24, "steps": 3},
}


def _reference_matmul_seconds(rounds: int = 5) -> float:
    """Fixed dense matmul timing — normalizes throughput across machines."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((1024, 256)).astype(np.float32)
    b = rng.standard_normal((256, 2048)).astype(np.float32)
    a @ b
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        a @ b
        best = min(best, time.perf_counter() - start)
    return best


def _random_graph_dataset(num_users: int, num_items: int,
                          edges_per_user: int, seed: int = 0):
    """A multi-behavior dataset from uniform random edges (O(edges) build)."""
    from repro.data.dataset import InteractionDataset

    rng = np.random.default_rng(seed)
    behaviors = ("view", "cart", "purchase")
    density = {"view": 1.0, "cart": 0.4, "purchase": 0.25}
    interactions = {}
    for behavior in behaviors:
        count = int(num_users * edges_per_user * density[behavior])
        users = rng.integers(0, num_users, size=count)
        # every user keeps at least one target edge so batch sampling never
        # starves at any scale
        if behavior == "purchase":
            users = np.concatenate([users, np.arange(num_users)])
        items = rng.integers(0, num_items, size=users.size)
        interactions[behavior] = {"users": users, "items": items}
    return InteractionDataset(
        name=f"bench-{num_users}x{num_items}", num_users=num_users,
        num_items=num_items, behavior_names=behaviors,
        target_behavior="purchase", interactions=interactions)


def _measure_steps(model, data, propagation: str, steps: int) -> float:
    """Best per-step seconds over ``steps`` measured training steps."""
    from repro.graph.sampling import NegativeSampler, sample_pairwise_batch
    from repro.nn.losses import l2_regularization, pairwise_hinge_loss
    from repro.nn.optim import Adam

    rng = np.random.default_rng(0)
    graph = data.graph()
    sampler = NegativeSampler(graph, data.target_behavior)
    eligible = np.flatnonzero(graph.user_degree(data.target_behavior) > 0)
    optimizer = Adam(model.parameters(), lr=1e-3)
    model.train()

    def one_step():
        batch = sample_pairwise_batch(graph, data.target_behavior, sampler,
                                      BATCH_USERS, PER_USER, rng,
                                      eligible_users=eligible)
        if propagation == "sampled":
            pos, neg = model.sampled_batch_scores(
                batch.users, batch.pos_items, batch.neg_items,
                fanout=FANOUT, rng=rng)
            reg = model.l2_batch(batch.users, batch.pos_items,
                                 batch.neg_items, 1e-4)
        else:
            pos, neg = model.batch_scores(batch.users, batch.pos_items,
                                          batch.neg_items)
            reg = l2_regularization(model.parameters(), 1e-4)
        loss = pairwise_hinge_loss(pos, neg) + reg
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        model.on_step_end()

    one_step()  # warm up caches / lazy state
    best = float("inf")
    for _ in range(steps):
        start = time.perf_counter()
        one_step()
        best = min(best, time.perf_counter() - start)
    return best


def measure_scale(name: str, spec: dict) -> dict:
    from repro.core import GNMR, GNMRConfig

    data = _random_graph_dataset(spec["num_users"], spec["num_items"],
                                 spec["edges_per_user"])
    row = {
        "num_users": spec["num_users"],
        "num_items": spec["num_items"],
        "interactions": data.graph().interaction_count(),
        "measure_steps": spec["steps"],
    }
    model = GNMR(data, GNMRConfig(pretrain=False, seed=0, num_layers=2,
                                  dtype="float32"))
    for propagation in ("full", "sampled"):
        seconds = _measure_steps(model, data, propagation, spec["steps"])
        row[propagation] = {
            "step_ms": seconds * 1e3,
            "steps_per_sec": 1.0 / seconds,
        }
    row["speedup_sampled"] = (row["full"]["step_ms"]
                              / row["sampled"]["step_ms"])
    return row


def collect() -> dict:
    payload = {
        "workload": {
            "model": "GNMR",
            "num_layers": 2,
            "batch_users": BATCH_USERS,
            "per_user": PER_USER,
            "fanout": FANOUT,
            "dtype": "float32",
        },
        "scales": {name: measure_scale(name, spec)
                   for name, spec in SCALES.items()},
    }
    payload["speedup_sampled_large"] = payload["scales"]["large"]["speedup_sampled"]
    payload["reference_matmul_seconds"] = _reference_matmul_seconds()
    return payload


def save(payload: dict) -> Path:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return RESULTS_PATH


# ----------------------------------------------------------------------
# pytest-benchmark entry points (explicit runs on dedicated hardware)
# ----------------------------------------------------------------------

def test_bench_training_throughput(benchmark):
    from conftest import run_once, save_results

    results = run_once(benchmark, collect)
    save_results("training_throughput", results)
    for name, row in results["scales"].items():
        assert row["full"]["steps_per_sec"] > 0, name
        assert row["sampled"]["steps_per_sec"] > 0, name
    # the whole point of the sampled path: step time must not track graph
    # size — on the large graph it must beat full-graph by a wide margin
    assert results["speedup_sampled_large"] >= 3.0


if __name__ == "__main__":  # CI path: no pytest required
    payload = collect()
    path = save(payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}")

"""Substrate micro-benchmarks: genuine timing benchmarks (multiple rounds).

These measure the performance-critical primitives the reproduction is
built on — autograd matmul, sparse propagation, GNMR forward/backward —
so regressions in the engine show up here rather than as mysteriously
slow table benches.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import Adam, pairwise_hinge_loss
from repro.tensor import SparseAdjacency, Tensor


@pytest.fixture(scope="module")
def gnmr_setup():
    from repro.core import GNMR, GNMRConfig
    from repro.data import taobao_like

    data = taobao_like(num_users=100, num_items=200, seed=0)
    model = GNMR(data, GNMRConfig(pretrain=False, seed=0))
    return model


def test_bench_dense_matmul_grad(benchmark):
    rng = np.random.default_rng(0)
    a = Tensor(rng.standard_normal((256, 128)), requires_grad=True)
    b = Tensor(rng.standard_normal((128, 64)), requires_grad=True)

    def step():
        a.zero_grad()
        b.zero_grad()
        (a.matmul(b)).sum().backward()

    benchmark(step)


def test_bench_sparse_propagation(benchmark):
    rng = np.random.default_rng(1)
    adjacency = SparseAdjacency(sp.random(2000, 3000, density=0.01, random_state=2))
    h = Tensor(rng.standard_normal((3000, 16)), requires_grad=True)

    def step():
        h.zero_grad()
        adjacency.matmul(h).sum().backward()

    benchmark(step)


def test_bench_gnmr_forward(benchmark, gnmr_setup):
    model = gnmr_setup
    users = np.arange(32)
    items = np.arange(32)

    def step():
        model.on_step_end()  # force fresh propagation
        return model.score(users, items)

    benchmark(step)


def test_bench_gnmr_train_step(benchmark, gnmr_setup):
    model = gnmr_setup
    optimizer = Adam(model.parameters(), lr=1e-3)
    rng = np.random.default_rng(3)

    def step():
        users = rng.integers(0, model.num_users, 32)
        pos = rng.integers(0, model.num_items, 32)
        neg = rng.integers(0, model.num_items, 32)
        pos_s, neg_s = model.batch_scores(users, pos, neg)
        loss = pairwise_hinge_loss(pos_s, neg_s)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        model.on_step_end()

    benchmark(step)

"""Substrate micro-benchmarks: genuine timing benchmarks (multiple rounds).

These measure the performance-critical primitives the reproduction is
built on — autograd matmul, sparse propagation, GNMR forward/backward —
so regressions in the engine show up here rather than as mysteriously
slow table benches.

Two comparison benches track the configurable-dtype compute path:

* float32 vs float64 fused propagation (the fast path must stay ≥1.3×
  faster, with gradient checks passing at both precisions);
* fused stacked-CSR SpMM vs the per-behavior loop it replaced.

Both emit JSON to ``benchmarks/results/substrate_dtype.json`` /
``substrate_fused.json`` so the perf trajectory is trackable across PRs.
Run standalone (no pytest needed) for the same numbers on stdout::

    PYTHONPATH=src python benchmarks/bench_substrate_perf.py
"""

import json
import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import Adam, pairwise_hinge_loss
from repro.tensor import (
    SparseAdjacency,
    Tensor,
    check_gradients,
    default_dtype,
    dtype_tolerances,
)


@pytest.fixture(scope="module")
def gnmr_setup():
    from repro.core import GNMR, GNMRConfig
    from repro.data import taobao_like

    data = taobao_like(num_users=100, num_items=200, seed=0)
    model = GNMR(data, GNMRConfig(pretrain=False, seed=0))
    return model


def test_bench_dense_matmul_grad(benchmark):
    rng = np.random.default_rng(0)
    a = Tensor(rng.standard_normal((256, 128)), requires_grad=True)
    b = Tensor(rng.standard_normal((128, 64)), requires_grad=True)

    def step():
        a.zero_grad()
        b.zero_grad()
        (a.matmul(b)).sum().backward()

    benchmark(step)


def test_bench_sparse_propagation(benchmark):
    rng = np.random.default_rng(1)
    adjacency = SparseAdjacency(sp.random(2000, 3000, density=0.01, random_state=2))
    h = Tensor(rng.standard_normal((3000, 16)), requires_grad=True)

    def step():
        h.zero_grad()
        adjacency.matmul(h).sum().backward()

    benchmark(step)


def test_bench_gnmr_forward(benchmark, gnmr_setup):
    model = gnmr_setup
    users = np.arange(32)
    items = np.arange(32)

    def step():
        model.on_step_end()  # force fresh propagation
        return model.score(users, items)

    benchmark(step)


def test_bench_gnmr_train_step(benchmark, gnmr_setup):
    model = gnmr_setup
    optimizer = Adam(model.parameters(), lr=1e-3)
    rng = np.random.default_rng(3)

    def step():
        users = rng.integers(0, model.num_users, 32)
        pos = rng.integers(0, model.num_items, 32)
        neg = rng.integers(0, model.num_items, 32)
        pos_s, neg_s = model.batch_scores(users, pos, neg)
        loss = pairwise_hinge_loss(pos_s, neg_s)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        model.on_step_end()

    benchmark(step)


# ----------------------------------------------------------------------
# configurable-dtype compute path
# ----------------------------------------------------------------------

def _best_time(fn, rounds: int = 7) -> float:
    """Minimum wall time over several rounds (robust against noise)."""
    fn()  # warm up caches / allocator
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _synthetic_workload(num_behaviors=3, num_users=4000, num_items=6000,
                        dim=32, density=0.005, seed=0):
    """Adjacency list + embedding table shaped like a full-graph model."""
    rng = np.random.default_rng(seed)
    matrices = [sp.random(num_users, num_items, density=density,
                          random_state=100 + k, format="csr")
                for k in range(num_behaviors)]
    h = rng.standard_normal((num_items, dim))
    return matrices, h


def compare_dtype_propagation(rounds: int = 7) -> dict:
    """Time fused multi-behavior propagation at float64 vs float32.

    Also runs gradient checks of the sparse propagation op at both
    precisions — a speedup that breaks gradients would be worthless.
    """
    matrices, h = _synthetic_workload()
    results: dict = {"workload": {"behaviors": len(matrices),
                                  "shape": list(matrices[0].shape),
                                  "dim": h.shape[1],
                                  "nnz": int(sum(m.nnz for m in matrices))}}
    for dtype in ("float64", "float32"):
        with default_dtype(dtype):
            stack = SparseAdjacency(sp.vstack(matrices, format="csr"),
                                    precompute_transpose=True)
            dense = Tensor(h.astype(dtype), requires_grad=True)

            def step():
                dense.zero_grad()
                stack.matmul(dense).sum().backward()

            results[dtype] = {"seconds": _best_time(step, rounds)}
            # gradient check on a small slice of the same structure
            small = SparseAdjacency(sp.random(12, 15, density=0.3,
                                              random_state=7))
            probe = Tensor(np.random.default_rng(0)
                           .standard_normal((15, 4)).astype(dtype),
                           requires_grad=True)
            check_gradients(lambda p: small.matmul(p), [probe],
                            **dtype_tolerances(dtype))
            results[dtype]["grad_check"] = "passed"
    results["speedup_float32"] = (results["float64"]["seconds"]
                                  / results["float32"]["seconds"])
    return results


def compare_fused_spmm(rounds: int = 7) -> dict:
    """Fused stacked-CSR SpMM vs the per-behavior loop it replaced."""
    matrices, h = _synthetic_workload()
    adjacencies = [SparseAdjacency(m) for m in matrices]
    stack = SparseAdjacency(sp.vstack(matrices, format="csr"),
                            precompute_transpose=True)
    k, (n, _) = len(matrices), matrices[0].shape
    dense = Tensor(h)

    def unfused():
        from repro.tensor.tensor import stack as tensor_stack

        per_type = [a.matmul(dense) for a in adjacencies]
        return tensor_stack(per_type, axis=1)

    def fused():
        out = stack.matmul(dense)
        return out.reshape(k, n, h.shape[1]).transpose(1, 0, 2)

    np.testing.assert_array_equal(unfused().data, fused().data)
    t_unfused = _best_time(unfused, rounds)
    t_fused = _best_time(fused, rounds)
    return {
        "unfused_seconds": t_unfused,
        "fused_seconds": t_fused,
        "speedup_fused": t_unfused / t_fused,
    }


def test_bench_dtype_propagation(benchmark):
    from conftest import run_once, save_results

    results = run_once(benchmark, compare_dtype_propagation)
    save_results("substrate_dtype", results)
    assert results["float64"]["grad_check"] == "passed"
    assert results["float32"]["grad_check"] == "passed"
    # the acceptance bar for the fast path (measured ~1.8× on dev hardware)
    assert results["speedup_float32"] >= 1.3, (
        f"float32 propagation only {results['speedup_float32']:.2f}× faster")


def test_bench_fused_spmm(benchmark):
    from conftest import run_once, save_results

    results = run_once(benchmark, compare_fused_spmm)
    save_results("substrate_fused", results)
    # fusion must never regress the SpMM itself (it mainly removes the
    # per-behavior python/autograd overhead and the stack copy)
    assert results["speedup_fused"] >= 0.9


if __name__ == "__main__":  # CI path: no pytest-benchmark required
    from pathlib import Path

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    payload = {
        "dtype_propagation": compare_dtype_propagation(),
        "fused_spmm": compare_fused_spmm(),
    }
    # write the per-metric payloads the regression gate
    # (benchmarks/check_regression.py) compares against the committed
    # baselines
    (results_dir / "substrate_dtype.json").write_text(
        json.dumps(payload["dtype_propagation"], indent=2) + "\n")
    (results_dir / "substrate_fused.json").write_text(
        json.dumps(payload["fused_spmm"], indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    ratio = payload["dtype_propagation"]["speedup_float32"]
    if ratio < 1.3:
        print(f"WARNING: float32 propagation speedup {ratio:.2f}x below the "
              f"1.3x bar (noisy runner?)")

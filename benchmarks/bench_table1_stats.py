"""Table I — dataset statistics.

Regenerates the paper's dataset-statistics table for the three synthetic
stand-ins (schema, user/item counts, per-behavior interaction counts).
"""

from benchmarks.conftest import run_once, save_results
from repro.experiments import format_table, run_table1


def test_table1_dataset_statistics(benchmark, bench_scale):
    rows = run_once(benchmark, run_table1, bench_scale)
    save_results("table1", rows)
    printable = {
        name: {k: v for k, v in row.items() if k != "per-behavior"}
        for name, row in rows.items()
    }
    print()
    print(format_table(printable, title="Table I — dataset statistics (synthetic)"))
    for name, row in rows.items():
        print(f"  {name}: {row['per-behavior']}")
    # schema invariants from the paper
    assert rows["taobao-like"]["Interactive Behavior Type"] == \
        "{page_view, favorite, cart, purchase}"
    assert rows["movielens-like"]["Interactive Behavior Type"] == \
        "{dislike, neutral, like}"
    assert rows["yelp-like"]["Interactive Behavior Type"] == \
        "{tip, dislike, neutral, like}"

"""Shared benchmark utilities.

Every benchmark runs its experiment exactly once (``pedantic`` with one
round) — these are *reproduction* benchmarks whose value is the result
table, not statistical timing. Results are printed and also dumped to
``benchmarks/results/*.json`` so EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` through pytest-benchmark with a single round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def save_results(name: str, payload) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return path


@pytest.fixture(scope="session")
def bench_scale():
    """The scale shared by all reproduction benchmarks."""
    from repro.experiments import SMALL_SCALE

    return SMALL_SCALE

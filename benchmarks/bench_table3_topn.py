"""Table III — ranking quality at varying top-N on Yelp.

Regenerates HR@N and NDCG@N for N ∈ {1,3,5,7,9} on the Yelp-like dataset
for the seven models the paper reports.
"""

from benchmarks.conftest import run_once, save_results
from repro.experiments import PAPER_TABLE3, format_table, run_table3


def test_table3_topn_sweep(benchmark, bench_scale):
    results = run_once(benchmark, run_table3, bench_scale)
    save_results("table3", results)

    for metric in ("HR", "NDCG"):
        table = {
            model: {f"@{n}": rows[metric][n] for n in (1, 3, 5, 7, 9)}
            for model, rows in results.items()
        }
        print()
        print(format_table(table, title=f"Table III — Yelp {metric}@N (ours)"))
        paper_table = {
            model: {f"@{n}": PAPER_TABLE3[model][metric][n] for n in (1, 3, 5, 7, 9)}
            for model in PAPER_TABLE3
        }
        print(format_table(paper_table, title=f"Table III — Yelp {metric}@N (paper)"))

    for model, rows in results.items():
        hr_series = [rows["HR"][n] for n in (1, 3, 5, 7, 9)]
        # HR@N is monotone in N by construction
        assert all(a <= b + 1e-12 for a, b in zip(hr_series, hr_series[1:])), model
        for n in (1, 3, 5, 7, 9):
            assert rows["NDCG"][n] <= rows["HR"][n] + 1e-12, model

    # shape: GNMR leads at the largest cutoff
    ranking = sorted(results, key=lambda m: results[m]["HR"][9], reverse=True)
    print(f"ranking by HR@9: {ranking}")
    assert ranking.index("GNMR") <= 1

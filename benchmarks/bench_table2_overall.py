"""Table II — overall performance comparison (13 models × 3 datasets).

Regenerates the paper's headline table: HR@10 and NDCG@10 for every
baseline and GNMR on MovieLens-like, Yelp-like and Taobao-like data.
The reproduction target is the *shape*: GNMR on top, multi-behavior
baselines (NMTR/DIPN) competitive, not the absolute values (synthetic
data at laptop scale).
"""

import pytest

from benchmarks.conftest import run_once, save_results
from repro.experiments import (
    MODEL_NAMES,
    PAPER_TABLE2,
    format_comparison,
    run_table2,
)


@pytest.mark.parametrize("dataset", ["movielens", "yelp", "taobao"])
def test_table2_overall_performance(benchmark, bench_scale, dataset):
    results = run_once(benchmark, run_table2, dataset, bench_scale)
    save_results(f"table2_{dataset}", results)
    paper = {m: PAPER_TABLE2[m][dataset] for m in MODEL_NAMES}
    print()
    print(format_comparison(results, paper,
                            title=f"Table II — {dataset} (ours vs paper)"))

    ranking = sorted(results, key=lambda m: results[m]["HR@10"], reverse=True)
    print(f"ranking by HR@10: {ranking}")
    gnmr_rank = ranking.index("GNMR")
    print(f"GNMR rank: {gnmr_rank + 1} / {len(ranking)}")

    # sanity: all metrics valid
    for model, row in results.items():
        assert 0.0 <= row["NDCG@10"] <= row["HR@10"] <= 1.0, model
    # Shape: the paper reports GNMR strictly first on all datasets. At
    # laptop-scale synthetic data the per-run HR@10 std is ≈ sqrt(p(1−p)/U)
    # (~0.04 at U=150 test users), so instead of asserting a literal rank we
    # require GNMR to be statistically indistinguishable from the best model
    # and at least median overall; EXPERIMENTS.md reports the exact ranks.
    from repro.analysis import metric_std_error

    best_hr = results[ranking[0]]["HR@10"]
    sigma = metric_std_error(best_hr, bench_scale.num_users)
    tolerance = max(0.06, 1.5 * sigma)
    assert results["GNMR"]["HR@10"] >= best_hr - tolerance, \
        f"GNMR trails the best model by more than {tolerance:.3f} HR@10 on {dataset}"
    median_hr = sorted(row["HR@10"] for row in results.values())[len(results) // 2]
    assert results["GNMR"]["HR@10"] >= median_hr - 1e-9

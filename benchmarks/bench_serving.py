"""Serving throughput benchmarks: batched top-K retrieval users/sec.

Measures the ``repro.serve`` hot path — blocked matmul against the full
catalog, CSR exclusion masking, argpartition top-K — at batch sizes
{64, 256, 1024}, plus an end-to-end GNMR snapshot-and-serve measurement,
and emits ``benchmarks/results/serving_throughput.json`` for cross-PR
tracking (the CI regression gate compares it against the committed
baseline; see ``benchmarks/check_regression.py``).

A fixed-size dense matmul is timed alongside as a machine-speed reference
so the gate can compare normalized throughput across runners.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_serving.py
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.serve import ExclusionMask, MatrixBackend, TopKRetriever

RESULTS_PATH = Path(__file__).parent / "results" / "serving_throughput.json"

BATCH_SIZES = (64, 256, 1024)
TOP_K = 10


def _best_time(fn, rounds: int = 5) -> float:
    """Minimum wall time over several rounds (robust against noise)."""
    fn()  # warm up caches / allocator
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _reference_matmul_seconds(rounds: int = 5) -> float:
    """Fixed dense matmul timing — normalizes throughput across machines."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((1024, 256)).astype(np.float32)
    b = rng.standard_normal((256, 2048)).astype(np.float32)
    return _best_time(lambda: a @ b, rounds)


def _synthetic_catalog(num_users=8192, num_items=20000, dim=64,
                       seen_per_user=32, seed=0):
    """Serving tables + exclusion mask shaped like a mid-size catalog."""
    rng = np.random.default_rng(seed)
    user_matrix = rng.standard_normal((num_users, dim)).astype(np.float32)
    item_matrix = rng.standard_normal((num_items, dim)).astype(np.float32)
    seen_users = np.repeat(np.arange(num_users), seen_per_user)
    seen_items = rng.integers(0, num_items, size=seen_users.size)
    exclude = ExclusionMask.from_pairs(seen_users, seen_items,
                                       num_users, num_items)
    return user_matrix, item_matrix, exclude


def measure_retrieval_throughput(request_users: int = 4096,
                                 rounds: int = 5) -> dict:
    """Users/sec of blocked top-K retrieval at each serving batch size."""
    user_matrix, item_matrix, exclude = _synthetic_catalog()
    backend = MatrixBackend(user_matrix, item_matrix)
    users = np.arange(request_users, dtype=np.int64)
    results: dict = {
        "workload": {
            "num_users": backend.num_users,
            "num_items": backend.num_items,
            "dim": backend.dim,
            "k": TOP_K,
            "request_users": request_users,
            "dtype": "float32",
        },
        "batch_sizes": {},
    }
    best = 0.0
    for batch in BATCH_SIZES:
        retriever = TopKRetriever(backend, exclude=exclude, batch_users=batch)
        seconds = _best_time(lambda: retriever.retrieve(users, TOP_K), rounds)
        throughput = request_users / seconds
        results["batch_sizes"][str(batch)] = {
            "seconds": seconds,
            "users_per_sec": throughput,
        }
        best = max(best, throughput)
    results["best_users_per_sec"] = best
    return results


def measure_end_to_end_gnmr(rounds: int = 3) -> dict:
    """Snapshot a real GNMR and serve its full user base, end to end."""
    from repro.core import GNMR, GNMRConfig
    from repro.data import taobao_like
    from repro.serve import RecommendationService

    data = taobao_like(num_users=200, num_items=400, seed=0)
    model = GNMR(data, GNMRConfig(pretrain=False, seed=0))
    service = RecommendationService(model, train=data, batch_users=256)
    seconds = _best_time(lambda: service.recommend_all(TOP_K), rounds)
    return {
        "num_users": data.num_users,
        "num_items": data.num_items,
        "k": TOP_K,
        "users_per_sec": data.num_users / seconds,
        "seconds": seconds,
    }


def collect(rounds: int = 5) -> dict:
    payload = measure_retrieval_throughput(rounds=rounds)
    payload["end_to_end_gnmr"] = measure_end_to_end_gnmr()
    payload["reference_matmul_seconds"] = _reference_matmul_seconds()
    return payload


def save(payload: dict) -> Path:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return RESULTS_PATH


# ----------------------------------------------------------------------
# pytest-benchmark entry points (explicit runs on dedicated hardware)
# ----------------------------------------------------------------------

def test_bench_serving_throughput(benchmark):
    from conftest import run_once, save_results

    results = run_once(benchmark, collect)
    save_results("serving_throughput", results)
    for batch, row in results["batch_sizes"].items():
        assert row["users_per_sec"] > 0, f"batch {batch} produced no throughput"
    # which batch size wins is a cache-size question and varies by machine;
    # the regression gate tracks absolute throughput against the committed
    # baseline instead of asserting an ordering here
    assert results["best_users_per_sec"] > 0
    assert results["reference_matmul_seconds"] > 0


if __name__ == "__main__":  # CI path: no pytest required
    payload = collect()
    path = save(payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}")

"""Serving throughput benchmarks: batched top-K retrieval users/sec.

Measures the ``repro.serve`` hot path — blocked matmul against the full
catalog, CSR exclusion masking, argpartition top-K — at batch sizes
{64, 256, 1024}, plus an end-to-end GNMR snapshot-and-serve measurement,
and emits ``benchmarks/results/serving_throughput.json`` for cross-PR
tracking (the CI regression gate compares it against the committed
baseline; see ``benchmarks/check_regression.py``). Throughput must be
monotone-or-flat in the batch size: the retriever chunks selection to
cache-sized blocks internally, so a larger request batch can never cost
throughput (the pre-PR-6 payloads showed batch 64 *beating* batch 1024 —
that anomaly is what the ``scaling`` section guards against).

The approximate-retrieval tradeoff sweep
(``benchmarks/results/serving_ann.json``) rides along: on a ≥100k-item
catalog it measures recall@10 against the exact retriever and users/sec
speedup for every (nprobe × quantization) configuration of
``repro.serve.ann``, sharing one seeded k-means run across quantization
levels. The regression gate requires at least one configuration to reach
recall@10 ≥ 0.95 at ≥ 3x the exact throughput.

A fixed-size dense matmul is timed alongside as a machine-speed reference
so the gate can compare normalized throughput across runners.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_serving.py
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.serve import ApproxRetriever, ExclusionMask, IVFIndex, MatrixBackend, TopKRetriever

RESULTS_PATH = Path(__file__).parent / "results" / "serving_throughput.json"
ANN_RESULTS_PATH = Path(__file__).parent / "results" / "serving_ann.json"

BATCH_SIZES = (64, 256, 1024)
TOP_K = 10

ANN_NPROBES = (4, 8, 16, 32)
ANN_QUANTS = ("none", "fp16", "int8")


def _best_time(fn, rounds: int = 5) -> float:
    """Minimum wall time over several rounds (robust against noise)."""
    fn()  # warm up caches / allocator
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _reference_matmul_seconds(rounds: int = 5) -> float:
    """Fixed dense matmul timing — normalizes throughput across machines."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((1024, 256)).astype(np.float32)
    b = rng.standard_normal((256, 2048)).astype(np.float32)
    return _best_time(lambda: a @ b, rounds)


def _synthetic_catalog(num_users=8192, num_items=20000, dim=64,
                       seen_per_user=32, seed=0):
    """Serving tables + exclusion mask shaped like a mid-size catalog."""
    rng = np.random.default_rng(seed)
    user_matrix = rng.standard_normal((num_users, dim)).astype(np.float32)
    item_matrix = rng.standard_normal((num_items, dim)).astype(np.float32)
    seen_users = np.repeat(np.arange(num_users), seen_per_user)
    seen_items = rng.integers(0, num_items, size=seen_users.size)
    exclude = ExclusionMask.from_pairs(seen_users, seen_items,
                                       num_users, num_items)
    return user_matrix, item_matrix, exclude


def measure_retrieval_throughput(request_users: int = 4096,
                                 rounds: int = 5) -> dict:
    """Users/sec of blocked top-K retrieval at each serving batch size."""
    user_matrix, item_matrix, exclude = _synthetic_catalog()
    backend = MatrixBackend(user_matrix, item_matrix)
    users = np.arange(request_users, dtype=np.int64)
    results: dict = {
        "workload": {
            "num_users": backend.num_users,
            "num_items": backend.num_items,
            "dim": backend.dim,
            "k": TOP_K,
            "request_users": request_users,
            "dtype": "float32",
        },
        "batch_sizes": {},
    }
    best = 0.0
    throughputs = []
    for batch in BATCH_SIZES:
        retriever = TopKRetriever(backend, exclude=exclude, batch_users=batch)
        seconds = _best_time(lambda: retriever.retrieve(users, TOP_K), rounds)
        throughput = request_users / seconds
        results["batch_sizes"][str(batch)] = {
            "seconds": seconds,
            "users_per_sec": throughput,
        }
        throughputs.append(throughput)
        best = max(best, throughput)
    results["best_users_per_sec"] = best
    # larger batches must not *cost* throughput: the smallest ratio of a
    # batch size's users/sec to its predecessor's. ~1.0 (modulo runner
    # noise) now that selection is internally cache-chunked; the gate
    # fails if the old degradation pattern ever returns.
    results["scaling"] = {
        "batch_order": list(BATCH_SIZES),
        "monotone_frac": min(after / before for before, after
                             in zip(throughputs, throughputs[1:])),
    }
    return results


def _clustered_catalog(num_users=4096, num_items=100_000, dim=64,
                       num_centers=256, noise=0.35, seen_per_user=32,
                       seed=0):
    """Large serving tables with the cluster structure of trained embeddings.

    Items and users are drawn around shared latent centers (mixture of
    Gaussians) — the geometry trained embedding tables actually exhibit
    and the reason an IVF coarse quantizer works; isotropic noise would
    understate achievable recall at any nprobe.
    """
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_centers, dim))
    items = centers[rng.integers(0, num_centers, num_items)]
    items = (items + noise * rng.standard_normal(items.shape)).astype(np.float32)
    users = centers[rng.integers(0, num_centers, num_users)]
    users = (users + noise * rng.standard_normal(users.shape)).astype(np.float32)
    seen_users = np.repeat(np.arange(num_users), seen_per_user)
    seen_items = rng.integers(0, num_items, size=seen_users.size)
    exclude = ExclusionMask.from_pairs(seen_users, seen_items,
                                       num_users, num_items)
    return users, items, exclude


def _recall_at_k(approx_items: np.ndarray, exact_items: np.ndarray) -> float:
    """Mean per-user overlap of the approximate and exact top-K sets."""
    k = exact_items.shape[1]
    hits = sum(np.intersect1d(a[a >= 0], e).size
               for a, e in zip(approx_items, exact_items))
    return hits / float(approx_items.shape[0] * k)


def measure_ann_tradeoff(request_users: int = 1024, rounds: int = 3) -> dict:
    """Recall@10 vs users/sec of IVF retrieval across nprobe × quant.

    The exact blocked retriever on the same ≥100k-item workload is both
    the timing baseline (speedups are same-machine ratios) and the
    ground truth for recall.
    """
    user_matrix, item_matrix, exclude = _clustered_catalog()
    backend = MatrixBackend(user_matrix, item_matrix)
    users = np.arange(request_users, dtype=np.int64)

    exact = TopKRetriever(backend, exclude=exclude)
    exact_seconds = _best_time(lambda: exact.retrieve(users, TOP_K), rounds)
    exact_items = exact.retrieve(users, TOP_K).items

    # one seeded k-means shared by every quantization level — the sweep
    # compares scoring precision, not clustering luck
    from repro.serve.ann import default_num_lists, kmeans

    num_lists = default_num_lists(item_matrix.shape[0])
    clustering = kmeans(item_matrix, num_lists, seed=0)
    results: dict = {
        "workload": {
            "num_users": backend.num_users,
            "num_items": backend.num_items,
            "dim": backend.dim,
            "k": TOP_K,
            "request_users": request_users,
            "num_lists": num_lists,
            "clustered_centers": 256,
        },
        "exact": {
            "seconds": exact_seconds,
            "users_per_sec": request_users / exact_seconds,
        },
        "sweep": [],
    }
    for quant in ANN_QUANTS:
        index = IVFIndex(item_matrix, quant=quant, clustering=clustering)
        for nprobe in ANN_NPROBES:
            approx = ApproxRetriever(backend, index, exclude=exclude,
                                     nprobe=nprobe)
            seconds = _best_time(lambda: approx.retrieve(users, TOP_K),
                                 rounds)
            recall = _recall_at_k(approx.retrieve(users, TOP_K).items,
                                  exact_items)
            results["sweep"].append({
                "quant": quant,
                "nprobe": nprobe,
                "seconds": seconds,
                "users_per_sec": request_users / seconds,
                "speedup_vs_exact": exact_seconds / seconds,
                "recall_at_10": recall,
                "compressed_mbytes": index.compressed_nbytes / 2**20,
            })
    qualifying = [row for row in results["sweep"]
                  if row["recall_at_10"] >= 0.95
                  and row["speedup_vs_exact"] >= 3.0]
    results["best_qualifying"] = (
        max(qualifying, key=lambda row: row["speedup_vs_exact"])
        if qualifying else None)
    results["qualify_floors"] = {"recall_at_10": 0.95, "speedup": 3.0}
    return results


def measure_end_to_end_gnmr(rounds: int = 3) -> dict:
    """Snapshot a real GNMR and serve its full user base, end to end."""
    from repro.core import GNMR, GNMRConfig
    from repro.data import taobao_like
    from repro.serve import RecommendationService

    data = taobao_like(num_users=200, num_items=400, seed=0)
    model = GNMR(data, GNMRConfig(pretrain=False, seed=0))
    service = RecommendationService(model, train=data, batch_users=256)
    seconds = _best_time(lambda: service.recommend_all(TOP_K), rounds)
    return {
        "num_users": data.num_users,
        "num_items": data.num_items,
        "k": TOP_K,
        "users_per_sec": data.num_users / seconds,
        "seconds": seconds,
    }


def collect(rounds: int = 5) -> dict:
    payload = measure_retrieval_throughput(rounds=rounds)
    payload["end_to_end_gnmr"] = measure_end_to_end_gnmr()
    payload["reference_matmul_seconds"] = _reference_matmul_seconds()
    return payload


def collect_ann(rounds: int = 3) -> dict:
    payload = measure_ann_tradeoff(rounds=rounds)
    payload["reference_matmul_seconds"] = _reference_matmul_seconds()
    return payload


def save(payload: dict, path: Path = RESULTS_PATH) -> Path:
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


# ----------------------------------------------------------------------
# pytest-benchmark entry points (explicit runs on dedicated hardware)
# ----------------------------------------------------------------------

def test_bench_serving_throughput(benchmark):
    from conftest import run_once, save_results

    results = run_once(benchmark, collect)
    save_results("serving_throughput", results)
    for batch, row in results["batch_sizes"].items():
        assert row["users_per_sec"] > 0, f"batch {batch} produced no throughput"
    # which batch size wins is a cache-size question and varies by machine,
    # but a larger batch must never *cost* meaningful throughput now that
    # selection is internally chunked (the regression gate enforces the
    # same floor against the committed payload)
    assert results["best_users_per_sec"] > 0
    assert results["scaling"]["monotone_frac"] >= 0.75
    assert results["reference_matmul_seconds"] > 0


def test_bench_serving_ann(benchmark):
    from conftest import run_once, save_results

    results = run_once(benchmark, collect_ann)
    save_results("serving_ann", results)
    assert results["workload"]["num_items"] >= 100_000
    assert results["best_qualifying"] is not None, (
        "no (nprobe, quant) configuration reached recall@10 >= 0.95 "
        "at >= 3x exact throughput")


if __name__ == "__main__":  # CI path: no pytest required
    payload = collect()
    path = save(payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}")
    ann_payload = collect_ann()
    ann_path = save(ann_payload, ANN_RESULTS_PATH)
    print(json.dumps(ann_payload, indent=2))
    print(f"\nwrote {ann_path}")

"""CI perf-regression gate over the ``benchmarks/results`` JSON payloads.

Compares a fresh benchmark run against the committed baselines and fails
(exit 1) when the perf story regresses:

* ``substrate_dtype.json`` — the float32 fast path must stay ≥ 1.3× over
  float64 (the absolute bar the substrate bench has always asserted);
* ``substrate_fused.json`` — the fused stacked-CSR SpMM must never drop
  below parity-with-margin (0.9×) *and* must not lose more than the
  tolerance versus the committed baseline speedup. (The fusion win is
  Python/autograd overhead removal, ~1.2× on record — an absolute 1.3×
  bar would fail the committed baseline itself, so this one is relative.)
* ``serving_throughput.json`` — best retrieval users/sec must not regress
  by more than the tolerance versus baseline. Both payloads carry a
  fixed-size reference matmul timing, so the comparison uses
  machine-normalized throughput (users/sec × reference seconds) when
  available and raw users/sec otherwise. Throughput must also be
  monotone-or-flat across serving batch sizes (``scaling.monotone_frac``
  ≥ ``BENCH_MONO_MIN``): the retriever chunks selection internally, so a
  larger request batch must never cost meaningful throughput — the
  pre-PR-6 payloads showed batch 64 *beating* batch 1024 by ~2x, and this
  is the guard against that anomaly returning.
* ``serving_ann.json`` — the approximate-retrieval sweep must contain at
  least one (nprobe × quant) configuration reaching recall@10 ≥
  ``BENCH_ANN_RECALL_MIN`` at ≥ ``BENCH_ANN_SPEEDUP_MIN``× the exact
  blocked path on the ≥100k-item workload. Recall and speedup are
  measured against the same-machine exact run inside one payload, so no
  cross-machine normalization is needed.
* ``http_serving.json`` — the online HTTP tier (``repro.serve.http``)
  must sustain ≥ ``BENCH_HTTP_BATCH_MIN``× the single-client throughput
  when ≥ 8 concurrent closed-loop clients hit the coalescing batcher
  (that amortized catalog scan is the tier's reason to exist), every
  configuration must report zero non-200 responses and positive p50/p99
  latency, and every response body must bit-match a library-direct
  ``RecommendationService`` call (the HTTP tier is a transport, not a
  different answer). The speedup is a same-machine ratio inside one
  payload, so no cross-machine normalization is needed.
* ``training_throughput.json`` — the sampled-propagation training step
  must stay ≥ 3× faster than the full-graph step on the large synthetic
  graph at batch 32 (the row-sparse mini-batch path's reason to exist),
  the async-pipelined step must stay ≥ 1.3× faster than the sync sampled
  step on mean per-step time (layered per-hop blocks + double-buffered
  background extraction — see ``repro.train.pipeline``), the
  sharded-table sampled step (``GNMRConfig(shards=2)``) must cost at
  most ``BENCH_SHARD_MAX``× the unsharded sampled step (sharding is a
  bounded constant-factor tax, never an asymptotic one — see
  ``repro.shard``), and none of the ratios may lose more than the
  tolerance versus the committed baseline. All are same-machine ratios,
  so no normalization is needed. The payload must also carry the
  ``repro.dist`` parameter-server sweep: every (workers × staleness)
  configuration trains at a positive rate, and — only when the payload
  was measured on ≥ 4 cores, since concurrent shard owners need real
  cores — the best sync-mode configuration must reach
  ``BENCH_DIST_MIN`` (1.6×) over the single-process sharded sampled
  step. Payloads from smaller boxes record the sweep (labeled with
  their ``cpu_count``) and skip the speedup bar.
* ``ingest.json`` — the streaming CSV ingestion (``repro.data.ingest``)
  must stay memory-bounded: on a log ≥ 10× the chunk size over the same
  entity universe, transient memory (tracemalloc peak minus what the
  returned dataset retains) must stay within ``BENCH_INGEST_MEM_RATIO``
  (default 3×) of the single-chunk log — peak incremental memory is
  capped by the chunk buffers plus the vocabularies, never the log
  length. Throughput (rows/sec, matmul-normalized like serving) must not
  regress vs baseline by more than the tolerance.

Usage (what CI runs after regenerating the fresh payloads)::

    python benchmarks/check_regression.py \
        --fresh benchmarks/results --baseline benchmarks/baseline

Environment overrides: ``BENCH_TOLERANCE`` (default 0.20),
``BENCH_FLOAT32_MIN`` (default 1.3), ``BENCH_FUSED_MIN`` (default 0.9),
``BENCH_SAMPLED_MIN`` (default 3.0), ``BENCH_ASYNC_MIN`` (default 1.3),
``BENCH_SHARD_MAX`` (default 2.0), ``BENCH_DIST_MIN`` (default 1.6),
``BENCH_MONO_MIN`` (default 0.75),
``BENCH_ANN_RECALL_MIN`` (default 0.95), ``BENCH_ANN_SPEEDUP_MIN``
(default 3.0), ``BENCH_HTTP_BATCH_MIN`` (default 2.0),
``BENCH_INGEST_MEM_RATIO`` (default 3.0).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

TOLERANCE = float(os.environ.get("BENCH_TOLERANCE", "0.20"))
FLOAT32_MIN = float(os.environ.get("BENCH_FLOAT32_MIN", "1.3"))
FUSED_MIN = float(os.environ.get("BENCH_FUSED_MIN", "0.9"))
SAMPLED_MIN = float(os.environ.get("BENCH_SAMPLED_MIN", "3.0"))
ASYNC_MIN = float(os.environ.get("BENCH_ASYNC_MIN", "1.3"))
SHARD_MAX = float(os.environ.get("BENCH_SHARD_MAX", "2.0"))
DIST_MIN = float(os.environ.get("BENCH_DIST_MIN", "1.6"))
MONO_MIN = float(os.environ.get("BENCH_MONO_MIN", "0.75"))
ANN_RECALL_MIN = float(os.environ.get("BENCH_ANN_RECALL_MIN", "0.95"))
ANN_SPEEDUP_MIN = float(os.environ.get("BENCH_ANN_SPEEDUP_MIN", "3.0"))
HTTP_BATCH_MIN = float(os.environ.get("BENCH_HTTP_BATCH_MIN", "2.0"))
INGEST_MEM_RATIO = float(os.environ.get("BENCH_INGEST_MEM_RATIO", "3.0"))


def _load(directory: Path, name: str) -> dict | None:
    path = directory / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def _load_baseline(directory: Path, name: str) -> dict | None:
    """Baseline payload: the given directory, else the git-committed copy.

    CI stashes the committed ``benchmarks/results`` into a baseline dir
    before the benches overwrite it; locally that dir usually doesn't
    exist, so fall back to ``git show HEAD:benchmarks/results/<name>.json``
    — the same committed baseline, without a manual stash step.
    """
    payload = _load(directory, name)
    if payload is not None:
        return payload
    import subprocess

    repo_root = Path(__file__).resolve().parent.parent
    try:
        blob = subprocess.run(
            ["git", "show", f"HEAD:benchmarks/results/{name}.json"],
            cwd=repo_root, capture_output=True, text=True, check=True,
        ).stdout
        return json.loads(blob)
    except (subprocess.CalledProcessError, FileNotFoundError,
            json.JSONDecodeError):
        return None


def _normalized_throughput(payload: dict) -> tuple[float, str]:
    """Machine-normalized serving throughput, or raw when no reference."""
    best = float(payload["best_users_per_sec"])
    reference = payload.get("reference_matmul_seconds")
    if reference:
        return best * float(reference), "normalized"
    return best, "raw"


class Gate:
    def __init__(self):
        self.failures: list[str] = []
        self.checks = 0

    def check(self, label: str, ok: bool, detail: str) -> None:
        self.checks += 1
        status = "PASS" if ok else "FAIL"
        print(f"[{status}] {label}: {detail}")
        if not ok:
            self.failures.append(label)

    def skip(self, label: str, reason: str) -> None:
        print(f"[skip] {label}: {reason}")


def run(fresh_dir: Path, baseline_dir: Path) -> int:
    gate = Gate()

    # -------------------------------------------------- float32 fast path
    dtype = _load(fresh_dir, "substrate_dtype")
    if dtype is None:
        gate.check("substrate_dtype", False, "fresh payload missing")
    else:
        speedup = float(dtype["speedup_float32"])
        gate.check("float32-speedup", speedup >= FLOAT32_MIN,
                   f"{speedup:.2f}x (floor {FLOAT32_MIN}x)")
        for precision in ("float32", "float64"):
            gate.check(f"grad-check-{precision}",
                       dtype[precision]["grad_check"] == "passed",
                       dtype[precision]["grad_check"])

    # -------------------------------------------------------- fused SpMM
    fused = _load(fresh_dir, "substrate_fused")
    fused_base = _load_baseline(baseline_dir, "substrate_fused")
    if fused is None:
        gate.check("substrate_fused", False, "fresh payload missing")
    else:
        speedup = float(fused["speedup_fused"])
        gate.check("fused-speedup-floor", speedup >= FUSED_MIN,
                   f"{speedup:.2f}x (floor {FUSED_MIN}x)")
        if fused_base is None:
            gate.skip("fused-speedup-vs-baseline", "no committed baseline")
        else:
            base = float(fused_base["speedup_fused"])
            floor = base * (1.0 - TOLERANCE)
            gate.check("fused-speedup-vs-baseline", speedup >= floor,
                       f"{speedup:.2f}x vs baseline {base:.2f}x "
                       f"(floor {floor:.2f}x)")

    # -------------------------------------------------------- serving
    serving = _load(fresh_dir, "serving_throughput")
    serving_base = _load_baseline(baseline_dir, "serving_throughput")
    if serving is None:
        gate.check("serving_throughput", False, "fresh payload missing")
    else:
        best = float(serving["best_users_per_sec"])
        gate.check("serving-throughput-positive", best > 0,
                   f"{best:,.0f} users/sec")
        for batch, row in serving["batch_sizes"].items():
            gate.check(f"serving-batch-{batch}",
                       float(row["users_per_sec"]) > 0,
                       f"{row['users_per_sec']:,.0f} users/sec")
        scaling = serving.get("scaling")
        if scaling is None:
            # payloads generated before PR 6 carry no scaling section
            gate.skip("serving-batch-scaling", "payload has no scaling data")
        else:
            frac = float(scaling["monotone_frac"])
            gate.check("serving-batch-scaling", frac >= MONO_MIN,
                       f"worst consecutive batch-size ratio {frac:.2f} "
                       f"(floor {MONO_MIN}; order "
                       f"{scaling['batch_order']})")
        if serving_base is None:
            gate.skip("serving-vs-baseline", "no committed baseline")
        else:
            fresh_value, fresh_kind = _normalized_throughput(serving)
            base_value, base_kind = _normalized_throughput(serving_base)
            if fresh_kind != base_kind:
                # one payload predates the reference timing — fall back
                fresh_value = float(serving["best_users_per_sec"])
                base_value = float(serving_base["best_users_per_sec"])
                fresh_kind = "raw"
            floor = base_value * (1.0 - TOLERANCE)
            gate.check(
                "serving-vs-baseline", fresh_value >= floor,
                f"{fresh_value:,.2f} vs baseline {base_value:,.2f} "
                f"({fresh_kind}; floor {floor:,.2f}, tol {TOLERANCE:.0%})")

    # -------------------------------------------- approximate retrieval
    ann = _load(fresh_dir, "serving_ann")
    if ann is None:
        gate.check("serving_ann", False, "fresh payload missing")
    else:
        num_items = int(ann["workload"]["num_items"])
        gate.check("ann-workload-size", num_items >= 100_000,
                   f"{num_items:,} items (floor 100,000)")
        qualifying = [row for row in ann["sweep"]
                      if float(row["recall_at_10"]) >= ANN_RECALL_MIN
                      and float(row["speedup_vs_exact"]) >= ANN_SPEEDUP_MIN]
        if qualifying:
            best = max(qualifying,
                       key=lambda row: float(row["speedup_vs_exact"]))
            detail = (f"quant={best['quant']} nprobe={best['nprobe']}: "
                      f"{float(best['speedup_vs_exact']):.2f}x at recall@10 "
                      f"{float(best['recall_at_10']):.3f} (floors "
                      f"{ANN_SPEEDUP_MIN}x / {ANN_RECALL_MIN})")
        else:
            sweep = ann["sweep"]
            best_recall = max(float(r["recall_at_10"]) for r in sweep)
            best_speed = max(float(r["speedup_vs_exact"]) for r in sweep)
            detail = (f"no config reaches recall@10 >= {ANN_RECALL_MIN} at "
                      f">= {ANN_SPEEDUP_MIN}x (best recall {best_recall:.3f}, "
                      f"best speedup {best_speed:.2f}x)")
        gate.check("ann-recall-speedup", bool(qualifying), detail)

    # --------------------------------------------------- HTTP serving tier
    http_serving = _load(fresh_dir, "http_serving")
    http_base = _load_baseline(baseline_dir, "http_serving")
    if http_serving is None:
        gate.check("http_serving", False, "fresh payload missing")
    else:
        for name, config in http_serving["configs"].items():
            gate.check(f"http-{name}-clean",
                       int(config["errors"]) == 0 and bool(config["bit_match"]),
                       f"errors={config['errors']} "
                       f"bit_match={config['bit_match']}")
            gate.check(f"http-{name}-latency",
                       float(config["p50_ms"]) > 0
                       and float(config["p99_ms"]) >= float(config["p50_ms"]),
                       f"p50 {float(config['p50_ms']):.2f} ms / "
                       f"p99 {float(config['p99_ms']):.2f} ms at "
                       f"{float(config['users_per_sec']):,.0f} users/sec")
        batched = http_serving["configs"]["exact_batched"]
        gate.check("http-concurrency", int(batched["clients"]) >= 8,
                   f"{batched['clients']} concurrent clients (floor 8)")
        speedup = float(http_serving["batched_speedup_vs_single"])
        gate.check("http-batched-speedup", speedup >= HTTP_BATCH_MIN,
                   f"{speedup:.2f}x vs single-client baseline "
                   f"(floor {HTTP_BATCH_MIN}x)")
        if http_base is None:
            gate.skip("http-speedup-vs-baseline", "no committed baseline")
        else:
            base = float(http_base["batched_speedup_vs_single"])
            floor = base * (1.0 - TOLERANCE)
            gate.check("http-speedup-vs-baseline", speedup >= floor,
                       f"{speedup:.2f}x vs baseline {base:.2f}x "
                       f"(floor {floor:.2f}x)")

    # ------------------------------------------------- streaming ingest
    ingest = _load(fresh_dir, "ingest")
    ingest_base = _load_baseline(baseline_dir, "ingest")
    if ingest is None:
        gate.check("ingest", False, "fresh payload missing")
    else:
        chunk_rows = int(ingest["chunk_rows"])
        big_rows = int(ingest["big"]["rows"])
        gate.check("ingest-log-size", big_rows >= 10 * chunk_rows,
                   f"{big_rows:,} rows vs chunk {chunk_rows:,} "
                   f"(floor 10x the chunk)")
        ratio = float(ingest["transient_ratio_big_vs_small"])
        gate.check("ingest-transient-memory", ratio <= INGEST_MEM_RATIO,
                   f"{ratio:.2f}x transient memory on "
                   f"{big_rows // max(int(ingest['small']['rows']), 1)}x the "
                   f"rows (ceiling {INGEST_MEM_RATIO}x: peak incremental "
                   f"memory must be chunk-bounded, not log-bounded)")
        rows_per_sec = float(ingest["rows_per_sec"])
        gate.check("ingest-throughput-positive", rows_per_sec > 0,
                   f"{rows_per_sec:,.0f} rows/sec")
        if ingest_base is None:
            gate.skip("ingest-vs-baseline", "no committed baseline")
        else:
            reference = ingest.get("reference_matmul_seconds")
            base_reference = ingest_base.get("reference_matmul_seconds")
            fresh_value = rows_per_sec
            base_value = float(ingest_base["rows_per_sec"])
            kind = "raw"
            if reference and base_reference:
                fresh_value *= float(reference)
                base_value *= float(base_reference)
                kind = "normalized"
            floor = base_value * (1.0 - TOLERANCE)
            gate.check("ingest-vs-baseline", fresh_value >= floor,
                       f"{fresh_value:,.2f} vs baseline {base_value:,.2f} "
                       f"({kind}; floor {floor:,.2f}, tol {TOLERANCE:.0%})")

    # -------------------------------------------------------- training
    training = _load(fresh_dir, "training_throughput")
    training_base = _load_baseline(baseline_dir, "training_throughput")
    if training is None:
        gate.check("training_throughput", False, "fresh payload missing")
    else:
        speedup = float(training["speedup_sampled_large"])
        gate.check("sampled-training-speedup", speedup >= SAMPLED_MIN,
                   f"{speedup:.2f}x (floor {SAMPLED_MIN}x)")
        async_speedup = training.get("speedup_async_large")
        if async_speedup is None:
            gate.check("async-training-speedup", False,
                       "payload has no speedup_async_large")
        else:
            async_speedup = float(async_speedup)
            gate.check("async-training-speedup", async_speedup >= ASYNC_MIN,
                       f"{async_speedup:.2f}x vs sync sampled "
                       f"(floor {ASYNC_MIN}x, mean step time)")
        shard_overhead = training.get("shard_overhead_large")
        if shard_overhead is None:
            gate.check("shard-overhead", False,
                       "payload has no shard_overhead_large")
        else:
            shard_overhead = float(shard_overhead)
            gate.check("shard-overhead", shard_overhead <= SHARD_MAX,
                       f"{shard_overhead:.2f}x vs unsharded sampled "
                       f"(ceiling {SHARD_MAX}x, mean step time)")
        for scale, row in training["scales"].items():
            for mode in ("full", "sampled", "async", "sharded"):
                if mode not in row:
                    gate.check(f"training-{scale}-{mode}", False,
                               "mode missing from payload")
                    continue
                gate.check(f"training-{scale}-{mode}",
                           float(row[mode]["steps_per_sec"]) > 0,
                           f"{row[mode]['steps_per_sec']:.2f} steps/sec "
                           f"({row[mode]['step_ms']:.1f} ms/step)")
        dist = training.get("dist")
        if dist is None:
            gate.check("dist-sweep", False, "payload has no dist section")
        else:
            rows = dist["sync_sweep"] + dist["async_staleness_curve"]
            gate.check("dist-sweep",
                       bool(rows) and all(float(r["steps_per_sec"]) > 0
                                          for r in rows),
                       f"{len(dist['sync_sweep'])} sync + "
                       f"{len(dist['async_staleness_curve'])} async "
                       f"configs trained on {dist['cpu_count']} core(s)")
            dist_speedup = float(dist["sync_speedup"])
            if int(dist["cpu_count"]) >= 4:
                gate.check("dist-sync-speedup", dist_speedup >= DIST_MIN,
                           f"{dist_speedup:.2f}x vs single-process sharded "
                           f"sampled at workers="
                           f"{dist['sync_best_workers']} (floor "
                           f"{DIST_MIN}x on {dist['cpu_count']} cores)")
            else:
                # a 1-core box serializes the owner processes — the sweep
                # documents transport overhead, not the concurrency win
                gate.skip("dist-sync-speedup",
                          f"measured on {dist['cpu_count']} core(s); the "
                          f"{DIST_MIN}x bar needs >= 4")
        if training_base is None:
            gate.skip("sampled-speedup-vs-baseline", "no committed baseline")
        else:
            base = float(training_base["speedup_sampled_large"])
            floor = base * (1.0 - TOLERANCE)
            gate.check("sampled-speedup-vs-baseline", speedup >= floor,
                       f"{speedup:.2f}x vs baseline {base:.2f}x "
                       f"(floor {floor:.2f}x)")
        base_async = (training_base or {}).get("speedup_async_large")
        if base_async is None:
            # committed baselines from before the async pipeline landed
            gate.skip("async-speedup-vs-baseline", "no committed baseline")
        elif async_speedup is not None:
            floor = float(base_async) * (1.0 - TOLERANCE)
            gate.check("async-speedup-vs-baseline", async_speedup >= floor,
                       f"{async_speedup:.2f}x vs baseline "
                       f"{float(base_async):.2f}x (floor {floor:.2f}x)")
        base_shard = (training_base or {}).get("shard_overhead_large")
        if base_shard is None:
            # committed baselines from before sharded tables landed
            gate.skip("shard-overhead-vs-baseline", "no committed baseline")
        elif shard_overhead is not None:
            # the overhead ratio sits near 1.0 (measured ~1.05), so a purely
            # multiplicative ceiling (base*1.2 = 1.26x) would leave less
            # headroom than the absolute SHARD_MAX bar was chosen to give —
            # runner noise on a near-parity ratio is additive, not
            # proportional. Floor the ceiling at 1 + 2*tolerance.
            ceiling = max(float(base_shard) * (1.0 + TOLERANCE),
                          1.0 + 2.0 * TOLERANCE)
            gate.check("shard-overhead-vs-baseline",
                       shard_overhead <= ceiling,
                       f"{shard_overhead:.2f}x vs baseline "
                       f"{float(base_shard):.2f}x (ceiling {ceiling:.2f}x)")

    print(f"\n{gate.checks} checks, {len(gate.failures)} failure(s)"
          + (f": {', '.join(gate.failures)}" if gate.failures else ""))
    return 1 if gate.failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", type=Path,
                        default=Path(__file__).parent / "results",
                        help="directory with the freshly generated JSON")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).parent / "baseline",
                        help="directory with the committed baseline JSON")
    args = parser.parse_args(argv)
    return run(args.fresh, args.baseline)


if __name__ == "__main__":
    sys.exit(main())

"""Streaming-ingestion benchmark: throughput and memory boundedness.

Generates synthetic CSV event logs over a FIXED entity universe and runs
them through :func:`repro.data.ingest.ingest_csv`, measuring

* **throughput** — rows/sec through the full two-pass pipeline (parse,
  vocabulary build, preallocated fill), normalized across machines with
  the same fixed-size reference matmul the serving bench uses;
* **transient memory** — tracemalloc peak minus what remains allocated
  when ingest returns (i.e. peak *above* the retained dataset). The
  chunked two-pass design keeps this proportional to the chunk buffers
  plus the entity vocabularies, never the log, so a log ≥ 10× the chunk
  size must not cost meaningfully more transient memory than a
  single-chunk log over the same universe.

Emits ``benchmarks/results/ingest.json`` for the CI regression gate
(``benchmarks/check_regression.py``), which asserts:

* the measured log is ≥ 10× the chunk size (the boundedness claim is
  vacuous otherwise);
* transient memory on the big log stays within
  ``BENCH_INGEST_MEM_RATIO`` (default 3×) of the single-chunk log —
  peak incremental memory is bounded by a chunk-derived cap, independent
  of log length;
* normalized throughput does not regress vs the committed baseline.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_ingest.py
"""

import json
import tempfile
import time
import tracemalloc
from pathlib import Path

import numpy as np

RESULTS_PATH = Path(__file__).parent / "results" / "ingest.json"

CHUNK_ROWS = 20_000
#: the big log is ≥ 10x the chunk size — the boundedness scenario
BIG_ROWS = 10 * CHUNK_ROWS
SMALL_ROWS = CHUNK_ROWS
NUM_USERS = 4_000
NUM_ITEMS = 8_000
BEHAVIORS = ("click", "click", "click", "cart", "buy")


def _reference_matmul_seconds(rounds: int = 5) -> float:
    """Fixed dense matmul timing — normalizes throughput across machines."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((512, 512))
    b = rng.standard_normal((512, 512))
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        (a @ b).sum()
        best = min(best, time.perf_counter() - start)
    return best


def _write_log(path: Path, num_rows: int, seed: int) -> None:
    """Event log over the fixed universe; entities saturate early so the
    vocabularies cost the same for every log length."""
    rng = np.random.default_rng(seed)
    users = rng.integers(0, NUM_USERS, num_rows)
    items = rng.integers(0, NUM_ITEMS, num_rows)
    kinds = rng.integers(0, len(BEHAVIORS), num_rows)
    times = rng.integers(1, 10_000_000, num_rows)
    with path.open("w") as handle:
        handle.write("user,item,behavior,timestamp\n")
        for u, i, k, t in zip(users, items, kinds, times):
            handle.write(f"u{u},i{i},{BEHAVIORS[k]},{t}\n")


def _measure(path: Path) -> dict:
    from repro.data import ingest_csv

    tracemalloc.start()
    try:
        start = time.perf_counter()
        dataset, report = ingest_csv(path, name="bench",
                                     target_behavior="buy",
                                     chunk_rows=CHUNK_ROWS)
        elapsed = time.perf_counter() - start
        current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return {
        "rows": report.rows_read,
        "chunks": report.chunks,
        "num_users": dataset.num_users,
        "num_items": dataset.num_items,
        "seconds": elapsed,
        "rows_per_sec": report.rows_read / elapsed,
        "retained_bytes": current,
        "peak_bytes": peak,
        "transient_bytes": peak - current,
    }


def main() -> None:
    reference = _reference_matmul_seconds()
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        small_log = tmp_path / "small.csv"
        big_log = tmp_path / "big.csv"
        print(f"writing logs: {SMALL_ROWS:,} and {BIG_ROWS:,} rows over "
              f"{NUM_USERS:,} users x {NUM_ITEMS:,} items")
        _write_log(small_log, SMALL_ROWS, seed=1)
        _write_log(big_log, BIG_ROWS, seed=2)

        print(f"ingesting small log ({SMALL_ROWS:,} rows, "
              f"chunk {CHUNK_ROWS:,})...")
        small = _measure(small_log)
        print(f"ingesting big log ({BIG_ROWS:,} rows, "
              f"chunk {CHUNK_ROWS:,})...")
        big = _measure(big_log)

    ratio = big["transient_bytes"] / max(small["transient_bytes"], 1)
    payload = {
        "chunk_rows": CHUNK_ROWS,
        "universe": {"num_users": NUM_USERS, "num_items": NUM_ITEMS},
        "small": small,
        "big": big,
        "transient_ratio_big_vs_small": ratio,
        "rows_per_sec": big["rows_per_sec"],
        "reference_matmul_seconds": reference,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"\nthroughput: {big['rows_per_sec']:,.0f} rows/sec "
          f"({big['rows']:,} rows in {big['seconds']:.2f}s)")
    print(f"transient memory: small {small['transient_bytes']:,} B, "
          f"big {big['transient_bytes']:,} B -> ratio {ratio:.2f} "
          f"on {BIG_ROWS // SMALL_ROWS}x the rows")
    print(f"wrote {RESULTS_PATH}")


if __name__ == "__main__":
    main()

"""Extension ablations — design decisions beyond the paper's own figures.

DESIGN.md §6 calls out the substitutions and defaults this reproduction
makes; this bench quantifies them on the Taobao-like dataset:

* autoencoder pre-training vs random init (paper §III-A),
* mean vs literal-sum neighbor aggregation in η (Eq. 2),
* gated ψ fusion vs uniform averaging,
* attention sub-space count S,
* hinge (Eq. 7) vs BPR training loss.
"""

from benchmarks.conftest import run_once, save_results
from repro.experiments import format_table, run_ext_ablation


def test_extension_ablations(benchmark, bench_scale):
    results = run_once(benchmark, run_ext_ablation, "taobao", bench_scale)
    save_results("ext_ablation", results)
    print()
    print(format_table(results, title="Extension ablations (taobao-like)"))

    for row in results.values():
        assert 0.0 <= row["NDCG@10"] <= row["HR@10"] <= 1.0
    # the literal-sum aggregator is expected to be the unstable outlier
    default = results["GNMR (paper defaults)"]
    print(f"defaults: HR@10={default['HR@10']:.3f}")

"""Figure 3 — impact of model depth (propagation layers 0–3).

The paper plots HR/NDCG change relative to GNMR-2 on MovieLens and Yelp:
depth 2–3 beats depth 1 beats depth 0 (no message passing), with returns
flattening or dipping at 3.
"""

import pytest

from benchmarks.conftest import run_once, save_results
from repro.experiments import format_table, run_fig3


@pytest.mark.parametrize("dataset", ["movielens", "yelp"])
def test_fig3_depth_sweep(benchmark, bench_scale, dataset):
    results = run_once(benchmark, run_fig3, dataset, bench_scale)
    save_results(f"fig3_{dataset}", results)
    table = {f"GNMR-{depth}": row for depth, row in results.items()}
    print()
    print(format_table(table, title=f"Figure 3 — depth sweep on {dataset}"))

    for row in results.values():
        assert 0.0 <= row["NDCG@10"] <= row["HR@10"] <= 1.0
    assert results[2]["HR% vs GNMR-2"] == pytest.approx(0.0)

    # shape: message passing (depth ≥ 1) should beat no propagation (depth 0)
    best_deep = max(results[d]["HR@10"] for d in (1, 2, 3))
    print(f"best propagated HR@10 = {best_deep:.3f} vs depth-0 = "
          f"{results[0]['HR@10']:.3f}")
    assert best_deep >= results[0]["HR@10"]

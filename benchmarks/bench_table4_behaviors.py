"""Table IV — performance with different behavior-type subsets.

For each behavior type the "w/o X" variant removes its edges from GNMR's
propagation graph; "only <target>" keeps nothing but the target behavior.
The paper reports the full multi-behavior model winning every comparison.
"""

import pytest

from benchmarks.conftest import run_once, save_results
from repro.experiments import PAPER_TABLE4, format_table, run_table4


@pytest.mark.parametrize("dataset", ["movielens", "yelp"])
def test_table4_behavior_subsets(benchmark, bench_scale, dataset):
    results = run_once(benchmark, run_table4, dataset, bench_scale)
    save_results(f"table4_{dataset}", results)
    print()
    print(format_table(results, title=f"Table IV — behavior ablation on {dataset} (ours)"))
    paper_rows = {label: {"HR@10": hr, "NDCG@10": ndcg}
                  for label, (hr, ndcg) in PAPER_TABLE4[dataset].items()}
    print(format_table(paper_rows, title=f"Table IV — {dataset} (paper)"))

    full = results["GNMR"]
    target = "like"
    only_label = f"only {target}"
    print(f"full vs only-target: ΔHR@10="
          f"{full['HR@10'] - results[only_label]['HR@10']:+.3f}")

    for row in results.values():
        assert 0.0 <= row["NDCG@10"] <= row["HR@10"] <= 1.0
    # shape: using every behavior should beat relying on the target alone
    # (paper: on both metrics; we require HR within noise tolerance).
    assert full["HR@10"] >= results[only_label]["HR@10"] - 0.03

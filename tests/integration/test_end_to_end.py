"""End-to-end integration tests: training actually improves ranking."""

import numpy as np
import pytest

from repro.core import GNMR, GNMRConfig
from repro.data import build_eval_candidates, leave_one_out_split, taobao_like
from repro.eval import evaluate_model
from repro.models import BiasMF, NMTR
from repro.train import TrainConfig


@pytest.fixture(scope="module")
def pipeline():
    data = taobao_like(num_users=70, num_items=150, seed=23)
    split = leave_one_out_split(data)
    candidates = build_eval_candidates(split.train, split.test_users,
                                       split.test_items, num_negatives=49,
                                       rng=np.random.default_rng(1))
    return data, split, candidates


TRAIN = TrainConfig(epochs=25, steps_per_epoch=10, batch_users=24,
                    per_user=3, lr=5e-3, seed=3)


class TestLearning:
    def test_gnmr_improves_over_untrained(self, pipeline):
        _, split, candidates = pipeline
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=3))
        before = evaluate_model(model, candidates).ndcg(10)
        model.fit(split.train, TRAIN)
        after = evaluate_model(model, candidates).ndcg(10)
        assert after > before + 0.03

    def test_gnmr_beats_random_ranking(self, pipeline):
        _, split, candidates = pipeline
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=3))
        model.fit(split.train, TRAIN)
        result = evaluate_model(model, candidates)
        # random ranking over 50 candidates → HR@10 = 0.2 in expectation
        assert result.hr(10) > 0.3

    def test_biasmf_learns(self, pipeline):
        _, split, candidates = pipeline
        model = BiasMF(split.train.num_users, split.train.num_items, seed=3)
        before = evaluate_model(model, candidates).hr(10)
        model.fit(split.train, TRAIN)
        after = evaluate_model(model, candidates).hr(10)
        assert after > before

    def test_nmtr_multitask_learns(self, pipeline):
        _, split, candidates = pipeline
        model = NMTR(split.train, seed=3)
        model.fit(split.train, TRAIN)
        assert evaluate_model(model, candidates).hr(10) > 0.25


class TestReproducibility:
    def test_same_seed_same_model(self, pipeline):
        _, split, candidates = pipeline
        scores = []
        for _ in range(2):
            model = GNMR(split.train, GNMRConfig(pretrain=False, seed=5,
                                                 num_layers=1))
            model.fit(split.train, TrainConfig(epochs=3, steps_per_epoch=4,
                                               seed=5, lr=5e-3))
            scores.append(model.score(np.array([0, 1, 2]), np.array([3, 4, 5])))
        np.testing.assert_allclose(scores[0], scores[1])

    def test_different_seeds_differ(self, pipeline):
        _, split, _ = pipeline
        a = GNMR(split.train, GNMRConfig(pretrain=False, seed=1))
        b = GNMR(split.train, GNMRConfig(pretrain=False, seed=2))
        assert not np.allclose(a.user_embeddings.data, b.user_embeddings.data)


class TestSerialization:
    def test_state_roundtrip_preserves_scores(self, pipeline):
        _, split, _ = pipeline
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=7))
        model.fit(split.train, TrainConfig(epochs=2, steps_per_epoch=3, seed=7))
        state = model.state_dict()
        clone = GNMR(split.train, GNMRConfig(pretrain=False, seed=99))
        clone.load_state_dict(state)
        users, items = np.array([0, 1, 2]), np.array([4, 5, 6])
        np.testing.assert_allclose(model.score(users, items),
                                   clone.score(users, items))

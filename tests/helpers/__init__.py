"""Shared test substrate (fault injection, crash hooks)."""

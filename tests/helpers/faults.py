"""Fault-injection substrate for the dist transport and the trainer.

Two deliberately tiny tools:

* :class:`FaultyChannel` wraps any transport channel (``ShmRing``,
  ``PipeChannel``, or a plain in-process queue shim) and injects the
  classic network failure modes at chosen frame indices — *drop* (the
  frame never arrives), *truncate* (the frame arrives short, with intact
  transport framing so the corruption surfaces at the codec layer, not as
  a transport error), and *duplicate* (the frame arrives twice). The
  strict push-sequence check in ``ShardOwner`` and the bounds-checked
  codec must turn every one of these into a loud error rather than a
  silently wrong table.
* :class:`CrashAtStep` is a ``Trainer`` step hook that raises
  :class:`TrainerKilled` once a chosen global step completes — the
  in-process stand-in for ``kill -9`` mid-epoch, after that step's
  mid-run training-state save has already hit disk.
"""

from __future__ import annotations

from repro.dist.codec import frame, unframe


class TrainerKilled(RuntimeError):
    """The simulated crash raised by :class:`CrashAtStep`."""


class CrashAtStep:
    """Step hook killing the trainer right after ``at_step`` completes.

    Global steps are 1-based loop-iteration counts, the same clock
    ``TrainConfig.save_every_steps`` runs on — crashing at a multiple of
    the save period simulates dying immediately after a state save.
    """

    def __init__(self, at_step: int):
        self.at_step = int(at_step)

    def __call__(self, trainer, global_step: int) -> None:
        if global_step == self.at_step:
            raise TrainerKilled(f"simulated crash after step {global_step}")


class FaultyChannel:
    """A transport channel that mangles chosen frames on ``send``.

    Parameters
    ----------
    inner:
        The wrapped channel; anything with the ``send(framed, timeout,
        alive)`` / ``recv(timeout)`` / ``close()`` surface.
    drop, truncate, duplicate:
        Iterables of 0-based send indices to mangle. A truncated frame
        keeps a valid transport length prefix over a shortened *body*
        (``truncate_to`` bytes), so it decodes far enough to fail the
        codec's bounds checks — the way a torn shm write actually
        presents.
    """

    def __init__(self, inner, *, drop=(), truncate=(), duplicate=(),
                 truncate_to: int = 8):
        self.inner = inner
        self.drop = frozenset(int(i) for i in drop)
        self.truncate = frozenset(int(i) for i in truncate)
        self.duplicate = frozenset(int(i) for i in duplicate)
        self.truncate_to = int(truncate_to)
        self.sent = 0
        self.faults = {"dropped": 0, "truncated": 0, "duplicated": 0}

    def send(self, framed: bytes, timeout=None, alive=None) -> None:
        index = self.sent
        self.sent += 1
        if index in self.drop:
            self.faults["dropped"] += 1
            return
        if index in self.truncate:
            framed = frame(unframe(framed)[:self.truncate_to])
            self.faults["truncated"] += 1
        self.inner.send(framed, timeout=timeout, alive=alive)
        if index in self.duplicate:
            self.faults["duplicated"] += 1
            self.inner.send(framed, timeout=timeout, alive=alive)

    def recv(self, timeout=None):
        return self.inner.recv(timeout=timeout)

    def close(self) -> None:
        self.inner.close()

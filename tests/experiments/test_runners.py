"""Tests of the experiment runners at tiny scale (fast, smoke-level)."""

import pytest

from repro.experiments import (
    ExperimentScale,
    run_fig2,
    run_fig3,
    run_table1,
    run_table2,
    run_table4,
)

# Minimal scale so runner tests stay quick; shape checks live in benchmarks.
SMOKE = ExperimentScale(num_users=40, num_items=100, num_negatives=20,
                        epochs=2, steps_per_epoch=3, batch_users=8,
                        per_user=2, pretrain_epochs=1)


class TestTable1:
    def test_rows_for_all_datasets(self):
        rows = run_table1(SMOKE)
        assert set(rows) == {"yelp-like", "movielens-like", "taobao-like"}
        for row in rows.values():
            assert row["User #"] == SMOKE.num_users
            assert row["Interaction #"] > 0
            assert 0 < row["density"] < 1


class TestTable2:
    def test_subset_of_models(self):
        results = run_table2("taobao", SMOKE, models=("BiasMF", "GNMR"))
        assert set(results) == {"BiasMF", "GNMR"}
        for row in results.values():
            assert 0.0 <= row["HR@10"] <= 1.0
            assert 0.0 <= row["NDCG@10"] <= row["HR@10"] + 1e-9


class TestFig2:
    def test_all_variants_present(self):
        results = run_fig2("taobao", SMOKE)
        assert set(results) == {"GNMR-be", "GNMR-ma", "GNMR"}


class TestTable4:
    def test_variant_labels(self):
        results = run_table4("taobao", SMOKE)
        assert "GNMR" in results
        assert "only purchase" in results
        assert "w/o page_view" in results
        # one w/o per behavior + only-target + full
        assert len(results) == 4 + 2


class TestFig3:
    def test_depths_and_reference(self):
        results = run_fig3("taobao", SMOKE, depths=(0, 2))
        assert set(results) == {0, 2}
        assert results[2]["HR% vs GNMR-2"] == pytest.approx(0.0)
        assert "HR% vs GNMR-2" in results[0]

"""Tests of report formatting."""

from repro.experiments import format_comparison, format_table


class TestFormatTable:
    def test_contains_rows_and_columns(self):
        text = format_table({"GNMR": {"HR@10": 0.857, "NDCG@10": 0.575}},
                            title="Table II")
        assert "Table II" in text
        assert "GNMR" in text
        assert "0.857" in text and "0.575" in text

    def test_missing_cells_blank(self):
        text = format_table({"a": {"x": 1.0}, "b": {"y": 2.0}})
        lines = text.splitlines()
        assert any("a" in line for line in lines)
        assert "2.000" in text

    def test_column_order_is_first_seen(self):
        text = format_table({"r": {"z": 1.0, "a": 2.0}})
        header = text.splitlines()[0]
        assert header.index("z") < header.index("a")


class TestFormatComparison:
    def test_shows_both_sides(self):
        measured = {"GNMR": {"HR@10": 0.40, "NDCG@10": 0.25}}
        paper = {"GNMR": (0.857, 0.575)}
        text = format_comparison(measured, paper)
        assert "ours" in text and "paper" in text
        assert "0.400" in text and "0.857" in text

    def test_paper_only_rows_included(self):
        text = format_comparison({}, {"BiasMF": (0.7, 0.4)})
        assert "BiasMF" in text

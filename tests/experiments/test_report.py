"""Tests of the EXPERIMENTS.md generator."""

import json

import pytest

import repro.experiments.report as report_module


@pytest.fixture
def results_dir(tmp_path, monkeypatch):
    monkeypatch.setattr(report_module, "RESULTS_DIR", tmp_path)
    return tmp_path


class TestGenerate:
    def test_handles_missing_results(self, results_dir):
        text = report_module.generate()
        assert "EXPERIMENTS" in text
        assert "missing" in text

    def test_includes_saved_table2(self, results_dir):
        payload = {"GNMR": {"HR@10": 0.41, "NDCG@10": 0.28},
                   "BiasMF": {"HR@10": 0.30, "NDCG@10": 0.20}}
        (results_dir / "table2_taobao.json").write_text(json.dumps(payload))
        text = report_module.generate()
        assert "0.410" in text
        assert "GNMR places" in text

    def test_includes_fig2(self, results_dir):
        payload = {"GNMR-be": {"HR@10": 0.4, "NDCG@10": 0.3},
                   "GNMR-ma": {"HR@10": 0.41, "NDCG@10": 0.31},
                   "GNMR": {"HR@10": 0.45, "NDCG@10": 0.33}}
        (results_dir / "fig2_yelp.json").write_text(json.dumps(payload))
        text = report_module.generate()
        assert "GNMR-ma" in text

    def test_table3_string_keys_tolerated(self, results_dir):
        """json round-trips int keys as strings; generator must cope."""
        payload = {"GNMR": {"HR": {str(n): 0.5 for n in (1, 3, 5, 7, 9)},
                            "NDCG": {str(n): 0.4 for n in (1, 3, 5, 7, 9)}}}
        (results_dir / "table3.json").write_text(json.dumps(payload))
        text = report_module.generate()
        assert "@9" in text

"""Tests of experiment specifications and the model factory."""

import pytest

from repro.experiments import (
    MODEL_NAMES,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    TINY_SCALE,
    dataset_by_name,
    make_model,
)
from repro.data import leave_one_out_split


class TestScales:
    def test_train_config_from_scale(self):
        config = TINY_SCALE.train_config()
        assert config.epochs == TINY_SCALE.epochs
        assert config.lr == TINY_SCALE.lr

    def test_train_config_overrides(self):
        config = TINY_SCALE.train_config(epochs=99)
        assert config.epochs == 99

    def test_gnmr_config_from_scale(self):
        config = TINY_SCALE.gnmr_config(num_layers=1)
        assert config.num_layers == 1
        assert config.pretrain_epochs == TINY_SCALE.pretrain_epochs


class TestDatasets:
    @pytest.mark.parametrize("name,target", [
        ("movielens", "like"), ("yelp", "like"), ("taobao", "purchase"),
    ])
    def test_by_name(self, name, target):
        dataset = dataset_by_name(name, TINY_SCALE)
        assert dataset.num_users == TINY_SCALE.num_users
        assert dataset.target_behavior == target

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            dataset_by_name("netflix", TINY_SCALE)


class TestModelFactory:
    @pytest.fixture(scope="class")
    def train(self):
        return leave_one_out_split(dataset_by_name("taobao", TINY_SCALE)).train

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_every_table2_model_constructible(self, name, train):
        model = make_model(name, train, TINY_SCALE)
        assert model.num_parameters() > 0

    def test_model_names_match_instances(self, train):
        for name in MODEL_NAMES:
            assert make_model(name, train, TINY_SCALE).name == name

    def test_gnmr_overrides(self, train):
        model = make_model("GNMR", train, TINY_SCALE,
                           gnmr_overrides={"num_layers": 1, "pretrain": False})
        assert len(model.layers) == 1

    def test_unknown_model(self, train):
        with pytest.raises(ValueError):
            make_model("SVD++", train, TINY_SCALE)


class TestPaperNumbers:
    def test_table2_roster_complete(self):
        assert set(PAPER_TABLE2) == set(MODEL_NAMES)
        for model, rows in PAPER_TABLE2.items():
            assert set(rows) == {"movielens", "yelp", "taobao"}

    def test_gnmr_wins_every_dataset_in_paper(self):
        for dataset in ("movielens", "yelp", "taobao"):
            gnmr_hr = PAPER_TABLE2["GNMR"][dataset][0]
            for model in MODEL_NAMES[:-1]:
                assert gnmr_hr > PAPER_TABLE2[model][dataset][0]

    def test_table3_gnmr_dominates(self):
        for n in (1, 3, 5, 7, 9):
            for model in PAPER_TABLE3:
                if model == "GNMR":
                    continue
                assert PAPER_TABLE3["GNMR"]["HR"][n] > PAPER_TABLE3[model]["HR"][n]

    def test_table4_full_model_best(self):
        for dataset, rows in PAPER_TABLE4.items():
            full_hr = rows["GNMR"][0]
            for label, (hr, _) in rows.items():
                if label != "GNMR":
                    assert full_hr > hr

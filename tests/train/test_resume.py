"""Mid-epoch checkpoint/resume: ``train N == train M + resume N-M``, bit-exact.

The oracle behind the whole resume subsystem: a training state written by
``TrainConfig.save_state`` and continued with ``fit(resume_from=...)``
must reproduce the uninterrupted run *bit for bit* — final parameters,
optimizer state, loss trace, eval history, rng consumption — across every
propagation mode (full graph, sampled subgraphs, the async prefetch
pipeline) and dist sync training. The crash flavor uses the
:class:`helpers.faults.CrashAtStep` hook: die right after a mid-epoch
save, resume from the partial epoch, and still match.
"""

import numpy as np
import pytest
from helpers.faults import CrashAtStep, TrainerKilled

from repro.core import GNMR, GNMRConfig
from repro.data import leave_one_out_split, taobao_like
from repro.models import BiasMF
from repro.train.resume import load_training_state
from repro.train.trainer import TrainConfig

SPLIT = leave_one_out_split(taobao_like(num_users=40, num_items=90, seed=0))


def bias_mf():
    return BiasMF(SPLIT.train.num_users, SPLIT.train.num_items, seed=0)


def gnmr(shards=None, strategy="range"):
    return GNMR(SPLIT.train, GNMRConfig(pretrain=False, seed=0, num_layers=2,
                                        dropout=0.0, shards=shards,
                                        shard_strategy=strategy))


def config(epochs, **overrides):
    base = dict(epochs=epochs, steps_per_epoch=4, batch_users=8, per_user=2,
                seed=0, eval_every=1)
    base.update(overrides)
    return TrainConfig(**base)


def assert_states_equal(model_a, model_b, history_a=None, history_b=None):
    state_a, state_b = model_a.state_dict(), model_b.state_dict()
    assert sorted(state_a) == sorted(state_b)
    for key in state_a:
        np.testing.assert_array_equal(state_a[key], state_b[key], err_msg=key)
    if history_a is not None:
        assert history_a.rows == history_b.rows


class TestEndOfRunResume:
    """Save at the end of a short run, resume to the full length."""

    @pytest.mark.parametrize("optimizer", ["adam", "sgd"])
    def test_biasmf_10_equals_6_plus_4(self, tmp_path, optimizer):
        state = str(tmp_path / "state.npz")
        full = bias_mf()
        h_full = full.fit(SPLIT.train, config(10, optimizer=optimizer))
        part = bias_mf()
        part.fit(SPLIT.train, config(6, optimizer=optimizer,
                                     save_state=state))
        resumed = bias_mf()
        h_resumed = resumed.fit(SPLIT.train,
                                config(10, optimizer=optimizer),
                                resume_from=state)
        assert_states_equal(full, resumed, h_full, h_resumed)

    def test_history_rows_carry_over(self, tmp_path):
        state = str(tmp_path / "state.npz")
        part = bias_mf()
        part.fit(SPLIT.train, config(3, save_state=state))
        resumed = bias_mf()
        history = resumed.fit(SPLIT.train, config(5), resume_from=state)
        assert [row["epoch"] for row in history.rows] == [0, 1, 2, 3, 4]

    def test_config_mismatch_is_rejected(self, tmp_path):
        state = str(tmp_path / "state.npz")
        bias_mf().fit(SPLIT.train, config(2, save_state=state))
        with pytest.raises(ValueError, match="lr: saved"):
            bias_mf().fit(SPLIT.train, config(4, lr=0.5), resume_from=state)

    def test_already_finished_state_is_rejected(self, tmp_path):
        state = str(tmp_path / "state.npz")
        bias_mf().fit(SPLIT.train, config(3, save_state=state))
        with pytest.raises(ValueError, match="steps in"):
            bias_mf().fit(SPLIT.train, config(2), resume_from=state)


class TestCrashResume:
    """SIGKILL-style death right after a mid-epoch save, then resume."""

    def test_biasmf_mid_epoch_crash(self, tmp_path):
        state = str(tmp_path / "state.npz")
        full = bias_mf()
        h_full = full.fit(SPLIT.train, config(5))
        crashed = bias_mf()
        trainer_cfg = config(5, save_state=state, save_every_steps=3)
        from repro.train.trainer import Trainer

        trainer = Trainer(crashed, SPLIT.train, trainer_cfg,
                          step_hook=CrashAtStep(9))  # mid-epoch 2
        with pytest.raises(TrainerKilled):
            trainer.run()
        saved = load_training_state(state)
        assert saved.global_step == 9  # the save at step 9 hit disk first
        resumed = bias_mf()
        h_resumed = resumed.fit(SPLIT.train, config(5), resume_from=state)
        assert_states_equal(full, resumed, h_full, h_resumed)

    @pytest.mark.parametrize("propagation,dist", [
        ("full", "off"), ("sampled", "off"), ("async", "off"),
        ("sampled", "sync"), ("async", "sync"),
    ])
    def test_gnmr_modes_mid_epoch_crash(self, tmp_path, propagation, dist):
        state = str(tmp_path / "state.npz")
        overrides = dict(propagation=propagation, fanout=5, shards=3)
        if dist != "off":
            overrides.update(dist=dist, dist_transport="inline")
        full = gnmr(shards=3)
        h_full = full.fit(SPLIT.train, config(4, **overrides))
        crashed = gnmr(shards=3)
        from repro.train.trainer import Trainer

        trainer = Trainer(crashed, SPLIT.train,
                          config(4, save_state=state, save_every_steps=5,
                                 **overrides),
                          step_hook=CrashAtStep(10))
        with pytest.raises(TrainerKilled):
            trainer.run()
        resumed = gnmr(shards=3)
        h_resumed = resumed.fit(SPLIT.train, config(4, **overrides),
                                resume_from=state)
        assert_states_equal(full, resumed, h_full, h_resumed)

    def test_real_process_dist_resume(self, tmp_path):
        """End-of-epoch save with real shard-owner processes over shm."""
        state = str(tmp_path / "state.npz")
        overrides = dict(propagation="sampled", fanout=5, shards=2,
                         dist="sync", dist_transport="shm")
        full = gnmr(shards=2)
        full.fit(SPLIT.train, config(3, **overrides))
        part = gnmr(shards=2)
        part.fit(SPLIT.train, config(2, save_state=state, **overrides))
        resumed = gnmr(shards=2)
        resumed.fit(SPLIT.train, config(3, **overrides), resume_from=state)
        assert_states_equal(full, resumed)


class TestFinalEpochEval:
    """The final epoch must evaluate even when eval_every skips past it —
    including when that final epoch runs inside a resumed session."""

    @staticmethod
    def run_with_eval(model, cfg, resume_from=None):
        calls = []

        def eval_fn():
            calls.append(True)
            return float(len(calls))

        history = model.fit(SPLIT.train, cfg, eval_fn=eval_fn,
                            resume_from=resume_from)
        return history, calls

    def test_uninterrupted_final_eval(self):
        history, calls = self.run_with_eval(bias_mf(), config(6, eval_every=4))
        # epochs 0..5: eval at epoch 3 (period) and epoch 5 (final)
        assert len(calls) == 2
        assert [row["epoch"] for row in history.rows
                if row.get("metric") is not None] == [3, 5]

    def test_resumed_final_eval(self, tmp_path):
        state = str(tmp_path / "state.npz")
        part = bias_mf()
        part.fit(SPLIT.train, config(4, eval_every=4, save_state=state))
        resumed = bias_mf()
        history, calls = self.run_with_eval(
            resumed, config(6, eval_every=4), resume_from=state)
        # only epochs 4 and 5 run here; epoch 5 is final → must evaluate
        assert len(calls) == 1
        evaluated = [row["epoch"] for row in history.rows
                     if row.get("metric") is not None]
        assert evaluated[-1] == 5

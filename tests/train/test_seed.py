"""Tests of reproducibility helpers."""

import numpy as np

from repro.train import seeded_rng, spawn_rngs


def test_seeded_rng_deterministic():
    a = seeded_rng(5).random(10)
    b = seeded_rng(5).random(10)
    np.testing.assert_array_equal(a, b)


def test_seeded_rng_none_gives_fresh_entropy():
    a = seeded_rng(None).random(10)
    b = seeded_rng(None).random(10)
    assert not np.array_equal(a, b)


def test_spawn_rngs_independent_streams():
    rngs = spawn_rngs(0, 3)
    draws = [rng.random(5) for rng in rngs]
    assert not np.array_equal(draws[0], draws[1])
    assert not np.array_equal(draws[1], draws[2])


def test_spawn_rngs_reproducible():
    a = [rng.random(4) for rng in spawn_rngs(9, 2)]
    b = [rng.random(4) for rng in spawn_rngs(9, 2)]
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x, y)

"""Sampled-propagation training: config plumbing, parity, GNMR smoke test."""

import numpy as np
import pytest

from repro.core import GNMR, GNMRConfig
from repro.data import build_eval_candidates, leave_one_out_split, taobao_like
from repro.eval import evaluate_model
from repro.models import BiasMF, NGCF
from repro.tensor import RowSparseGrad
from repro.train import TrainConfig, Trainer


@pytest.fixture(scope="module")
def tiny_split():
    return leave_one_out_split(taobao_like(num_users=60, num_items=150, seed=0))


class TestConfigPlumbing:
    def test_unknown_propagation_rejected(self, tiny_split):
        model = BiasMF(tiny_split.train.num_users, tiny_split.train.num_items, seed=0)
        with pytest.raises(ValueError):
            Trainer(model, tiny_split.train,
                    TrainConfig(propagation="half")).run()

    def test_bad_eval_every_rejected(self, tiny_split):
        model = BiasMF(tiny_split.train.num_users, tiny_split.train.num_items, seed=0)
        with pytest.raises(ValueError):
            Trainer(model, tiny_split.train, TrainConfig(eval_every=0))

    def test_zero_fanout_rejected(self, tiny_split):
        # 0 means "no cap" only on the CLI (mapped to None there); in the
        # API it would silently sample nothing, so the trainer rejects it
        model = BiasMF(tiny_split.train.num_users, tiny_split.train.num_items, seed=0)
        with pytest.raises(ValueError):
            Trainer(model, tiny_split.train,
                    TrainConfig(propagation="sampled", fanout=0))

    def test_eval_every_skips_intermediate_epochs(self, tiny_split):
        model = BiasMF(tiny_split.train.num_users, tiny_split.train.num_items, seed=0)
        calls = []
        config = TrainConfig(epochs=5, steps_per_epoch=1, eval_every=2, seed=0)
        history = Trainer(model, tiny_split.train, config,
                          eval_fn=lambda: calls.append(1) or 0.5).run()
        # epochs 1, 3 (every 2nd) plus the forced final epoch 4
        assert len(calls) == 3
        with_metric = [i for i, row in enumerate(history.rows) if "metric" in row]
        assert with_metric == [1, 3, 4]

    def test_grad_clip_damps_updates(self, tiny_split):
        # Adam's step size is scale-invariant to the gradient magnitude, so
        # clipping bites through eps: gradients clipped to ~1e-10 make
        # sqrt(v_hat) vanish against eps=1e-8 and updates collapse. Compare
        # total movement with and without the clip on identical runs.
        def movement(grad_clip):
            model = BiasMF(tiny_split.train.num_users,
                           tiny_split.train.num_items, seed=0)
            before = {n: p.data.copy() for n, p in model.named_parameters()}
            config = TrainConfig(epochs=2, steps_per_epoch=3, batch_users=8,
                                 per_user=2, grad_clip=grad_clip, seed=0,
                                 l2_weight=0.0)
            Trainer(model, tiny_split.train, config).run()
            return sum(float(np.abs(p.data - before[n]).sum())
                       for n, p in model.named_parameters())

        assert movement(1e-10) < 0.01 * movement(None)

    def test_epoch_loss_normalized_per_step(self, tiny_split):
        model = BiasMF(tiny_split.train.num_users, tiny_split.train.num_items, seed=0)
        config = TrainConfig(epochs=1, steps_per_epoch=4, batch_users=6,
                             per_user=2, seed=0, lr=1e-6)
        history = Trainer(model, tiny_split.train, config).run()
        # per-step normalization: an epoch's loss is the mean per-step value,
        # each step being a sum over ~batch pairs + the L2 term; with margin
        # 1.0 and near-zero scores each pair contributes ~1, so the reported
        # loss must be on the order of the per-step pair count, not O(1)
        assert history.rows[0]["loss"] > 2.0


class TestSampledFallback:
    def test_non_graph_model_trains_in_sampled_mode(self, tiny_split):
        model = BiasMF(tiny_split.train.num_users, tiny_split.train.num_items, seed=0)
        config = TrainConfig(epochs=6, steps_per_epoch=4, batch_users=12,
                             per_user=2, propagation="sampled", seed=0)
        history = Trainer(model, tiny_split.train, config).run()
        losses = history.series("loss")
        assert losses[-1] < losses[0]

    def test_default_l2_batch_matches_full(self, tiny_split):
        # models without embedding tables keep the fallback: every
        # parameter is dense-touched each step, so batch L2 == full L2
        # (BiasMF/NCF now override l2_batch batch-locally — see
        # tests/models/test_sparse_baselines.py)
        from repro.models.base import Recommender
        from repro.nn.losses import l2_regularization
        from repro.nn.module import Parameter

        class DenseOnly(Recommender):
            def __init__(self):
                super().__init__(4, 4)
                self.w = Parameter(np.arange(6, dtype=np.float64), name="w")

        model = DenseOnly()
        users = np.array([0, 1]); items = np.array([2, 3])
        batch = model.l2_batch(users, items, items, 1e-3)
        full = l2_regularization(model.parameters(), 1e-3)
        assert batch.item() == pytest.approx(full.item())


class TestSampledGNMR:
    def test_row_sparse_grads_reach_tables(self, tiny_split):
        model = GNMR(tiny_split.train, GNMRConfig(pretrain=False, seed=0))
        users = np.arange(6); pos = np.arange(6); neg = np.arange(6, 12)
        pos_s, neg_s = model.sampled_batch_scores(
            users, pos, neg, fanout=3, rng=np.random.default_rng(0))
        loss = (1.0 - pos_s + neg_s).relu().sum()
        loss = loss + model.l2_batch(users, pos, neg, 1e-4)
        loss.backward()
        assert isinstance(model.user_embeddings.grad, RowSparseGrad)
        assert isinstance(model.item_embeddings.grad, RowSparseGrad)
        # layer parameters still get dense gradients
        layer_param = model.layers[0].aggregation.w3
        assert isinstance(layer_param.grad, np.ndarray)

    def test_sampled_scores_match_full_at_unlimited_fanout(self, tiny_split):
        # fanout=None with enough hops covers the full reachable graph; the
        # sampled forward then reproduces full-graph scores up to the
        # boundary effect of unreached nodes — on this tiny graph the
        # 2-layer expansion reaches everything, so scores agree closely
        model = GNMR(tiny_split.train, GNMRConfig(pretrain=False, seed=0,
                                                  dropout=0.0))
        model.eval()
        users = np.arange(10)
        pos = np.arange(10)
        neg = np.arange(10, 20)
        full_pos, full_neg = model.batch_scores(users, pos, neg)
        s_pos, s_neg = model.sampled_batch_scores(
            users, pos, neg, fanout=None, rng=np.random.default_rng(0))
        np.testing.assert_allclose(s_pos.data, full_pos.data, rtol=1e-6, atol=1e-8)
        np.testing.assert_allclose(s_neg.data, full_neg.data, rtol=1e-6, atol=1e-8)

    def test_sampled_vs_full_metric_within_tolerance(self, tiny_split):
        candidates = build_eval_candidates(
            tiny_split.train, tiny_split.test_users, tiny_split.test_items,
            num_negatives=49, rng=np.random.default_rng(0))

        def train_one(propagation):
            model = GNMR(tiny_split.train,
                         GNMRConfig(pretrain=False, seed=0, num_layers=1))
            config = TrainConfig(epochs=8, steps_per_epoch=6, batch_users=16,
                                 per_user=2, seed=0, propagation=propagation,
                                 fanout=8)
            history = Trainer(model, tiny_split.train, config).run()
            outcome = evaluate_model(model, candidates)
            return history.series("loss"), outcome.hr(10)

        full_losses, full_hr = train_one("full")
        sampled_losses, sampled_hr = train_one("sampled")
        assert full_losses[-1] < full_losses[0]
        assert sampled_losses[-1] < sampled_losses[0]
        assert abs(full_hr - sampled_hr) <= 0.25

    def test_sampled_ngcf_trains(self, tiny_split):
        model = NGCF(tiny_split.train, seed=0, num_layers=1)
        config = TrainConfig(epochs=4, steps_per_epoch=4, batch_users=12,
                             per_user=2, propagation="sampled", fanout=5,
                             seed=0)
        history = Trainer(model, tiny_split.train, config).run()
        losses = history.series("loss")
        assert losses[-1] < losses[0]
        assert not model.training  # trainer leaves the model in eval mode


class TestFullPathUnchanged:
    def test_full_propagation_float64_golden(self, tiny_split):
        # the full-graph float64 path must stay bit-identical: same batches,
        # same losses, same parameters as the pre-refactor trainer
        model_a = GNMR(tiny_split.train,
                       GNMRConfig(pretrain=False, seed=0, num_layers=1))
        model_b = GNMR(tiny_split.train,
                       GNMRConfig(pretrain=False, seed=0, num_layers=1))
        config = TrainConfig(epochs=2, steps_per_epoch=3, batch_users=8,
                             per_user=2, seed=0)
        Trainer(model_a, tiny_split.train, config).run()
        Trainer(model_b, tiny_split.train, config).run()
        for (name, pa), (_, pb) in zip(model_a.named_parameters(),
                                       model_b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data, err_msg=name)

"""Async pipeline: ordering, determinism, equivalence, lifecycle."""

import threading
import time

import pytest

from repro.core import GNMR, GNMRConfig
from repro.data import leave_one_out_split, taobao_like
from repro.models import BiasMF, NGCF
from repro.train import SampledBatchPipeline, TrainConfig, Trainer


@pytest.fixture(scope="module")
def tiny_split():
    return leave_one_out_split(taobao_like(num_users=60, num_items=150, seed=0))


def _collect(pipe):
    with pipe:
        return [(p.step, p.batch, p.block) for p in pipe]


class TestPipelineMechanics:
    def test_delivers_in_step_order(self):
        def extract(batch, rng):
            time.sleep(rng.random() * 0.002)  # jitter worker completion
            return batch[0]

        out = _collect(SampledBatchPipeline(
            draw_batch=lambda rng: [0],
            extract=extract, total_steps=20, seed=0, workers=3))
        assert [p[0] for p in out] == list(range(20))

    def test_batches_drawn_in_step_order_regardless_of_workers(self):
        def draws(rng):
            return [rng.integers(0, 1000)]

        batches = {w: [p[1][0] for p in _collect(SampledBatchPipeline(
            draws, lambda b, r: None, total_steps=12, seed=7, workers=w))]
            for w in (0, 1, 3)}
        assert batches[0] == batches[1] == batches[3]

    def test_extraction_rng_deterministic_at_fixed_workers(self):
        def extract(batch, rng):
            return float(rng.random())

        runs = [[p[2] for p in _collect(SampledBatchPipeline(
            lambda rng: [0], extract, total_steps=10, seed=3, workers=2))]
            for _ in range(2)]
        assert runs[0] == runs[1]

    def test_inline_matches_one_worker_streams(self):
        def extract(batch, rng):
            return float(rng.random())

        def run(workers):
            return [p[2] for p in _collect(SampledBatchPipeline(
                lambda rng: [0], extract, total_steps=8, seed=5,
                workers=workers))]

        assert run(0) == run(1)

    def test_extraction_streams_invariant_to_worker_count(self):
        """Per-step rng split: the trace is a property of (seed, step),
        never of how many workers happened to execute it."""
        def extract(batch, rng):
            return float(rng.random())

        def run(workers):
            return [p[2] for p in _collect(SampledBatchPipeline(
                lambda rng: [0], extract, total_steps=12, seed=5,
                workers=workers))]

        reference = run(0)
        for workers in (1, 2, 3):
            assert run(workers) == reference, f"workers={workers} diverged"

    def test_empty_batches_skip_extraction(self):
        calls = []

        def extract(batch, rng):
            calls.append(batch)
            return batch

        out = _collect(SampledBatchPipeline(
            lambda rng: [], extract, total_steps=4, seed=0, workers=1))
        assert calls == []
        assert all(p[2] is None for p in out)

    def test_worker_exception_reaches_consumer(self):
        def extract(batch, rng):
            raise RuntimeError("boom")

        pipe = SampledBatchPipeline(lambda rng: [0], extract,
                                    total_steps=3, seed=0, workers=1)
        with pytest.raises(RuntimeError, match="boom"):
            next(pipe)

    def test_early_close_joins_workers(self):
        pipe = SampledBatchPipeline(lambda rng: [0],
                                    lambda b, r: time.sleep(0.001),
                                    total_steps=1000, seed=0, workers=2)
        next(pipe)
        pipe.close()
        assert all(not t.is_alive() for t in pipe._threads)
        with pytest.raises(RuntimeError):
            next(pipe)

    def test_close_is_idempotent(self):
        pipe = SampledBatchPipeline(lambda rng: [0], lambda b, r: None,
                                    total_steps=2, seed=0, workers=1)
        pipe.close()
        pipe.close()

    def test_buffer_depth_bounds_prefetch(self):
        produced = []
        lock = threading.Lock()

        def extract(batch, rng):
            with lock:
                produced.append(batch[0])
            return batch[0]

        counter = iter(range(100))
        pipe = SampledBatchPipeline(lambda rng: [next(counter)], extract,
                                    total_steps=50, seed=0, workers=1,
                                    depth=2)
        next(pipe)
        time.sleep(0.1)  # give the worker time to run ahead as far as allowed
        with lock:
            ahead = len(produced)
        pipe.close()
        # depth=2 double-buffering: ≤ depth queued + depth done + 1 in flight
        assert ahead <= 2 * 2 + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SampledBatchPipeline(lambda r: [], lambda b, r: None, -1)
        with pytest.raises(ValueError):
            SampledBatchPipeline(lambda r: [], lambda b, r: None, 1, workers=-1)
        with pytest.raises(ValueError):
            SampledBatchPipeline(lambda r: [], lambda b, r: None, 1, depth=0)


class TestAsyncTraining:
    def _losses(self, tiny_split, model_fn, workers, epochs=3):
        model = model_fn()
        config = TrainConfig(epochs=epochs, steps_per_epoch=4, batch_users=8,
                             per_user=2, propagation="async", fanout=(6, 4),
                             workers=workers, seed=0)
        history = Trainer(model, tiny_split.train, config).run()
        return history.series("loss")

    def test_async_matches_sync_trajectory_at_one_worker(self, tiny_split):
        # the satellite guarantee: workers=1 (background thread) replays
        # the exact rng streams of workers=0 (inline, synchronous)
        def make():
            return GNMR(tiny_split.train,
                        GNMRConfig(pretrain=False, seed=0, num_layers=2))

        sync = self._losses(tiny_split, make, workers=0)
        async_ = self._losses(tiny_split, make, workers=1)
        assert sync == async_

    def test_async_reproducible_at_fixed_worker_count(self, tiny_split):
        def make():
            return GNMR(tiny_split.train,
                        GNMRConfig(pretrain=False, seed=0, num_layers=2))

        assert (self._losses(tiny_split, make, workers=2)
                == self._losses(tiny_split, make, workers=2))

    def test_cross_worker_determinism_golden(self, tiny_split):
        """The ISSUE-5 golden: a short async training trace recorded at
        workers=0 is reproduced BIT-EXACTLY by workers=1 and workers=2.

        Worker count is an execution knob, not a sampling knob: extraction
        rngs are spawned per step, so re-partitioning the steps across
        workers replays identical neighborhoods. Beyond the loss trace,
        the final parameter state must also be bit-identical.
        """
        def make():
            return GNMR(tiny_split.train,
                        GNMRConfig(pretrain=False, seed=0, num_layers=2))

        def trace(workers):
            model = make()
            config = TrainConfig(epochs=2, steps_per_epoch=4, batch_users=8,
                                 per_user=2, propagation="async",
                                 fanout=(6, 4), workers=workers, seed=0)
            losses = Trainer(model, tiny_split.train, config).run().series("loss")
            return losses, model.state_dict()

        golden_losses, golden_state = trace(workers=0)
        for workers in (1, 2):
            losses, state = trace(workers)
            assert losses == golden_losses, (
                f"workers={workers} loss trace diverged from the "
                f"workers=0 golden")
            assert set(state) == set(golden_state)
            for name, value in golden_state.items():
                assert (state[name] == value).all(), (
                    f"workers={workers} parameter {name} diverged")

    def test_async_ngcf_trains(self, tiny_split):
        model = NGCF(tiny_split.train, seed=0, num_layers=1)
        config = TrainConfig(epochs=4, steps_per_epoch=4, batch_users=12,
                             per_user=2, propagation="async", fanout=5,
                             workers=1, seed=0)
        history = Trainer(model, tiny_split.train, config).run()
        losses = history.series("loss")
        assert losses[-1] < losses[0]

    def test_async_non_graph_fallback_trains(self, tiny_split):
        model = BiasMF(tiny_split.train.num_users,
                       tiny_split.train.num_items, seed=0)
        config = TrainConfig(epochs=5, steps_per_epoch=4, batch_users=12,
                             per_user=2, propagation="async", workers=1,
                             seed=0)
        history = Trainer(model, tiny_split.train, config).run()
        losses = history.series("loss")
        assert losses[-1] < losses[0]

    def test_early_stopping_closes_pipeline(self, tiny_split):
        before = threading.active_count()
        model = BiasMF(tiny_split.train.num_users,
                       tiny_split.train.num_items, seed=0)
        config = TrainConfig(epochs=50, steps_per_epoch=2, batch_users=4,
                             per_user=1, propagation="async", workers=2,
                             early_stopping_patience=1, seed=0)
        Trainer(model, tiny_split.train, config,
                eval_fn=lambda: 0.5).run()  # constant metric → stop early
        deadline = time.time() + 5
        while threading.active_count() > before and time.time() < deadline:
            time.sleep(0.01)
        assert threading.active_count() <= before

    def test_trainer_validates_pipeline_knobs(self, tiny_split):
        model = BiasMF(tiny_split.train.num_users,
                       tiny_split.train.num_items, seed=0)
        with pytest.raises(ValueError):
            Trainer(model, tiny_split.train, TrainConfig(workers=-1))
        with pytest.raises(ValueError):
            Trainer(model, tiny_split.train, TrainConfig(prefetch_depth=0))
        with pytest.raises(ValueError):
            Trainer(model, tiny_split.train, TrainConfig(propagation="warp"))

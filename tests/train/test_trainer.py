"""Tests of the generic pairwise trainer (Algorithm 1)."""

import numpy as np
import pytest

from repro.models import BiasMF
from repro.train import TrainConfig, Trainer


@pytest.fixture
def setup(small_taobao):
    from repro.data import leave_one_out_split

    split = leave_one_out_split(small_taobao)
    model = BiasMF(split.train.num_users, split.train.num_items, seed=0)
    return split.train, model


class TestTraining:
    def test_loss_decreases(self, setup):
        train, model = setup
        config = TrainConfig(epochs=20, steps_per_epoch=6, batch_users=16,
                             per_user=2, lr=5e-3, seed=0)
        history = Trainer(model, train, config).run()
        losses = history.series("loss")
        assert losses[-1] < losses[0]

    def test_history_length(self, setup):
        train, model = setup
        config = TrainConfig(epochs=7, steps_per_epoch=2, seed=0)
        history = Trainer(model, train, config).run()
        assert len(history) == 7

    def test_lr_decay_applied(self, setup):
        train, model = setup
        config = TrainConfig(epochs=3, steps_per_epoch=1, lr=1e-2,
                             lr_decay=0.5, seed=0)
        history = Trainer(model, train, config).run()
        lrs = history.series("lr")
        assert lrs == [5e-3, 2.5e-3, 1.25e-3]

    def test_model_left_in_eval_mode(self, setup):
        train, model = setup
        Trainer(model, train, TrainConfig(epochs=1, steps_per_epoch=1)).run()
        assert not model.training

    def test_eval_fn_recorded(self, setup):
        train, model = setup
        calls = []

        def fake_eval():
            calls.append(1)
            return 0.5

        config = TrainConfig(epochs=3, steps_per_epoch=1, seed=0)
        history = Trainer(model, train, config, eval_fn=fake_eval).run()
        assert len(calls) == 3
        assert history.series("metric") == [0.5, 0.5, 0.5]

    def test_early_stopping(self, setup):
        train, model = setup
        metrics = iter([0.5, 0.4, 0.3, 0.2, 0.1, 0.05])
        config = TrainConfig(epochs=10, steps_per_epoch=1, seed=0,
                             early_stopping_patience=2)
        history = Trainer(model, train, config, eval_fn=lambda: next(metrics)).run()
        assert len(history) == 3  # stopped after 2 non-improving checks

    def test_bpr_loss_option(self, setup):
        train, model = setup
        config = TrainConfig(epochs=3, steps_per_epoch=2, loss="bpr", seed=0)
        history = Trainer(model, train, config).run()
        assert np.isfinite(history.last()["loss"])

    def test_unknown_loss_rejected(self, setup):
        train, model = setup
        with pytest.raises(ValueError):
            Trainer(model, train, TrainConfig(loss="bogus"))

    def test_deterministic_given_seed(self, small_taobao):
        from repro.data import leave_one_out_split

        split = leave_one_out_split(small_taobao)
        config = TrainConfig(epochs=3, steps_per_epoch=3, seed=42)
        histories = []
        for _ in range(2):
            model = BiasMF(split.train.num_users, split.train.num_items, seed=7)
            histories.append(Trainer(model, split.train, config).run())
        assert histories[0].series("loss") == histories[1].series("loss")

"""Tests of training callbacks."""

import pytest

from repro.train import EarlyStopping, HistoryRecorder


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2, mode="max")
        assert not stopper.update(0.5)
        assert not stopper.update(0.4)
        assert stopper.update(0.3)

    def test_improvement_resets(self):
        stopper = EarlyStopping(patience=2, mode="max")
        stopper.update(0.5)
        stopper.update(0.4)
        assert not stopper.update(0.6)  # improvement
        assert stopper.best == 0.6
        assert not stopper.update(0.5)
        assert stopper.update(0.4)

    def test_min_mode(self):
        stopper = EarlyStopping(patience=1, mode="min")
        assert not stopper.update(1.0)
        assert not stopper.update(0.5)
        assert stopper.update(0.7)

    def test_min_delta(self):
        stopper = EarlyStopping(patience=1, mode="max", min_delta=0.1)
        stopper.update(0.5)
        assert stopper.update(0.55)  # not enough improvement

    def test_best_step_tracked(self):
        stopper = EarlyStopping(patience=5, mode="max")
        for value in [0.1, 0.9, 0.3]:
            stopper.update(value)
        assert stopper.best_step == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(mode="sideways")
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestHistoryRecorder:
    def test_record_and_series(self):
        history = HistoryRecorder()
        history.record(loss=1.0, metric=0.5)
        history.record(loss=0.5)
        assert history.series("loss") == [1.0, 0.5]
        assert history.series("metric") == [0.5]

    def test_last(self):
        history = HistoryRecorder()
        assert history.last() == {}
        history.record(loss=2.0)
        assert history.last() == {"loss": 2.0}

    def test_len(self):
        history = HistoryRecorder()
        history.record(a=1)
        history.record(a=2)
        assert len(history) == 2

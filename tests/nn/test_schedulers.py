"""Tests of learning-rate schedules."""

import numpy as np
import pytest

from repro.nn import Adam, ConstantSchedule, ExponentialDecay, StepDecay
from repro.nn.module import Parameter


def make_opt(lr=1.0):
    return Adam([Parameter(np.zeros(1))], lr=lr)


class TestExponentialDecay:
    def test_paper_decay_rate(self):
        """The paper's 0.96 decay: lr_n = lr0 · 0.96ⁿ."""
        opt = make_opt(1e-3)
        sched = ExponentialDecay(opt, rate=0.96)
        for epoch in range(1, 6):
            lr = sched.step()
            assert lr == pytest.approx(1e-3 * 0.96 ** epoch)
            assert opt.lr == lr

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ExponentialDecay(make_opt(), rate=0.0)
        with pytest.raises(ValueError):
            ExponentialDecay(make_opt(), rate=1.5)

    def test_rate_one_is_constant(self):
        sched = ExponentialDecay(make_opt(0.5), rate=1.0)
        for _ in range(10):
            assert sched.step() == 0.5


class TestStepDecay:
    def test_halves_every_step_size(self):
        sched = StepDecay(make_opt(1.0), step_size=2, gamma=0.5)
        lrs = [sched.step() for _ in range(6)]
        assert lrs == [1.0, 0.5, 0.5, 0.25, 0.25, 0.125]

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepDecay(make_opt(), step_size=0)


def test_constant_schedule():
    sched = ConstantSchedule(make_opt(0.7))
    assert sched.step() == 0.7
    assert sched.step() == 0.7

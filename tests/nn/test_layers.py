"""Tests of the common neural layers."""

import numpy as np
import pytest

from repro.nn import Dropout, Embedding, GRUCell, Identity, Linear, MLP
from repro.tensor import Tensor, check_gradients


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 3, rng=rng)
        assert layer(Tensor(rng.standard_normal((7, 4)))).shape == (7, 3)

    def test_batched_leading_dims(self, rng):
        layer = Linear(4, 3, rng=rng)
        assert layer(Tensor(rng.standard_normal((2, 5, 4)))).shape == (2, 5, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_matches_manual_affine(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.standard_normal((4, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_gradients_flow(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        check_gradients(lambda x: layer(x).tanh(), [x])
        layer(x).sum().backward()
        assert layer.weight.grad is not None and layer.bias.grad is not None


class TestEmbedding:
    def test_lookup(self, rng):
        table = Embedding(10, 4, rng=rng)
        out = table(np.array([1, 1, 3]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[0], out.data[1])

    def test_gradient_scatter(self, rng):
        table = Embedding(5, 3, rng=rng)
        out = table(np.array([2, 2]))
        out.sum().backward()
        np.testing.assert_allclose(table.weight.grad[2], 2.0)
        np.testing.assert_allclose(table.weight.grad[0], 0.0)

    def test_all_returns_table(self, rng):
        table = Embedding(5, 3, rng=rng)
        assert table.all() is table.weight


class TestDropout:
    def test_eval_mode_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = Tensor(np.ones((4, 4)))
        assert layer(x) is x

    def test_train_mode_drops(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((100, 100))))
        assert (out.data == 0).any()

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.5)


class TestMLP:
    def test_shapes_and_depth(self, rng):
        mlp = MLP([6, 8, 4, 2], rng=rng)
        assert len(mlp.layers) == 3
        assert mlp(Tensor(rng.standard_normal((3, 6)))).shape == (3, 2)

    def test_out_activation(self, rng):
        mlp = MLP([4, 3], out_activation="sigmoid", rng=rng)
        out = mlp(Tensor(rng.standard_normal((10, 4)))).data
        assert ((out > 0) & (out < 1)).all()

    def test_needs_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP([4, 2], activation="bogus")

    def test_gradients_reach_all_layers(self, rng):
        mlp = MLP([4, 5, 2], rng=rng)
        mlp(Tensor(rng.standard_normal((3, 4)))).sum().backward()
        for p in mlp.parameters():
            assert p.grad is not None

    def test_dropout_only_training(self, rng):
        mlp = MLP([4, 8, 2], dropout=0.5, rng=rng)
        x = Tensor(np.ones((2, 4)))
        mlp.eval()
        a = mlp(x).data
        b = mlp(x).data
        np.testing.assert_allclose(a, b)


class TestGRUCell:
    def test_state_shape(self, rng):
        cell = GRUCell(4, 6, rng=rng)
        h = cell(Tensor(rng.standard_normal((3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)

    def test_initial_state_zero(self, rng):
        cell = GRUCell(4, 6, rng=rng)
        np.testing.assert_allclose(cell.initial_state(2).data, 0.0)

    def test_state_bounded(self, rng):
        cell = GRUCell(4, 6, rng=rng)
        h = cell.initial_state(3)
        for _ in range(20):
            h = cell(Tensor(rng.standard_normal((3, 4)) * 5), h)
        assert np.abs(h.data).max() <= 1.0 + 1e-9

    def test_bptt_gradients(self, rng):
        cell = GRUCell(3, 4, rng=rng)
        x = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        h = cell.initial_state(2)
        for _ in range(3):
            h = cell(x, h)
        h.sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in cell.parameters())


def test_identity_layer(rng):
    x = Tensor(rng.standard_normal((2, 2)))
    assert Identity()(x) is x

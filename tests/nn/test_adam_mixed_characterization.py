"""Mixed dense/sparse Adam interop — now exact (timestamped dense path).

The carried-over ROADMAP approximation is gone: when one parameter sees a
dense gradient and then row-sparse ones, Adam switches that parameter to a
timestamped regime (per-row last-updated step + per-step lr history) and
replays the dense updates a row missed before touching it again. After
``sync()`` the result is **bit-identical** to dense Adam fed densified
gradients — the old deviation band collapses to 0. These tests are the
regression anchor for the exact semantics:

* the timestamp bookkeeping is asserted literally;
* a pure-dense Adam run on densified gradients must match the mixed run
  bit for bit after ``sync()`` (the exactness anchor);
* sparse-first parameters keep the legacy per-row-count lazy semantics
  (the sampled-trainer contract), pinned by the mirror implementation.
"""

import numpy as np

from repro.nn import Adam, Parameter
from repro.tensor import RowSparseGrad

SHAPE = (6, 3)
LR = 0.05


def _dense_from(rows, values, num_rows=SHAPE[0]):
    grad = np.zeros((num_rows,) + np.asarray(values).shape[1:])
    np.add.at(grad, rows, values)
    return grad


class MirrorAdam:
    """Reimplementation of the *legacy* lazy mixed semantics.

    Still the characterization for sparse-first parameters: global step
    count for dense updates, per-row counts for sparse ones, counters
    seeded from the global step at first sparse touch, moments frozen on
    skipped rows.
    """

    def __init__(self, data, lr=LR, betas=(0.9, 0.999), eps=1e-8):
        self.data = data.copy()
        self.m = np.zeros_like(data)
        self.v = np.zeros_like(data)
        self.t = 0
        self.counts = None
        self.lr, (self.b1, self.b2), self.eps = lr, betas, eps

    def dense_step(self, grad):
        self.t += 1
        if self.counts is not None:
            self.counts += 1
        self.m = self.b1 * self.m + (1 - self.b1) * grad
        self.v = self.b2 * self.v + (1 - self.b2) * grad**2
        m_hat = self.m / (1 - self.b1**self.t)
        v_hat = self.v / (1 - self.b2**self.t)
        self.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def sparse_step(self, rows, values):
        self.t += 1
        if self.counts is None:
            self.counts = np.full(self.data.shape[0], self.t - 1,
                                  dtype=np.int64)
        self.counts[rows] += 1
        self.m[rows] = self.b1 * self.m[rows] + (1 - self.b1) * values
        self.v[rows] = self.b2 * self.v[rows] + (1 - self.b2) * values**2
        t_rows = self.counts[rows].astype(self.data.dtype)[:, None]
        m_hat = self.m[rows] / (1 - self.b1**t_rows)
        v_hat = self.v[rows] / (1 - self.b2**t_rows)
        self.data[rows] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def _mixed_schedule(seed=0, steps=12):
    """A reproducible dense/sparse interleaving with partial row touches."""
    rng = np.random.default_rng(seed)
    schedule = []
    for step in range(steps):
        if step < 3 or step % 3 == 0:
            schedule.append(("dense", rng.standard_normal(SHAPE)))
        else:
            rows = np.sort(rng.choice(SHAPE[0], size=3, replace=False))
            schedule.append(("sparse", (rows, rng.standard_normal((3, 3)))))
    return schedule


def _run_optimizer(schedule, sync=True):
    p = Parameter(np.zeros(SHAPE))
    opt = Adam([p], lr=LR)
    for kind, payload in schedule:
        if kind == "dense":
            p.grad = payload.copy()
        else:
            rows, values = payload
            p.grad = RowSparseGrad(rows, values.copy(), SHAPE[0])
        opt.step()
    if sync:
        opt.sync()
    return p, opt


def _run_dense_reference(schedule):
    p = Parameter(np.zeros(SHAPE))
    opt = Adam([p], lr=LR)
    for kind, payload in schedule:
        if kind == "dense":
            p.grad = payload.copy()
        else:
            rows, values = payload
            p.grad = _dense_from(rows, values)
        opt.step()
    return p


class TestTimestampBookkeeping:
    def test_first_sparse_touch_after_dense_switches_to_timestamps(self):
        p = Parameter(np.zeros(SHAPE))
        opt = Adam([p], lr=LR)
        for _ in range(4):  # 4 dense steps advance the global clock
            p.grad = np.ones(SHAPE)
            opt.step()
        p.grad = RowSparseGrad([1, 3], np.ones((2, 3)), SHAPE[0])
        opt.step()
        # exact regime: no legacy counters; touched rows stamped at step 5,
        # the rest still current through the last dense step (4)
        assert opt._row_steps[0] is None
        assert opt._row_t[0].tolist() == [4, 5, 4, 5, 4, 4]

    def test_sync_brings_every_row_current(self):
        schedule = _mixed_schedule()
        p, opt = _run_optimizer(schedule, sync=True)
        assert np.all(opt._row_t[0] == opt._param_t[0])

    def test_dense_steps_advance_all_row_counters(self):
        # sparse-first parameters keep the legacy per-row-count semantics
        p = Parameter(np.zeros(SHAPE))
        opt = Adam([p], lr=LR)
        p.grad = RowSparseGrad([0], np.ones((1, 3)), SHAPE[0])
        opt.step()
        p.grad = np.ones(SHAPE)
        opt.step()
        assert opt._row_steps[0].tolist() == [2, 1, 1, 1, 1, 1]
        assert opt._row_t[0] is None


class TestExactnessAnchor:
    def test_mixed_schedule_matches_dense_reference_bitwise(self):
        """THE acceptance check: the old deviation band is now exactly 0."""
        schedule = _mixed_schedule()
        p_mixed, _ = _run_optimizer(schedule, sync=True)
        p_ref = _run_dense_reference(schedule)
        np.testing.assert_array_equal(p_mixed.data, p_ref.data)

    def test_exactness_holds_under_lr_changes(self):
        """The per-step lr history replays scheduler-decayed rates."""
        schedule = _mixed_schedule(seed=3, steps=9)
        p = Parameter(np.zeros(SHAPE))
        opt = Adam([p], lr=LR)
        p_ref = Parameter(np.zeros(SHAPE))
        opt_ref = Adam([p_ref], lr=LR)
        for step, (kind, payload) in enumerate(schedule):
            lr = LR * 0.9 ** step
            opt.lr = opt_ref.lr = lr
            if kind == "dense":
                p.grad = payload.copy()
                p_ref.grad = payload.copy()
            else:
                rows, values = payload
                p.grad = RowSparseGrad(rows, values.copy(), SHAPE[0])
                p_ref.grad = _dense_from(rows, values)
            opt.step()
            opt_ref.step()
        opt.sync()
        np.testing.assert_array_equal(p.data, p_ref.data)

    def test_exactness_with_skipped_steps(self):
        """Steps where the parameter has no grad advance the clock but
        apply nothing — the replay must honor that."""
        rng = np.random.default_rng(7)
        p = Parameter(np.zeros(SHAPE))
        opt = Adam([p], lr=LR)
        p_ref = Parameter(np.zeros(SHAPE))
        opt_ref = Adam([p_ref], lr=LR)
        moves = ["dense", "sparse", None, "sparse", None, "dense", "sparse"]
        for kind in moves:
            if kind == "dense":
                g = rng.standard_normal(SHAPE)
                p.grad = g.copy()
                p_ref.grad = g.copy()
            elif kind == "sparse":
                rows = np.sort(rng.choice(SHAPE[0], size=2, replace=False))
                values = rng.standard_normal((2, 3))
                p.grad = RowSparseGrad(rows, values.copy(), SHAPE[0])
                p_ref.grad = _dense_from(rows, values)
            else:
                p.grad = None
                p_ref.grad = None
            opt.step()
            opt_ref.step()
        opt.sync()
        np.testing.assert_array_equal(p.data, p_ref.data)

    def test_float32_stays_exact(self):
        schedule = _mixed_schedule(seed=5, steps=8)
        p = Parameter(np.zeros(SHAPE, dtype=np.float32))
        opt = Adam([p], lr=LR)
        p_ref = Parameter(np.zeros(SHAPE, dtype=np.float32))
        opt_ref = Adam([p_ref], lr=LR)
        for kind, payload in schedule:
            if kind == "dense":
                p.grad = payload.astype(np.float32)
                p_ref.grad = payload.astype(np.float32)
            else:
                rows, values = payload
                p.grad = RowSparseGrad(rows, values.astype(np.float32),
                                       SHAPE[0])
                p_ref.grad = _dense_from(rows, values).astype(np.float32)
            opt.step()
            opt_ref.step()
        opt.sync()
        np.testing.assert_array_equal(p.data, p_ref.data)

    def test_sync_is_idempotent_and_mid_run_safe(self):
        schedule = _mixed_schedule(seed=11, steps=10)
        p_a = Parameter(np.zeros(SHAPE))
        opt_a = Adam([p_a], lr=LR)
        for step, (kind, payload) in enumerate(schedule):
            if kind == "dense":
                p_a.grad = payload.copy()
            else:
                rows, values = payload
                p_a.grad = RowSparseGrad(rows, values.copy(), SHAPE[0])
            opt_a.step()
            if step == 4:
                opt_a.sync()  # mid-run sync must not change the outcome
        opt_a.sync()
        opt_a.sync()
        p_ref = _run_dense_reference(schedule)
        np.testing.assert_array_equal(p_a.data, p_ref.data)

    def test_all_rows_sparse_step_matches_dense_exactly(self):
        rng = np.random.default_rng(1)
        grads = [rng.standard_normal(SHAPE) for _ in range(6)]
        p_dense = Parameter(np.zeros(SHAPE))
        opt_dense = Adam([p_dense], lr=LR)
        p_sparse = Parameter(np.zeros(SHAPE))
        opt_sparse = Adam([p_sparse], lr=LR)
        all_rows = np.arange(SHAPE[0])
        for step, grad in enumerate(grads):
            p_dense.grad = grad.copy()
            opt_dense.step()
            if step < 2:  # dense prefix on both sides
                p_sparse.grad = grad.copy()
            else:         # then sparse steps touching every row
                p_sparse.grad = RowSparseGrad(all_rows, grad.copy(), SHAPE[0])
            opt_sparse.step()
        np.testing.assert_array_equal(p_sparse.data, p_dense.data)


class TestLegacySparseFirstCharacterization:
    def test_mirror_implementation_matches_bitwise(self):
        """Sparse-first mixing keeps the legacy lazy semantics, pinned by
        the mirror implementation (the sampled-trainer contract: goldens
        depend on per-row-count bias corrections)."""
        rng = np.random.default_rng(2)
        schedule = []
        for step in range(10):
            if step % 3 == 2:  # sparse first, occasional dense afterwards
                schedule.append(("dense", rng.standard_normal(SHAPE)))
            else:
                rows = np.sort(rng.choice(SHAPE[0], size=3, replace=False))
                schedule.append(("sparse", (rows, rng.standard_normal((3, 3)))))
        p, opt = _run_optimizer(schedule, sync=False)
        assert opt._row_t[0] is None  # never entered the exact regime
        mirror = MirrorAdam(np.zeros(SHAPE))
        for kind, payload in schedule:
            if kind == "dense":
                mirror.dense_step(payload)
            else:
                rows, values = payload
                mirror.sparse_step(rows, values)
        np.testing.assert_array_equal(p.data, mirror.data)
        opt.sync()  # no-op for legacy-mode parameters
        np.testing.assert_array_equal(p.data, mirror.data)

"""Characterization of the mixed dense/sparse Adam approximation.

ROADMAP item: when one parameter sees both dense and sparse gradients,
the lazy per-row path is *approximate* — per-row step counters start from
the global step at the first sparse touch, and rows skipped by a sparse
step keep undecayed moments, whereas exact interop would need per-row
timestamps on the dense path as well. These tests pin the current
semantics so future work on exact interop has a regression anchor:

* the counter-initialization rule is asserted literally;
* a mirror implementation of the documented update rule must match the
  optimizer bit for bit (the characterization anchor — any semantic
  change breaks this test before it breaks training);
* the deviation from a pure-dense Adam reference on a mixed schedule is
  bounded by an explicit tolerance band: small (the approximation is
  benign at these scales) but nonzero (it *is* an approximation).
"""

import numpy as np

from repro.nn import Adam, Parameter
from repro.tensor import RowSparseGrad

SHAPE = (6, 3)
LR = 0.05


def _dense_from(rows, values, num_rows=SHAPE[0]):
    grad = np.zeros((num_rows,) + np.asarray(values).shape[1:])
    np.add.at(grad, rows, values)
    return grad


class MirrorAdam:
    """Reimplementation of the documented mixed dense/sparse semantics.

    Independent of the optimizer's code: global step count for dense
    updates, per-row counts for sparse ones, counters seeded from the
    global step at first sparse touch, moments frozen on skipped rows.
    """

    def __init__(self, data, lr=LR, betas=(0.9, 0.999), eps=1e-8):
        self.data = data.copy()
        self.m = np.zeros_like(data)
        self.v = np.zeros_like(data)
        self.t = 0
        self.counts = None
        self.lr, (self.b1, self.b2), self.eps = lr, betas, eps

    def dense_step(self, grad):
        self.t += 1
        if self.counts is not None:
            self.counts += 1
        self.m = self.b1 * self.m + (1 - self.b1) * grad
        self.v = self.b2 * self.v + (1 - self.b2) * grad**2
        m_hat = self.m / (1 - self.b1**self.t)
        v_hat = self.v / (1 - self.b2**self.t)
        self.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def sparse_step(self, rows, values):
        self.t += 1
        if self.counts is None:
            # THE characterized rule: first sparse touch seeds every row's
            # counter from the global step so far
            self.counts = np.full(self.data.shape[0], self.t - 1,
                                  dtype=np.int64)
        self.counts[rows] += 1
        self.m[rows] = self.b1 * self.m[rows] + (1 - self.b1) * values
        self.v[rows] = self.b2 * self.v[rows] + (1 - self.b2) * values**2
        t_rows = self.counts[rows].astype(self.data.dtype)[:, None]
        m_hat = self.m[rows] / (1 - self.b1**t_rows)
        v_hat = self.v[rows] / (1 - self.b2**t_rows)
        self.data[rows] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def _mixed_schedule(seed=0, steps=12):
    """A reproducible dense/sparse interleaving with partial row touches."""
    rng = np.random.default_rng(seed)
    schedule = []
    for step in range(steps):
        if step < 3 or step % 3 == 0:
            schedule.append(("dense", rng.standard_normal(SHAPE)))
        else:
            rows = np.sort(rng.choice(SHAPE[0], size=3, replace=False))
            schedule.append(("sparse", (rows, rng.standard_normal((3, 3)))))
    return schedule


def _run_optimizer(schedule):
    p = Parameter(np.zeros(SHAPE))
    opt = Adam([p], lr=LR)
    for kind, payload in schedule:
        if kind == "dense":
            p.grad = payload.copy()
        else:
            rows, values = payload
            p.grad = RowSparseGrad(rows, values.copy(), SHAPE[0])
        opt.step()
    return p, opt


class TestCounterSeeding:
    def test_first_sparse_touch_seeds_from_global_step(self):
        p = Parameter(np.zeros(SHAPE))
        opt = Adam([p], lr=LR)
        for _ in range(4):  # 4 dense steps advance the global clock
            p.grad = np.ones(SHAPE)
            opt.step()
        p.grad = RowSparseGrad([1, 3], np.ones((2, 3)), SHAPE[0])
        opt.step()
        counts = opt._row_steps[0]
        # touched rows: global step 4 + their own touch; others: global 4
        assert counts.tolist() == [4, 5, 4, 5, 4, 4]

    def test_dense_steps_advance_all_row_counters(self):
        p = Parameter(np.zeros(SHAPE))
        opt = Adam([p], lr=LR)
        p.grad = RowSparseGrad([0], np.ones((1, 3)), SHAPE[0])
        opt.step()
        p.grad = np.ones(SHAPE)
        opt.step()
        assert opt._row_steps[0].tolist() == [2, 1, 1, 1, 1, 1]


class TestCharacterizationAnchor:
    def test_mirror_implementation_matches_bitwise(self):
        """Any change to the mixed semantics must break this first."""
        schedule = _mixed_schedule()
        p, _ = _run_optimizer(schedule)
        mirror = MirrorAdam(np.zeros(SHAPE))
        for kind, payload in schedule:
            if kind == "dense":
                mirror.dense_step(payload)
            else:
                rows, values = payload
                mirror.sparse_step(rows, values)
        np.testing.assert_array_equal(p.data, mirror.data)

    def test_all_rows_sparse_step_matches_dense_exactly(self):
        """Full-row sparse touches are NOT approximate: dense equivalence
        is exact when every row appears in every sparse step."""
        rng = np.random.default_rng(1)
        grads = [rng.standard_normal(SHAPE) for _ in range(6)]
        p_dense = Parameter(np.zeros(SHAPE))
        opt_dense = Adam([p_dense], lr=LR)
        p_sparse = Parameter(np.zeros(SHAPE))
        opt_sparse = Adam([p_sparse], lr=LR)
        all_rows = np.arange(SHAPE[0])
        for step, grad in enumerate(grads):
            p_dense.grad = grad.copy()
            opt_dense.step()
            if step < 2:  # dense prefix on both sides
                p_sparse.grad = grad.copy()
            else:         # then sparse steps touching every row
                p_sparse.grad = RowSparseGrad(all_rows, grad.copy(), SHAPE[0])
            opt_sparse.step()
        np.testing.assert_allclose(p_sparse.data, p_dense.data,
                                   rtol=1e-12, atol=1e-15)


class TestApproximationBand:
    def test_partial_touch_deviation_is_bounded_and_nonzero(self):
        """The documented tolerance band for the approximation.

        Versus a pure-dense Adam fed the densified versions of the same
        gradients, the mixed schedule drifts because (a) rows a sparse
        step skips are *not* updated at all (lazy semantics — the dense
        reference still moves them on its zero-padded gradient via decayed
        momentum), (b) skipped rows keep undecayed moments, and (c) bias
        corrections use per-row counts. Current measured deviation on
        this pinned schedule: 0.1145 after 12 steps of lr=0.05, i.e.
        ~2.3 lr units, dominated by the momentum the dense reference
        applies to skipped rows. The band below (4 lr units) is the
        regression anchor.
        """
        schedule = _mixed_schedule()
        p_mixed, _ = _run_optimizer(schedule)
        reference = MirrorAdam(np.zeros(SHAPE))
        for kind, payload in schedule:
            if kind == "dense":
                reference.dense_step(payload)
            else:
                rows, values = payload
                reference.dense_step(_dense_from(rows, values))
        deviation = np.max(np.abs(p_mixed.data - reference.data))
        assert deviation > 0.0, "mixed path unexpectedly exact now — " \
            "update the characterization (and the ROADMAP item)"
        assert deviation < 4.0 * LR, (
            f"mixed dense/sparse Adam drifted beyond the documented band: "
            f"{deviation:.4f} >= {4.0 * LR}")

"""Tests of the Module/Parameter tree."""

import numpy as np
import pytest

from repro.nn import Linear, MLP, Module, ModuleList, Parameter
from repro.tensor import Tensor


class Composite(Module):
    def __init__(self):
        super().__init__()
        self.direct = Parameter(np.zeros(3))
        self.child = Linear(4, 2, rng=np.random.default_rng(0))
        self.layer_list = [Linear(2, 2, rng=np.random.default_rng(1))]
        self.layer_dict = {"a": Parameter(np.ones((2, 2)))}

    def forward(self, x):
        return self.child(x)


class TestParameterDiscovery:
    def test_named_parameters_cover_all_containers(self):
        names = {name for name, _ in Composite().named_parameters()}
        assert "direct" in names
        assert "child.weight" in names and "child.bias" in names
        assert "layer_list.0.weight" in names
        assert "layer_dict.a" in names

    def test_parameters_count(self):
        model = Composite()
        # direct(3) + child W(8)+b(2) + list W(4)+b(2) + dict(4)
        assert model.num_parameters() == 3 + 8 + 2 + 4 + 2 + 4

    def test_module_list_registered(self):
        container = ModuleList([Linear(2, 2, rng=np.random.default_rng(0))])
        assert len(container.parameters()) == 2
        assert len(container) == 1


class TestModes:
    def test_train_eval_propagates(self):
        model = Composite()
        model.eval()
        assert not model.training
        assert not model.child.training
        model.train()
        assert model.child.training

    def test_zero_grad(self):
        model = Composite()
        out = model(Tensor(np.ones((1, 4))))
        out.sum().backward()
        assert model.child.weight.grad is not None
        model.zero_grad()
        assert model.child.weight.grad is None


class TestStateDict:
    def test_roundtrip(self):
        a = MLP([4, 3, 2], rng=np.random.default_rng(0))
        b = MLP([4, 3, 2], rng=np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        x = Tensor(np.random.default_rng(1).standard_normal((5, 4)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_state_dict_is_copy(self):
        model = Linear(2, 2, rng=np.random.default_rng(0))
        state = model.state_dict()
        state["weight"][:] = 0.0
        assert not np.allclose(model.weight.data, 0.0)

    def test_mismatched_keys_raise(self):
        model = Linear(2, 2, rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((2, 2))})  # missing bias

    def test_mismatched_shape_raises(self):
        model = Linear(2, 2, rng=np.random.default_rng(0))
        state = model.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)


def test_base_forward_not_implemented():
    with pytest.raises(NotImplementedError):
        Module()(1)


def test_module_list_not_callable():
    with pytest.raises(RuntimeError):
        ModuleList([])()

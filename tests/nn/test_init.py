"""Tests of weight initializers."""

import numpy as np
import pytest

from repro.nn import init


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_xavier_uniform_bounds(rng):
    w = init.xavier_uniform((100, 50), rng)
    limit = np.sqrt(6.0 / 150)
    assert np.abs(w).max() <= limit


def test_xavier_normal_std(rng):
    w = init.xavier_normal((400, 400), rng)
    expected = np.sqrt(2.0 / 800)
    assert w.std() == pytest.approx(expected, rel=0.1)


def test_he_normal_std(rng):
    w = init.he_normal((300, 300), rng)
    assert w.std() == pytest.approx(np.sqrt(2.0 / 300), rel=0.1)


def test_normal_std(rng):
    w = init.normal((500, 100), rng, std=0.02)
    assert w.std() == pytest.approx(0.02, rel=0.1)


def test_zeros():
    np.testing.assert_array_equal(init.zeros((3, 4)), 0.0)


def test_1d_fans(rng):
    w = init.xavier_uniform((64,), rng)
    assert w.shape == (64,)
    assert np.abs(w).max() <= np.sqrt(6.0 / 128)


def test_deterministic_with_same_seed():
    a = init.xavier_uniform((5, 5), np.random.default_rng(7))
    b = init.xavier_uniform((5, 5), np.random.default_rng(7))
    np.testing.assert_array_equal(a, b)

"""Tests of the optimizers: convergence on a quadratic and exact updates."""

import numpy as np
import pytest

from repro.nn import Adagrad, Adam, Momentum, SGD
from repro.nn.module import Parameter


def quadratic_step(p):
    """One gradient evaluation of f(θ) = ½‖θ − 3‖²; gradient is θ − 3."""
    p.grad = p.data - 3.0


@pytest.mark.parametrize("opt_cls,kwargs,steps", [
    (SGD, {"lr": 0.1}, 200),
    (Momentum, {"lr": 0.05, "momentum": 0.9}, 200),
    (Adagrad, {"lr": 1.0}, 300),
    (Adam, {"lr": 0.2}, 300),
])
def test_converges_on_quadratic(opt_cls, kwargs, steps):
    p = Parameter(np.array([10.0, -5.0]))
    opt = opt_cls([p], **kwargs)
    for _ in range(steps):
        quadratic_step(p)
        opt.step()
    np.testing.assert_allclose(p.data, 3.0, atol=1e-2)


class TestSGD:
    def test_exact_update(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.5)
        p.grad = np.array([2.0])
        opt.step()
        np.testing.assert_allclose(p.data, [0.0])

    def test_skips_none_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.5).step()
        np.testing.assert_allclose(p.data, [1.0])


class TestAdam:
    def test_first_step_magnitude_is_lr(self):
        """With bias correction, the first Adam step ≈ lr · sign(grad)."""
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([123.0])
        opt.step()
        np.testing.assert_allclose(p.data, [-0.1], atol=1e-6)

    def test_zero_grad_clears(self):
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.zero_grad()
        assert p.grad is None

    def test_state_per_parameter(self):
        a, b = Parameter(np.zeros(2)), Parameter(np.zeros(3))
        opt = Adam([a, b], lr=0.1)
        a.grad = np.ones(2)
        b.grad = np.ones(3)
        opt.step()
        assert opt._m[0].shape == (2,) and opt._m[1].shape == (3,)


class TestValidation:
    def test_negative_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=-1.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

"""Lazy row-wise optimizer updates, sparse-aware clipping, batch-local L2."""

import numpy as np
import pytest

from repro.nn import (
    Adagrad,
    Adam,
    Momentum,
    Parameter,
    SGD,
    clip_grad_norm,
    global_grad_norm,
    l2_regularization,
    l2_regularization_batch,
)
from repro.tensor import RowSparseGrad


def _pair(shape=(8, 4), seed=0):
    """Two identical parameters plus a random row-sparse/dense grad pair."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(shape)
    rows = np.array([1, 4, 6])
    values = rng.standard_normal((rows.size,) + shape[1:])
    sparse = RowSparseGrad(rows, values, shape[0])
    dense = sparse.to_dense()
    return Parameter(data.copy()), Parameter(data.copy()), sparse, dense


class TestSGDParity:
    def test_dense_vs_row_sparse_bitwise_identical(self):
        p_sparse, p_dense, sparse, dense = _pair()
        p_sparse.grad, p_dense.grad = sparse, dense
        SGD([p_sparse], lr=0.05).step()
        SGD([p_dense], lr=0.05).step()
        np.testing.assert_array_equal(p_sparse.data, p_dense.data)

    def test_identical_rng_stream_many_steps(self):
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        p_sparse, p_dense, _, _ = _pair(seed=1)
        opt_a, opt_b = SGD([p_sparse], lr=0.01), SGD([p_dense], lr=0.01)
        for _ in range(20):
            rows = rng_a.choice(8, size=3, replace=False)
            values = rng_a.standard_normal((3, 4))
            rows_b = rng_b.choice(8, size=3, replace=False)
            values_b = rng_b.standard_normal((3, 4))
            np.testing.assert_array_equal(rows, rows_b)
            p_sparse.grad = RowSparseGrad(rows, values, 8)
            p_dense.grad = RowSparseGrad(rows_b, values_b, 8).to_dense()
            opt_a.step()
            opt_b.step()
        np.testing.assert_array_equal(p_sparse.data, p_dense.data)


class TestLazyRowUpdates:
    def test_momentum_untouched_rows_keep_velocity(self):
        p, _, sparse, _ = _pair()
        opt = Momentum([p], lr=0.1, momentum=0.9)
        p.grad = sparse
        opt.step()
        untouched = np.setdiff1d(np.arange(8), sparse.indices)
        assert np.all(opt._velocity[0][untouched] == 0.0)
        assert np.any(opt._velocity[0][sparse.indices] != 0.0)

    def test_adagrad_only_touched_rows_move(self):
        p, _, sparse, _ = _pair()
        before = p.data.copy()
        p.grad = sparse
        Adagrad([p], lr=0.1).step()
        untouched = np.setdiff1d(np.arange(8), sparse.indices)
        np.testing.assert_array_equal(p.data[untouched], before[untouched])
        assert np.all(p.data[sparse.indices] != before[sparse.indices])

    def test_adam_per_row_step_counts(self):
        p, _, _, _ = _pair()
        opt = Adam([p], lr=0.01)
        p.grad = RowSparseGrad([1, 2], np.ones((2, 4)), 8)
        opt.step()
        p.grad = RowSparseGrad([2, 5], np.ones((2, 4)), 8)
        opt.step()
        counts = opt._row_steps[0]
        np.testing.assert_array_equal(counts[[1, 2, 5]], [1, 2, 1])
        assert np.all(counts[[0, 3, 4, 6, 7]] == 0)

    def test_adam_fresh_row_matches_dense_first_step(self):
        # a row first touched at sparse step t must get the t=1 bias
        # correction, exactly like a dense Adam's first step on that row
        data = np.random.default_rng(2).standard_normal((4, 2))
        p_sparse, p_dense = Parameter(data.copy()), Parameter(data.copy())
        opt_sparse = Adam([p_sparse], lr=0.1)
        opt_dense = Adam([p_dense], lr=0.1)
        grad_row = np.array([[0.3, -0.7]])
        # advance the sparse optimizer twice on OTHER rows first
        for _ in range(2):
            p_sparse.grad = RowSparseGrad([0], np.ones((1, 2)), 4)
            opt_sparse.step()
        p_sparse.grad = RowSparseGrad([3], grad_row.copy(), 4)
        opt_sparse.step()
        dense = np.zeros((4, 2))
        dense[3] = grad_row
        p_dense.grad = dense
        opt_dense.step()
        np.testing.assert_allclose(p_sparse.data[3], p_dense.data[3], rtol=1e-12)

    def test_lazy_adam_converges_on_quadratic(self):
        # minimize ||X||^2 with only a random subset of rows visible per
        # step — lazy Adam must still drive every row toward zero
        rng = np.random.default_rng(0)
        p = Parameter(rng.standard_normal((12, 3)) * 2.0)
        opt = Adam([p], lr=0.05)
        for _ in range(1500):
            rows = rng.choice(12, size=4, replace=False)
            values = 2.0 * p.data[rows]
            p.grad = RowSparseGrad(rows, values, 12)
            opt.step()
        assert float(np.abs(p.data).max()) < 0.05


class TestClipping:
    def test_global_norm_mixes_sparse_and_dense(self):
        a, b, sparse, dense = _pair()
        a.grad, b.grad = sparse, dense
        expected = float(np.sqrt(2.0 * np.sum(dense ** 2)))
        assert global_grad_norm([a, b]) == pytest.approx(expected)

    def test_clip_scales_sparse_without_densifying(self):
        p, _, sparse, _ = _pair()
        p.grad = sparse
        norm = clip_grad_norm([p], 0.5)
        assert norm > 0.5
        assert isinstance(p.grad, RowSparseGrad)
        assert global_grad_norm([p]) == pytest.approx(0.5)

    def test_clip_noop_under_threshold(self):
        p = Parameter(np.ones((2, 2)))
        p.grad = np.full((2, 2), 1e-3)
        before = p.grad.copy()
        clip_grad_norm([p], 10.0)
        np.testing.assert_array_equal(p.grad, before)

    def test_clip_rejects_bad_threshold(self):
        p = Parameter(np.ones(2))
        with pytest.raises(ValueError):
            clip_grad_norm([p], 0.0)


class TestBatchLocalL2:
    def test_penalizes_only_touched_rows(self):
        table = Parameter(np.arange(12.0).reshape(6, 2))
        loss = l2_regularization_batch([(table, np.array([1, 3, 1]))], [], 0.5)
        expected = 0.5 * float(np.sum(table.data[[1, 3]] ** 2))
        assert loss.item() == pytest.approx(expected)
        loss.backward()
        assert isinstance(table.grad, RowSparseGrad)
        np.testing.assert_array_equal(table.grad.indices, [1, 3])

    def test_matches_full_l2_when_all_rows_touched(self):
        table = Parameter(np.random.default_rng(0).standard_normal((4, 3)))
        w = Parameter(np.random.default_rng(1).standard_normal((2, 2)))
        batch = l2_regularization_batch([(table, np.arange(4))], [w], 1e-2)
        full = l2_regularization([table, w], 1e-2)
        assert batch.item() == pytest.approx(full.item())

    def test_zero_weight_short_circuits(self):
        table = Parameter(np.ones((3, 2)))
        assert l2_regularization_batch([(table, np.array([0]))], [], 0.0).item() == 0.0

    def test_empty_rows_fall_back_to_dense_terms(self):
        w = Parameter(np.full((2, 2), 2.0))
        table = Parameter(np.ones((3, 2)))
        loss = l2_regularization_batch([(table, np.array([], dtype=np.int64))],
                                       [w], 1.0)
        assert loss.item() == pytest.approx(16.0)

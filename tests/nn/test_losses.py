"""Tests of loss functions, including the paper's Eq. (7) hinge loss."""

import numpy as np
import pytest

from repro.nn import (
    bce_with_logits_loss,
    bpr_loss,
    l2_regularization,
    mse_loss,
    pairwise_hinge_loss,
    softmax_cross_entropy,
)
from repro.nn.module import Parameter
from repro.tensor import Tensor, check_gradients


class TestHinge:
    def test_zero_when_margin_satisfied(self):
        pos = Tensor([5.0, 3.0])
        neg = Tensor([1.0, 1.0])
        assert float(pairwise_hinge_loss(pos, neg).data) == 0.0

    def test_value_inside_margin(self):
        # max(0, 1 - 0.5 + 0.0) = 0.5
        loss = pairwise_hinge_loss(Tensor([0.5]), Tensor([0.0]))
        assert float(loss.data) == pytest.approx(0.5)

    def test_sums_over_batch(self):
        loss = pairwise_hinge_loss(Tensor([0.0, 0.0]), Tensor([0.0, 0.0]))
        assert float(loss.data) == pytest.approx(2.0)

    def test_custom_margin(self):
        loss = pairwise_hinge_loss(Tensor([1.0]), Tensor([0.0]), margin=2.0)
        assert float(loss.data) == pytest.approx(1.0)

    def test_gradient(self, rng):
        pos = Tensor(rng.standard_normal(6), requires_grad=True)
        neg = Tensor(rng.standard_normal(6), requires_grad=True)
        check_gradients(lambda p, n: pairwise_hinge_loss(p, n), [pos, neg])


class TestBPR:
    def test_matches_reference(self, rng):
        pos = rng.standard_normal(10)
        neg = rng.standard_normal(10)
        ours = float(bpr_loss(Tensor(pos), Tensor(neg)).data)
        reference = -np.log(1.0 / (1.0 + np.exp(-(pos - neg)))).sum()
        assert ours == pytest.approx(reference, rel=1e-9)

    def test_stable_extremes(self):
        loss = bpr_loss(Tensor([100.0]), Tensor([-100.0]))
        assert float(loss.data) == pytest.approx(0.0, abs=1e-9)
        loss = bpr_loss(Tensor([-100.0]), Tensor([100.0]))
        assert np.isfinite(float(loss.data))

    def test_gradient(self, rng):
        pos = Tensor(rng.standard_normal(6), requires_grad=True)
        neg = Tensor(rng.standard_normal(6), requires_grad=True)
        check_gradients(lambda p, n: bpr_loss(p, n), [pos, neg])


class TestPointwise:
    def test_mse(self):
        assert float(mse_loss(Tensor([1.0, 3.0]), np.array([1.0, 1.0])).data) == 2.0

    def test_bce_perfect_prediction(self):
        loss = bce_with_logits_loss(Tensor([50.0, -50.0]), np.array([1.0, 0.0]))
        assert float(loss.data) == pytest.approx(0.0, abs=1e-9)

    def test_softmax_ce_uniform(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = softmax_cross_entropy(logits, np.array([0, 3]))
        assert float(loss.data) == pytest.approx(np.log(4.0))

    def test_softmax_ce_gradient(self, rng):
        logits = Tensor(rng.standard_normal((3, 5)), requires_grad=True)
        targets = np.array([0, 2, 4])
        check_gradients(lambda z: softmax_cross_entropy(z, targets), [logits], atol=1e-5)


class TestL2:
    def test_value(self):
        params = [Parameter(np.array([3.0, 4.0]))]
        assert float(l2_regularization(params, 0.1).data) == pytest.approx(2.5)

    def test_zero_weight_shortcircuits(self):
        params = [Parameter(np.ones(5))]
        out = l2_regularization(params, 0.0)
        assert float(out.data) == 0.0
        assert not out.requires_grad

    def test_empty_params(self):
        assert float(l2_regularization([], 0.5).data) == 0.0

    def test_gradient_is_2_lambda_theta(self):
        p = Parameter(np.array([1.0, -2.0]))
        l2_regularization([p], 0.5).backward()
        np.testing.assert_allclose(p.grad, [1.0, -2.0])

"""Tests of the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.dataset == "taobao"
        assert not args.json

    def test_train_model_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "SVD"])

    def test_scale_overrides(self):
        args = build_parser().parse_args(
            ["train", "--users", "30", "--items", "60", "--epochs", "2"])
        assert args.users == 30 and args.items == 60 and args.epochs == 2


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats", "--users", "30", "--items", "60"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "taobao-like" in out

    def test_train_tiny(self, capsys, tmp_path):
        code = main(["train", "--model", "BiasMF", "--dataset", "taobao",
                     "--users", "30", "--items", "80", "--epochs", "2",
                     "--checkpoint", str(tmp_path / "m.npz")])
        assert code == 0
        out = capsys.readouterr().out
        assert "HR@10" in out
        assert (tmp_path / "m.npz").exists()

    def test_run_fig2_tiny(self, capsys):
        code = main(["run", "fig2", "--dataset", "taobao",
                     "--users", "30", "--items", "80", "--epochs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GNMR-ma" in out

    def test_run_json_flag(self, capsys):
        code = main(["run", "fig3", "--dataset", "taobao", "--users", "30",
                     "--items", "80", "--epochs", "1", "--json"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GNMR-0" in out

    def test_train_full_catalog_eval(self, capsys):
        code = main(["train", "--model", "BiasMF", "--dataset", "taobao",
                     "--users", "25", "--items", "60", "--epochs", "1",
                     "--eval", "full"])
        assert code == 0
        assert "Recall@10" in capsys.readouterr().out


class TestRecommend:
    @pytest.fixture(scope="class")
    def checkpoint(self, tmp_path_factory):
        """A tiny GNMR trained and checkpointed through the CLI."""
        path = tmp_path_factory.mktemp("ckpt") / "gnmr.npz"
        code = main(["train", "--model", "GNMR", "--dataset", "taobao",
                     "--users", "25", "--items", "60", "--epochs", "1",
                     "--checkpoint", str(path)])
        assert code == 0
        return path

    def test_emits_valid_topk_json(self, checkpoint, capsys):
        capsys.readouterr()  # drop training output
        code = main(["recommend", "--checkpoint", str(checkpoint),
                     "--topk", "4", "--user-ids", "0,2,5"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "GNMR"
        assert payload["backend"] == "matrix"
        assert payload["k"] == 4
        recs = payload["recommendations"]
        assert [entry["user"] for entry in recs] == [0, 2, 5]
        for entry in recs:
            assert len(entry["items"]) == 4
            for rec in entry["items"]:
                assert 0 <= rec["item"] < payload["num_items"]

    def test_seen_items_excluded(self, checkpoint, capsys):
        """Recommendations never contain the user's training positives."""
        from repro.data import leave_one_out_split
        from repro.experiments import ExperimentScale, dataset_by_name

        capsys.readouterr()
        code = main(["recommend", "--checkpoint", str(checkpoint),
                     "--topk", "5"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        # rebuild the same deterministic split the command served from
        scale = ExperimentScale(num_users=25, num_items=60)
        split = leave_one_out_split(dataset_by_name("taobao", scale))
        for entry in payload["recommendations"]:
            seen = set(split.train.user_target_items(entry["user"]).tolist())
            recommended = {rec["item"] for rec in entry["items"]}
            assert not (recommended & seen)

    def test_metadata_restores_scale(self, checkpoint, capsys):
        """No --users/--items flags needed: checkpoint metadata has them."""
        capsys.readouterr()
        code = main(["recommend", "--checkpoint", str(checkpoint),
                     "--topk", "3", "--user-ids", "1"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_users"] == 25
        assert payload["num_items"] == 60


class TestScenarios:
    def test_scenarios_table(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "tmall-like" in out and "gowalla-like" in out

    def test_scenarios_json(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "tmall-like" in payload
        assert payload["tmall-like"]["target"] == "buy"

    def test_train_with_scenario(self, capsys):
        code = main(["train", "--model", "BiasMF", "--scenario", "tmall-like",
                     "--users", "25", "--items", "60", "--epochs", "1"])
        assert code == 0
        assert "HR@10" in capsys.readouterr().out

    def test_train_temporal_split(self, capsys):
        code = main(["train", "--model", "BiasMF", "--scenario",
                     "gowalla-like", "--users", "25", "--items", "60",
                     "--epochs", "1", "--split", "temporal"])
        assert code == 0
        assert "HR@10" in capsys.readouterr().out


class TestIngest:
    @pytest.fixture()
    def event_log(self, tmp_path):
        import numpy as np

        rng = np.random.default_rng(4)
        rows = ["user,item,behavior,timestamp"]
        for _ in range(300):
            behavior = ["click", "click", "cart", "buy"][rng.integers(0, 4)]
            rows.append(f"u{rng.integers(0, 20)},i{rng.integers(0, 40)},"
                        f"{behavior},{rng.integers(1, 9999)}")
        path = tmp_path / "events.csv"
        path.write_text("\n".join(rows) + "\n")
        return path

    def test_ingest_produces_artifact(self, event_log, tmp_path, capsys):
        out = tmp_path / "events.npz"
        code = main(["ingest", str(event_log), "--out", str(out),
                     "--target", "buy", "--chunk-rows", "64"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows_kept"] == 300
        assert payload["chunks"] == 5
        assert out.exists()

    def test_ingest_then_train_from_artifact(self, event_log, tmp_path,
                                             capsys):
        out = tmp_path / "events.npz"
        assert main(["ingest", str(event_log), "--out", str(out),
                     "--target", "buy"]) == 0
        capsys.readouterr()
        code = main(["train", "--model", "BiasMF", "--scenario", str(out),
                     "--epochs", "1"])
        assert code == 0
        assert "HR@10" in capsys.readouterr().out

    def test_ingest_reingest_byte_identical(self, event_log, tmp_path,
                                            capsys):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        assert main(["ingest", str(event_log), "--out", str(a),
                     "--target", "buy", "--chunk-rows", "50"]) == 0
        assert main(["ingest", str(event_log), "--out", str(b),
                     "--target", "buy", "--chunk-rows", "128"]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_ingest_missing_file_fails_cleanly(self, tmp_path, capsys):
        code = main(["ingest", str(tmp_path / "absent.csv"),
                     "--out", str(tmp_path / "x.npz"), "--target", "buy"])
        assert code == 1
        assert "ingest failed" in capsys.readouterr().err

    def test_ingest_bad_rows_skip(self, tmp_path, capsys):
        log = tmp_path / "bad.csv"
        log.write_text("user,item,rating,timestamp\n"
                       "a,x,5,1\na,y,nan,2\nb,x,4,3\nb,y,2,4\na,z,5,5\n")
        out = tmp_path / "bad.npz"
        code = main(["ingest", str(log), "--out", str(out), "--target",
                     "like", "--rating-col", "rating",
                     "--on-bad-rows", "skip"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows_dropped_bad"] == 1

"""Tests of the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.dataset == "taobao"
        assert not args.json

    def test_train_model_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "SVD"])

    def test_scale_overrides(self):
        args = build_parser().parse_args(
            ["train", "--users", "30", "--items", "60", "--epochs", "2"])
        assert args.users == 30 and args.items == 60 and args.epochs == 2


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats", "--users", "30", "--items", "60"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "taobao-like" in out

    def test_train_tiny(self, capsys, tmp_path):
        code = main(["train", "--model", "BiasMF", "--dataset", "taobao",
                     "--users", "30", "--items", "80", "--epochs", "2",
                     "--checkpoint", str(tmp_path / "m.npz")])
        assert code == 0
        out = capsys.readouterr().out
        assert "HR@10" in out
        assert (tmp_path / "m.npz").exists()

    def test_run_fig2_tiny(self, capsys):
        code = main(["run", "fig2", "--dataset", "taobao",
                     "--users", "30", "--items", "80", "--epochs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GNMR-ma" in out

    def test_run_json_flag(self, capsys):
        code = main(["run", "fig3", "--dataset", "taobao", "--users", "30",
                     "--items", "80", "--epochs", "1", "--json"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GNMR-0" in out

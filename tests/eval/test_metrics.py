"""Tests of ranking metrics, including hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.eval import hit_ratio, mrr, ndcg, precision, rank_of_positive, recall


class TestRankOfPositive:
    def test_best(self):
        assert rank_of_positive(np.array([5.0, 1.0, 2.0])) == 0

    def test_worst(self):
        assert rank_of_positive(np.array([0.0, 1.0, 2.0])) == 2

    def test_middle(self):
        assert rank_of_positive(np.array([1.5, 1.0, 2.0])) == 1

    def test_ties_pessimistic(self):
        assert rank_of_positive(np.array([1.0, 1.0, 1.0])) == 2

    def test_positive_index_argument(self):
        assert rank_of_positive(np.array([0.0, 9.0]), positive_index=1) == 0


class TestHitRatio:
    def test_all_hits(self):
        assert hit_ratio(np.array([0, 1, 2]), top_n=5) == 1.0

    def test_no_hits(self):
        assert hit_ratio(np.array([10, 20]), top_n=5) == 0.0

    def test_boundary_exclusive(self):
        # rank 5 (0-based) is position 6 → outside top-5
        assert hit_ratio(np.array([5]), top_n=5) == 0.0
        assert hit_ratio(np.array([4]), top_n=5) == 1.0

    def test_empty(self):
        assert hit_ratio(np.array([]), top_n=5) == 0.0

    def test_recall_equals_hr(self):
        ranks = np.array([0, 3, 7, 12])
        assert recall(ranks, 10) == hit_ratio(ranks, 10)


class TestNDCG:
    def test_rank_zero_gives_one(self):
        assert ndcg(np.array([0]), top_n=10) == pytest.approx(1.0)

    def test_rank_one_value(self):
        assert ndcg(np.array([1]), top_n=10) == pytest.approx(1.0 / np.log2(3))

    def test_outside_cutoff_zero(self):
        assert ndcg(np.array([10]), top_n=10) == 0.0

    def test_average_over_users(self):
        value = ndcg(np.array([0, 10]), top_n=10)
        assert value == pytest.approx(0.5)

    def test_empty(self):
        assert ndcg(np.array([]), 5) == 0.0


class TestOtherMetrics:
    def test_mrr(self):
        assert mrr(np.array([0, 1])) == pytest.approx((1.0 + 0.5) / 2)

    def test_mrr_empty(self):
        assert mrr(np.array([])) == 0.0

    def test_precision(self):
        assert precision(np.array([0, 100]), top_n=10) == pytest.approx(0.05)


ranks_strategy = st.lists(st.integers(min_value=0, max_value=99),
                          min_size=1, max_size=50).map(np.array)


@given(ranks_strategy, st.integers(min_value=1, max_value=20))
@settings(max_examples=50, deadline=None)
def test_hr_bounds_and_monotonicity(ranks, n):
    assert 0.0 <= hit_ratio(ranks, n) <= 1.0
    assert hit_ratio(ranks, n) <= hit_ratio(ranks, n + 1)


@given(ranks_strategy, st.integers(min_value=1, max_value=20))
@settings(max_examples=50, deadline=None)
def test_ndcg_bounded_by_hr(ranks, n):
    """Each user's gain ≤ 1 and zero unless hit, so NDCG ≤ HR."""
    assert 0.0 <= ndcg(ranks, n) <= hit_ratio(ranks, n) + 1e-12


@given(ranks_strategy)
@settings(max_examples=50, deadline=None)
def test_better_ranks_never_hurt(ranks):
    improved = np.maximum(ranks - 1, 0)
    for n in (1, 5, 10):
        assert hit_ratio(improved, n) >= hit_ratio(ranks, n)
        assert ndcg(improved, n) >= ndcg(ranks, n) - 1e-12
    assert mrr(improved) >= mrr(ranks)

"""Tests of the full-catalog ranking extension and AUC."""

import numpy as np
import pytest

from repro.data import leave_one_out_split
from repro.eval import auc, evaluate_full_ranking


class OracleModel:
    """Knows the held-out items and scores them highest."""

    def __init__(self, test_users, test_items, num_items):
        self.lookup = dict(zip(test_users.tolist(), test_items.tolist()))
        self.num_items = num_items

    def score(self, users, items):
        return np.array([
            10.0 if self.lookup.get(int(u)) == int(i) else 0.0
            for u, i in zip(users, items)
        ])


class TestFullRanking:
    def test_oracle_ranks_first(self, small_taobao):
        split = leave_one_out_split(small_taobao)
        oracle = OracleModel(split.test_users, split.test_items,
                             small_taobao.num_items)
        result = evaluate_full_ranking(oracle, split.train,
                                       split.test_users, split.test_items)
        np.testing.assert_array_equal(result.ranks, 0)
        assert result.hr(1) == 1.0

    def test_training_positives_masked(self, small_taobao):
        """A model scoring train positives highest must not be penalized."""
        split = leave_one_out_split(small_taobao)

        class TrainFavoring:
            def __init__(self, train):
                self.positives = {
                    u: set(train.user_target_items(u).tolist())
                    for u in range(train.num_users)
                }

            def score(self, users, items):
                return np.array([
                    5.0 if int(i) in self.positives[int(u)] else 0.0
                    for u, i in zip(users, items)
                ])

        model = TrainFavoring(split.train)
        result = evaluate_full_ranking(model, split.train,
                                       split.test_users, split.test_items)
        # positives all score 0 like other unseen items → ties only
        assert (result.ranks < split.train.num_items).all()

    def test_batching_consistent(self, small_taobao):
        split = leave_one_out_split(small_taobao)
        oracle = OracleModel(split.test_users, split.test_items,
                             small_taobao.num_items)
        a = evaluate_full_ranking(oracle, split.train, split.test_users,
                                  split.test_items, batch_users=3)
        b = evaluate_full_ranking(oracle, split.train, split.test_users,
                                  split.test_items, batch_users=64)
        np.testing.assert_array_equal(a.ranks, b.ranks)


class TestApproxFullRanking:
    """retriever="ivf": ranks through the approximate serving path."""

    @pytest.fixture(scope="class")
    def gnmr_split(self, small_taobao):
        from repro.core import GNMR, GNMRConfig

        split = leave_one_out_split(small_taobao)
        return GNMR(split.train, GNMRConfig(pretrain=False, seed=0)), split

    def test_exhaustive_matches_exact(self, gnmr_split):
        model, split = gnmr_split
        exact = evaluate_full_ranking(model, split.train, split.test_users,
                                      split.test_items)
        approx = evaluate_full_ranking(
            model, split.train, split.test_users, split.test_items,
            retriever="ivf",
            ann={"nprobe": 10**9, "quant": "none",
                 "eval_k": split.train.num_items})
        np.testing.assert_array_equal(approx.ranks, exact.ranks)

    def test_truncation_semantics(self, gnmr_split):
        """Ranks land inside [0, eval_k) or at num_items (a miss)."""
        model, split = gnmr_split
        eval_k = 5
        result = evaluate_full_ranking(
            model, split.train, split.test_users, split.test_items,
            retriever="ivf", ann={"nprobe": 2, "eval_k": eval_k})
        inside = result.ranks < eval_k
        assert np.all(inside | (result.ranks == split.train.num_items))
        # metrics at cutoffs <= eval_k stay well-defined
        assert 0.0 <= result.hr(eval_k) <= 1.0

    def test_unknown_retriever_rejected(self, gnmr_split):
        model, split = gnmr_split
        with pytest.raises(ValueError, match="unknown retriever"):
            evaluate_full_ranking(model, split.train, split.test_users,
                                  split.test_items, retriever="lsh")


class TestAUC:
    def test_perfect(self):
        assert auc(np.array([0, 0]), num_candidates=100) == 1.0

    def test_worst(self):
        assert auc(np.array([99]), num_candidates=100) == pytest.approx(0.0)

    def test_random_is_half(self):
        ranks = np.arange(100)  # uniform over all positions
        assert auc(ranks, num_candidates=100) == pytest.approx(0.5)

    def test_empty(self):
        assert auc(np.array([]), 10) == 0.0
        assert auc(np.array([0]), 1) == 0.0

"""Tests of the sampled ranking protocol and EvaluationResult."""

import numpy as np
import pytest

from repro.data.negatives import EvalCandidates
from repro.eval import EvaluationResult, evaluate_model, evaluate_ranking


class PerfectModel:
    """Scores equal to -(item index): item 0 always wins."""

    def score(self, users, items):
        return -items.astype(float)


class AntiModel:
    def score(self, users, items):
        return items.astype(float)


@pytest.fixture
def candidates():
    users = np.arange(6)
    items = np.tile(np.arange(11), (6, 1))  # positive is item 0, column 0
    return EvalCandidates(users=users, items=items)


class TestEvaluateModel:
    def test_perfect_scorer(self, candidates):
        result = evaluate_model(PerfectModel(), candidates)
        assert result.hr(1) == 1.0
        assert result.ndcg(10) == pytest.approx(1.0)
        np.testing.assert_array_equal(result.ranks, 0)

    def test_worst_scorer(self, candidates):
        result = evaluate_model(AntiModel(), candidates)
        assert result.hr(10) == 0.0
        np.testing.assert_array_equal(result.ranks, 10)

    def test_batching_matches_unbatched(self, candidates):
        a = evaluate_model(PerfectModel(), candidates, batch_size=2)
        b = evaluate_model(PerfectModel(), candidates, batch_size=512)
        np.testing.assert_array_equal(a.ranks, b.ranks)

    def test_random_scores_near_uniform(self):
        rng = np.random.default_rng(0)
        users = np.arange(400)
        items = np.tile(np.arange(100), (400, 1))
        candidates = EvalCandidates(users=users, items=items)

        class RandomModel:
            def score(self, users, items):
                return rng.random(len(users))

        result = evaluate_model(RandomModel(), candidates)
        # positive has 10% chance in the top-10 of 100 candidates
        assert result.hr(10) == pytest.approx(0.1, abs=0.06)


class TestEvaluateRanking:
    def test_direct_score_matrix(self):
        scores = np.array([[1.0, 0.5, 2.0], [3.0, 0.1, 0.2]])
        result = evaluate_ranking(scores)
        np.testing.assert_array_equal(result.ranks, [1, 0])


class TestEvaluationResult:
    def test_as_dict_keys(self):
        result = EvaluationResult(ranks=np.array([0, 4, 12]))
        table = result.as_dict()
        assert "HR@10" in table and "NDCG@10" in table and "MRR" in table

    def test_caching_consistent(self):
        result = EvaluationResult(ranks=np.array([0, 2, 11]))
        assert result.hr(10) == result.hr(10)
        assert result.ndcg(5) == result.ndcg(5)

    def test_len(self):
        assert len(EvaluationResult(ranks=np.array([1, 2, 3]))) == 3

    def test_hr_ndcg_consistency(self):
        ranks = np.array([0, 1, 5, 20])
        result = EvaluationResult(ranks=ranks)
        assert result.ndcg(10) <= result.hr(10)
        assert result.hr(1) <= result.hr(10)

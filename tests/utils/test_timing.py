"""Tests of the Timer helper."""

import time

from repro.utils import Timer


def test_timer_measures_elapsed():
    with Timer() as t:
        time.sleep(0.01)
    assert t.elapsed >= 0.01


def test_timer_reusable():
    t = Timer()
    with t:
        pass
    first = t.elapsed
    with t:
        time.sleep(0.005)
    assert t.elapsed >= 0.005
    assert t.elapsed != first or t.elapsed >= 0.005

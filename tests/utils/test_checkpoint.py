"""Tests of npz checkpointing."""

import numpy as np
import pytest

from repro.nn import MLP
from repro.tensor import Tensor
from repro.utils import load_checkpoint, save_checkpoint


@pytest.fixture
def model():
    return MLP([4, 6, 2], rng=np.random.default_rng(0))


class TestRoundtrip:
    def test_parameters_restored(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "ckpt")
        assert path.suffix == ".npz"
        clone = MLP([4, 6, 2], rng=np.random.default_rng(999))
        load_checkpoint(clone, path)
        x = Tensor(np.random.default_rng(1).standard_normal((3, 4)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_metadata_roundtrip(self, model, tmp_path):
        save_checkpoint(model, tmp_path / "c.npz",
                        metadata={"epoch": 7, "hr10": 0.42})
        meta = load_checkpoint(model, tmp_path / "c.npz")
        assert meta["epoch"] == 7
        assert meta["hr10"] == 0.42
        assert meta["num_parameters"] == model.num_parameters()

    def test_load_without_suffix(self, model, tmp_path):
        save_checkpoint(model, tmp_path / "plain")
        meta = load_checkpoint(model, tmp_path / "plain")
        assert "num_parameters" in meta

    def test_creates_parent_dirs(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "deep" / "nested" / "m.npz")
        assert path.exists()

    def test_gnmr_checkpoint(self, tmp_path, small_taobao):
        from repro.core import GNMR, GNMRConfig

        model = GNMR(small_taobao, GNMRConfig(pretrain=False, seed=1))
        save_checkpoint(model, tmp_path / "gnmr", metadata={"dataset": "t"})
        clone = GNMR(small_taobao, GNMRConfig(pretrain=False, seed=2))
        load_checkpoint(clone, tmp_path / "gnmr")
        users, items = np.array([0, 1]), np.array([2, 3])
        np.testing.assert_allclose(model.score(users, items),
                                   clone.score(users, items))


class TestIntegrity:
    def test_hashes_recorded_and_verified(self, model, tmp_path):
        from repro.utils import array_sha256

        path = save_checkpoint(model, tmp_path / "h")
        meta = load_checkpoint(model, path)
        hashes = meta["array_sha256"]
        state = model.state_dict()
        assert set(hashes) == set(state)
        for name, value in state.items():
            assert hashes[name] == array_sha256(value)

    def test_corrupted_array_raises(self, model, tmp_path):
        from repro.utils import CheckpointIntegrityError

        path = save_checkpoint(model, tmp_path / "c")
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        name = next(k for k in payload if not k.startswith("__"))
        payload[name] = payload[name].copy()
        payload[name].flat[0] += 1.0
        np.savez_compressed(path, **payload)
        with pytest.raises(CheckpointIntegrityError, match="hash mismatch"):
            load_checkpoint(model, path)
        # verify=False loads the patched archive anyway
        meta = load_checkpoint(model, path, verify=False)
        assert "array_sha256" in meta

    def test_legacy_checkpoint_without_hashes_loads(self, model, tmp_path):
        import json

        path = save_checkpoint(model, tmp_path / "legacy")
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        meta = json.loads(bytes(payload["__checkpoint_meta__"]).decode())
        del meta["array_sha256"]
        payload["__checkpoint_meta__"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8)
        np.savez_compressed(path, **payload)
        meta = load_checkpoint(model, path)
        assert "array_sha256" not in meta

    def test_array_sha256_sensitive_to_dtype_and_shape(self):
        from repro.utils import array_sha256

        a = np.arange(6, dtype=np.float64)
        assert array_sha256(a) != array_sha256(a.astype(np.float32))
        assert array_sha256(a) != array_sha256(a.reshape(2, 3))
        assert array_sha256(a) == array_sha256(a.copy())

"""Tests of npz checkpointing."""

import numpy as np
import pytest

from repro.nn import MLP
from repro.tensor import Tensor
from repro.utils import load_checkpoint, save_checkpoint


@pytest.fixture
def model():
    return MLP([4, 6, 2], rng=np.random.default_rng(0))


class TestRoundtrip:
    def test_parameters_restored(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "ckpt")
        assert path.suffix == ".npz"
        clone = MLP([4, 6, 2], rng=np.random.default_rng(999))
        load_checkpoint(clone, path)
        x = Tensor(np.random.default_rng(1).standard_normal((3, 4)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_metadata_roundtrip(self, model, tmp_path):
        save_checkpoint(model, tmp_path / "c.npz",
                        metadata={"epoch": 7, "hr10": 0.42})
        meta = load_checkpoint(model, tmp_path / "c.npz")
        assert meta["epoch"] == 7
        assert meta["hr10"] == 0.42
        assert meta["num_parameters"] == model.num_parameters()

    def test_load_without_suffix(self, model, tmp_path):
        save_checkpoint(model, tmp_path / "plain")
        meta = load_checkpoint(model, tmp_path / "plain")
        assert "num_parameters" in meta

    def test_creates_parent_dirs(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "deep" / "nested" / "m.npz")
        assert path.exists()

    def test_gnmr_checkpoint(self, tmp_path, small_taobao):
        from repro.core import GNMR, GNMRConfig

        model = GNMR(small_taobao, GNMRConfig(pretrain=False, seed=1))
        save_checkpoint(model, tmp_path / "gnmr", metadata={"dataset": "t"})
        clone = GNMR(small_taobao, GNMRConfig(pretrain=False, seed=2))
        load_checkpoint(clone, tmp_path / "gnmr")
        users, items = np.array([0, 1]), np.array([2, 3])
        np.testing.assert_allclose(model.score(users, items),
                                   clone.score(users, items))

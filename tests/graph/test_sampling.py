"""Tests of negative sampling and pairwise batch construction."""

import numpy as np
import pytest

from repro.graph import NegativeSampler, sample_pairwise_batch, sample_seed_nodes


@pytest.fixture
def graph(tiny_dataset):
    return tiny_dataset.graph()


class TestNegativeSampler:
    def test_never_returns_positives(self, graph, rng):
        sampler = NegativeSampler(graph, "buy")
        for user in range(4):
            positives = sampler.positives(user)
            for _ in range(20):
                drawn = sampler.sample(user, 3, rng)
                assert not (set(drawn.tolist()) & positives)

    def test_extra_exclusions_respected(self, graph, rng):
        sampler = NegativeSampler(graph, "buy", extra_exclude={0: {2, 3, 4}})
        # user 0 bought {0,1}, extra excludes {2,3,4} → nothing left
        with pytest.raises(ValueError):
            sampler.sample(0, 1, rng)

    def test_sample_count(self, graph, rng):
        sampler = NegativeSampler(graph, "buy")
        assert sampler.sample(1, 3, rng).shape == (3,)

    def test_positives_reflect_behavior(self, graph):
        sampler = NegativeSampler(graph, "view")
        assert sampler.positives(2) == {3}


class TestSeedSampling:
    def test_without_replacement(self, rng):
        seeds = sample_seed_nodes(10, 10, rng)
        assert len(set(seeds.tolist())) == 10

    def test_clamped_to_population(self, rng):
        assert sample_seed_nodes(3, 100, rng).shape == (3,)


class TestPairwiseBatch:
    def test_structure(self, graph, rng):
        sampler = NegativeSampler(graph, "buy")
        batch = sample_pairwise_batch(graph, "buy", sampler, batch_users=4,
                                      per_user=2, rng=rng)
        assert len(batch) == 8
        assert batch.users.shape == batch.pos_items.shape == batch.neg_items.shape

    def test_positives_are_real(self, graph, rng):
        sampler = NegativeSampler(graph, "buy")
        batch = sample_pairwise_batch(graph, "buy", sampler, 4, 3, rng)
        for user, item in zip(batch.users, batch.pos_items):
            assert graph.has_edge("buy", int(user), int(item))

    def test_negatives_are_not_positives(self, graph, rng):
        sampler = NegativeSampler(graph, "buy")
        batch = sample_pairwise_batch(graph, "buy", sampler, 4, 3, rng)
        for user, item in zip(batch.users, batch.neg_items):
            assert not graph.has_edge("buy", int(user), int(item))

    def test_eligible_users_respected(self, graph, rng):
        sampler = NegativeSampler(graph, "buy")
        eligible = np.array([1, 2])
        batch = sample_pairwise_batch(graph, "buy", sampler, 10, 2, rng,
                                      eligible_users=eligible)
        assert set(batch.users.tolist()) <= {1, 2}

    def test_no_eligible_users_raises(self, rng, tiny_dataset):
        from repro.graph import MultiBehaviorGraph

        empty = MultiBehaviorGraph(
            2, 2, ("buy",),
            {"buy": (np.array([], dtype=int), np.array([], dtype=int))},
        )
        sampler = NegativeSampler(empty, "buy")
        with pytest.raises(ValueError):
            sample_pairwise_batch(empty, "buy", sampler, 2, 1, rng)

    def test_deterministic_given_seed(self, graph):
        sampler = NegativeSampler(graph, "buy")
        a = sample_pairwise_batch(graph, "buy", sampler, 4, 2, np.random.default_rng(5))
        b = sample_pairwise_batch(graph, "buy", sampler, 4, 2, np.random.default_rng(5))
        np.testing.assert_array_equal(a.users, b.users)
        np.testing.assert_array_equal(a.pos_items, b.pos_items)
        np.testing.assert_array_equal(a.neg_items, b.neg_items)

"""Fanout-schedule resolution, validation, and CLI parsing edge cases."""

import numpy as np
import pytest

from repro.graph.subgraph import parse_fanout, resolve_fanout, validate_fanout


class TestResolveFanout:
    def test_scalar_broadcasts_to_every_hop(self):
        assert resolve_fanout(10, 3) == [10, 10, 10]

    def test_none_means_no_cap_everywhere(self):
        assert resolve_fanout(None, 2) == [None, None]

    def test_schedule_passes_through(self):
        assert resolve_fanout([10, 5], 2) == [10, 5]
        assert resolve_fanout((10, None), 2) == [10, None]

    def test_schedule_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="2 entries.*3 hops"):
            resolve_fanout([10, 5], 3)
        with pytest.raises(ValueError, match="3 entries.*2 hops"):
            resolve_fanout([10, 5, 3], 2)

    def test_zero_hops_accepts_scalar(self):
        # 0-layer models extract seed-only blocks; a scalar must not fail
        assert resolve_fanout(10, 0) == []

    def test_numpy_integers_accepted(self):
        assert resolve_fanout(np.int64(4), 2) == [4, 4]
        assert resolve_fanout([np.int32(4), np.int64(2)], 2) == [4, 2]


class TestValidateFanout:
    @pytest.mark.parametrize("bad", [0, -1, 2.5, "10", True,
                                     [10, 0], [10, -2], [5, 2.0], []])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            validate_fanout(bad)

    @pytest.mark.parametrize("ok", [1, 10, None, [10, 5], (1, None), [None]])
    def test_accepts(self, ok):
        validate_fanout(ok)


class TestParseFanout:
    def test_scalar(self):
        assert parse_fanout("10") == 10

    def test_zero_means_no_cap(self):
        assert parse_fanout("0") is None

    def test_comma_schedule(self):
        assert parse_fanout("10,5") == (10, 5)

    def test_zero_entry_in_schedule(self):
        assert parse_fanout("10,0,5") == (10, None, 5)

    def test_whitespace_tolerated(self):
        assert parse_fanout(" 10 , 5 ") == (10, 5)

    @pytest.mark.parametrize("bad", ["", "10,", ",5", "a", "10,b", "-1", "3,-2"])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_fanout(bad)


class TestScheduleThreading:
    """Schedules reach the samplers, configs, and CLI."""

    def test_trainconfig_accepts_schedule_and_validates(self):
        from repro.train import TrainConfig

        assert TrainConfig(fanout=(10, 5)).fanout == (10, 5)
        with pytest.raises(ValueError):
            TrainConfig(fanout=(10, 0))

    def test_gnmr_config_accepts_schedule_and_validates(self):
        from repro.core import GNMRConfig

        assert GNMRConfig(fanout=(10, 5)).fanout == (10, 5)
        with pytest.raises(ValueError):
            GNMRConfig(fanout=[3, 0])

    def test_cli_fanout_parsing(self):
        from repro.cli import _FANOUT_UNSET, build_parser

        args = build_parser().parse_args(
            ["train", "--propagation", "async", "--fanout", "10,5"])
        assert args.fanout == (10, 5)
        # '--fanout 0' means "no cap" and must stay distinguishable from
        # the flag being absent (which defers to the model's default)
        args = build_parser().parse_args(["train", "--fanout", "0"])
        assert args.fanout is None
        assert build_parser().parse_args(["train"]).fanout is _FANOUT_UNSET

    def test_cli_bad_fanout_exits(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--fanout", "10,x"])
        assert "fanout" in capsys.readouterr().err

    def test_gnmr_config_schedule_length_fails_fast(self):
        # both knobs live on GNMRConfig, so a schedule/num_layers mismatch
        # must fail at construction, not mid-training from a worker thread
        from repro.core import GNMRConfig

        with pytest.raises(ValueError, match="3 entries.*2 hops"):
            GNMRConfig(num_layers=2, fanout=(4, 2, 1))

    def test_model_config_fanout_reaches_trainer_extraction(self, small_dataset):
        # TrainConfig defaults to fanout="model": the GNMRConfig schedule
        # must govern trainer-driven extraction
        from repro.core import GNMR, GNMRConfig
        from repro.train import TrainConfig, Trainer

        model = GNMR(small_dataset, GNMRConfig(pretrain=False, seed=0,
                                               num_layers=2, fanout=(4, 2)))
        seen = []
        original = model.engine.subgraph

        def spy(*args, **kwargs):
            seen.append(kwargs.get("fanout"))
            return original(*args, **kwargs)

        model.engine.subgraph = spy
        config = TrainConfig(epochs=1, steps_per_epoch=1, batch_users=4,
                             per_user=1, propagation="sampled", seed=0)
        assert config.fanout == "model"
        Trainer(model, small_dataset, config).run()
        assert seen == [(4, 2)]

    def test_trainconfig_fanout_overrides_model_config(self, small_dataset):
        from repro.core import GNMR, GNMRConfig
        from repro.train import TrainConfig, Trainer

        model = GNMR(small_dataset, GNMRConfig(pretrain=False, seed=0,
                                               num_layers=2, fanout=(4, 2)))
        seen = []
        original = model.engine.subgraph

        def spy(*args, **kwargs):
            seen.append(kwargs.get("fanout"))
            return original(*args, **kwargs)

        model.engine.subgraph = spy
        config = TrainConfig(epochs=1, steps_per_epoch=1, batch_users=4,
                             per_user=1, propagation="sampled", seed=0,
                             fanout=(6, 3))
        Trainer(model, small_dataset, config).run()
        assert seen == [(6, 3)]  # explicit TrainConfig schedule wins

    def test_schedule_length_enforced_at_extraction(self, small_dataset):
        from repro.core import GNMR, GNMRConfig

        model = GNMR(small_dataset, GNMRConfig(pretrain=False, seed=0,
                                               num_layers=2))
        with pytest.raises(ValueError, match="hops"):
            model.sampled_batch_scores(
                np.array([0]), np.array([1]), np.array([2]),
                fanout=(10, 5, 3), rng=np.random.default_rng(0))

    def test_schedule_caps_each_hop(self, small_dataset):
        # hop-2 cap of 1 must bound the deepest frontier harder than 10
        from repro.core import GNMR, GNMRConfig

        model = GNMR(small_dataset, GNMRConfig(pretrain=False, seed=0,
                                               num_layers=2))
        users = np.arange(4); items = np.arange(8)
        wide = model.engine.subgraph(users, items, hops=2, fanout=(4, 4),
                                     rng=np.random.default_rng(0))
        narrow = model.engine.subgraph(users, items, hops=2, fanout=(4, 1),
                                       rng=np.random.default_rng(0))
        assert (narrow.num_users + narrow.num_items
                <= wide.num_users + wide.num_items)


@pytest.fixture(scope="module")
def small_dataset():
    from repro.data import taobao_like

    return taobao_like(num_users=40, num_items=80, seed=0)

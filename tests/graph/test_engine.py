"""Tests of the shared :class:`~repro.graph.engine.PropagationEngine`."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data import taobao_like
from repro.graph import PropagationEngine, bipartite_laplacian
from repro.tensor import SparseAdjacency, Tensor, check_gradients


@pytest.fixture(scope="module")
def dataset():
    return taobao_like(num_users=30, num_items=50, seed=1)


@pytest.fixture(scope="module")
def engine(dataset):
    return PropagationEngine(dataset.graph(), normalization="row")


class TestFusedPropagation:
    def test_stack_matches_per_behavior_loop(self, dataset, engine):
        """One stacked SpMM must equal K separate products exactly."""
        rng = np.random.default_rng(0)
        h_item = Tensor(rng.standard_normal((dataset.num_items, 8)))
        fused = engine.propagate_user(h_item)
        assert fused.shape == (dataset.num_users, engine.num_behaviors, 8)
        for k, adjacency in enumerate(engine.user_adjacencies):
            expected = adjacency.matmul(h_item).data
            assert (fused.data[:, k, :] == expected).all()

    def test_item_side_shape_and_values(self, dataset, engine):
        rng = np.random.default_rng(1)
        h_user = Tensor(rng.standard_normal((dataset.num_users, 8)))
        fused = engine.propagate_item(h_user)
        assert fused.shape == (dataset.num_items, engine.num_behaviors, 8)
        for k, adjacency in enumerate(engine.item_adjacencies):
            assert (fused.data[:, k, :] == adjacency.matmul(h_user).data).all()

    def test_gradients_flow_through_fused_spmm(self, dataset, engine):
        rng = np.random.default_rng(2)
        h = Tensor(rng.standard_normal((dataset.num_items, 4)), requires_grad=True)
        check_gradients(lambda h: engine.propagate_user(h), [h], atol=1e-4)

    def test_behavior_subset(self, dataset):
        names = dataset.behavior_names[:2]
        engine = PropagationEngine(dataset.graph(), behaviors=names)
        assert engine.behaviors == tuple(names)
        assert engine.num_behaviors == 2
        assert len(engine.user_adjacencies) == 2

    def test_unknown_behavior_rejected(self, dataset):
        with pytest.raises(ValueError, match="not in graph"):
            PropagationEngine(dataset.graph(), behaviors=("nope",))

    def test_dtype_override(self, dataset):
        engine = PropagationEngine(dataset.graph(), dtype="float32")
        assert engine.dtype == np.float32
        assert all(a.dtype == np.float32 for a in engine.user_adjacencies)
        h = Tensor(np.ones((dataset.num_items, 4), dtype=np.float32))
        assert engine.propagate_user(h).dtype == np.float32

    def test_stacks_precompute_backward_transpose(self, engine):
        assert engine._user_stack._transpose_cache is not None
        assert engine._item_stack._transpose_cache is not None


class TestVersionedCache:
    def test_cached_reuses_until_invalidated(self, dataset):
        engine = PropagationEngine(dataset.graph())
        calls = []

        def compute():
            calls.append(1)
            return len(calls)

        assert engine.cached("x", compute) == 1
        assert engine.cached("x", compute) == 1
        engine.invalidate()
        assert engine.cached("x", compute) == 2
        assert len(calls) == 2

    def test_version_counter_monotonic(self, dataset):
        engine = PropagationEngine(dataset.graph())
        v0 = engine.version
        engine.invalidate()
        assert engine.version == v0 + 1

    def test_keys_are_independent(self, dataset):
        engine = PropagationEngine(dataset.graph())
        assert engine.cached("a", lambda: "A") == "A"
        assert engine.cached("b", lambda: "B") == "B"
        assert engine.cached("a", lambda: "never") == "A"


class TestSingleGraphMode:
    def test_bipartite_laplacian_shape_and_norm(self, dataset):
        graph = dataset.graph()
        lap = bipartite_laplacian(graph.merged_adjacency().matrix)
        n = dataset.num_users + dataset.num_items
        assert lap.shape == (n, n)
        # sym-normalized with self loops: spectral radius ≤ 1
        dense = lap.to_dense()
        assert np.abs(np.linalg.eigvalsh(dense)).max() <= 1.0 + 1e-8

    def test_propagate_single(self, dataset):
        engine = PropagationEngine.bipartite(dataset.graph())
        n = dataset.num_users + dataset.num_items
        h = Tensor(np.random.default_rng(0).standard_normal((n, 4)))
        out = engine.propagate(h)
        assert out.shape == (n, 4)
        assert (out.data == engine.adjacency.matmul(h).data).all()

    def test_mode_mismatch_raises(self, dataset):
        multi = PropagationEngine(dataset.graph())
        with pytest.raises(RuntimeError):
            multi.propagate(Tensor(np.ones((3, 2))))
        single = PropagationEngine.from_adjacency(
            SparseAdjacency(sp.eye(4, format="csr")))
        with pytest.raises(RuntimeError):
            single.propagate_user(Tensor(np.ones((4, 2))))


class TestModelsShareEngine:
    def test_gnmr_uses_engine(self, dataset):
        from repro.core import GNMR, GNMRConfig

        model = GNMR(dataset, GNMRConfig(pretrain=False, num_layers=1))
        assert isinstance(model.engine, PropagationEngine)
        assert model.engine.num_behaviors == len(dataset.behavior_names)
        # score() populates the engine cache; on_step_end drops it
        model.score(np.arange(4), np.arange(4))
        assert model.engine._cache
        version = model.engine.version
        model.on_step_end()
        assert model.engine.version == version + 1
        assert not model.engine._cache

    def test_ngcf_uses_engine(self, dataset):
        from repro.models.ngcf import NGCF

        model = NGCF(dataset, embedding_dim=8, num_layers=1)
        assert isinstance(model.engine, PropagationEngine)
        n = dataset.num_users + dataset.num_items
        assert model._laplacian.shape == (n, n)
        model.score(np.arange(4), np.arange(4))
        assert model.engine._cache
        model.on_step_end()
        assert not model.engine._cache

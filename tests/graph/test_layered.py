"""Layered (per-hop) blocks: structure, exactness, and sparse gradients."""

import numpy as np
import pytest

from repro.core import GNMR, GNMRConfig
from repro.data import leave_one_out_split, taobao_like
from repro.models import NGCF
from repro.tensor import RowSparseGrad


@pytest.fixture(scope="module")
def tiny_split():
    return leave_one_out_split(taobao_like(num_users=60, num_items=150, seed=0))


@pytest.fixture(scope="module")
def gnmr(tiny_split):
    model = GNMR(tiny_split.train, GNMRConfig(pretrain=False, seed=0,
                                              dropout=0.0))
    model.eval()
    return model


class TestStructure:
    def test_levels_shrink_toward_seeds(self, gnmr):
        users = np.arange(6); items = np.arange(12)
        block = gnmr.engine.layered_subgraph(users, items, hops=2,
                                             fanout=5,
                                             rng=np.random.default_rng(0))
        u_sizes = [level.size for level in block.user_levels]
        i_sizes = [level.size for level in block.item_levels]
        assert u_sizes[0] >= u_sizes[1] >= u_sizes[2]
        assert i_sizes[0] >= i_sizes[1] >= i_sizes[2]
        np.testing.assert_array_equal(block.user_levels[2], np.arange(6))
        np.testing.assert_array_equal(block.item_levels[2], np.arange(12))

    def test_levels_are_nested(self, gnmr):
        block = gnmr.engine.layered_subgraph(
            np.arange(4), np.arange(8), hops=2, fanout=4,
            rng=np.random.default_rng(1))
        for level in (1, 2):
            assert np.isin(block.user_levels[level],
                           block.user_levels[level - 1]).all()
            assert np.isin(block.item_levels[level],
                           block.item_levels[level - 1]).all()

    def test_hop_shapes_match_levels(self, gnmr):
        block = gnmr.engine.layered_subgraph(
            np.arange(4), np.arange(8), hops=2, fanout=4,
            rng=np.random.default_rng(2))
        k = block.num_behaviors
        for level, hop in enumerate(block.user_hops):
            rows, cols = hop.stack.shape
            assert rows == k * block.user_levels[level + 1].size
            assert cols == block.item_levels[level].size

    def test_schedule_mismatch_rejected(self, gnmr):
        with pytest.raises(ValueError, match="hops"):
            gnmr.engine.layered_subgraph(np.arange(4), np.arange(8), hops=2,
                                         fanout=(5,),
                                         rng=np.random.default_rng(0))


class TestExactness:
    """At fanout=None the seed outputs reproduce full-graph values."""

    def test_gnmr_scores_exact_at_unlimited_fanout(self, gnmr):
        users = np.arange(10); pos = np.arange(10); neg = np.arange(10, 20)
        full_pos, full_neg = gnmr.batch_scores(users, pos, neg)
        block = gnmr.extract_block(users, pos, neg, fanout=None,
                                   rng=np.random.default_rng(0))
        lay_pos, lay_neg = gnmr.block_batch_scores(users, pos, neg, block)
        np.testing.assert_allclose(lay_pos.data, full_pos.data,
                                   rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(lay_neg.data, full_neg.data,
                                   rtol=1e-12, atol=1e-12)

    def test_ngcf_scores_exact_at_unlimited_fanout(self, tiny_split):
        model = NGCF(tiny_split.train, seed=0, num_layers=2)
        model.eval()
        users = np.arange(10); pos = np.arange(10); neg = np.arange(10, 20)
        full_pos, full_neg = model.batch_scores(users, pos, neg)
        block = model.extract_block(users, pos, neg, fanout=None,
                                    rng=np.random.default_rng(0))
        lay_pos, lay_neg = model.block_batch_scores(users, pos, neg, block)
        np.testing.assert_allclose(lay_pos.data, full_pos.data,
                                   rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(lay_neg.data, full_neg.data,
                                   rtol=1e-12, atol=1e-12)

    def test_zero_layer_model_matches_full(self, tiny_split):
        model = GNMR(tiny_split.train, GNMRConfig(pretrain=False, seed=0,
                                                  num_layers=0, dropout=0.0))
        model.eval()
        users = np.arange(5); pos = np.arange(5); neg = np.arange(5, 10)
        full_pos, _ = model.batch_scores(users, pos, neg)
        block = model.extract_block(users, pos, neg, fanout=3,
                                    rng=np.random.default_rng(0))
        lay_pos, _ = model.block_batch_scores(users, pos, neg, block)
        np.testing.assert_allclose(lay_pos.data, full_pos.data)


class TestGradients:
    def test_row_sparse_grads_reach_tables(self, tiny_split):
        model = GNMR(tiny_split.train, GNMRConfig(pretrain=False, seed=0))
        users = np.arange(6); pos = np.arange(6); neg = np.arange(6, 12)
        block = model.extract_block(users, pos, neg, fanout=(4, 2),
                                    rng=np.random.default_rng(0))
        pos_s, neg_s = model.block_batch_scores(users, pos, neg, block)
        loss = (1.0 - pos_s + neg_s).relu().sum()
        loss = loss + model.l2_batch(users, pos, neg, 1e-4)
        loss.backward()
        assert isinstance(model.user_embeddings.grad, RowSparseGrad)
        assert isinstance(model.item_embeddings.grad, RowSparseGrad)
        # the sparse grad covers at most the widest level set
        assert (model.user_embeddings.grad.nnz_rows
                <= block.user_levels[0].size)

    def test_layered_training_converges(self, tiny_split):
        from repro.train import TrainConfig, Trainer

        model = GNMR(tiny_split.train,
                     GNMRConfig(pretrain=False, seed=0, num_layers=1))
        config = TrainConfig(epochs=6, steps_per_epoch=4, batch_users=12,
                             per_user=2, propagation="async", workers=0,
                             fanout=8, seed=0)
        history = Trainer(model, tiny_split.train, config).run()
        losses = history.series("loss")
        assert losses[-1] < losses[0]

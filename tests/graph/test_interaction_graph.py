"""Tests of the multi-behavior interaction graph."""

import numpy as np
import pytest

from repro.graph import MultiBehaviorGraph


@pytest.fixture
def graph(tiny_dataset):
    return tiny_dataset.graph()


class TestConstruction:
    def test_behavior_inventory(self, graph):
        assert graph.behavior_names == ("view", "buy")
        assert graph.num_behaviors == 2
        assert graph.behavior_index("buy") == 1

    def test_mismatched_behaviors_rejected(self):
        with pytest.raises(ValueError):
            MultiBehaviorGraph(2, 2, ("a",), {"b": (np.array([0]), np.array([0]))})

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(ValueError):
            MultiBehaviorGraph(2, 2, ("a",), {"a": (np.array([5]), np.array([0]))})
        with pytest.raises(ValueError):
            MultiBehaviorGraph(2, 2, ("a",), {"a": (np.array([0]), np.array([7]))})

    def test_duplicate_edges_collapse(self):
        graph = MultiBehaviorGraph(
            2, 2, ("a",),
            {"a": (np.array([0, 0, 0]), np.array([1, 1, 1]))},
        )
        assert graph.interaction_count("a") == 1
        assert graph.adjacency("a").to_dense()[0, 1] == 1.0


class TestAdjacency:
    def test_binary_entries(self, graph):
        dense = graph.adjacency("view").to_dense()
        assert set(np.unique(dense)) <= {0.0, 1.0}

    def test_user_items(self, graph):
        np.testing.assert_array_equal(sorted(graph.user_items("view", 0)), [0, 1])
        np.testing.assert_array_equal(graph.user_items("buy", 2), [3])

    def test_has_edge(self, graph):
        assert graph.has_edge("buy", 0, 1)
        assert not graph.has_edge("buy", 0, 4)

    def test_degrees(self, graph):
        np.testing.assert_array_equal(graph.user_degree("buy"), [2, 1, 1, 1])
        assert graph.item_degree("view").sum() == graph.interaction_count("view")

    def test_normalized_cached(self, graph):
        a = graph.normalized_adjacency("buy", "row")
        b = graph.normalized_adjacency("buy", "row")
        assert a is b

    def test_row_normalized_rows(self, graph):
        normalized = graph.normalized_adjacency("view", "row").to_dense()
        sums = normalized.sum(axis=1)
        for user in range(4):
            expected = 1.0 if graph.user_degree("view")[user] > 0 else 0.0
            assert sums[user] == pytest.approx(expected)


class TestMergedView:
    def test_union_semantics(self, graph):
        merged = graph.merged_adjacency().to_dense()
        view = graph.adjacency("view").to_dense()
        buy = graph.adjacency("buy").to_dense()
        np.testing.assert_array_equal(merged, np.clip(view + buy, 0, 1))

    def test_cached(self, graph):
        assert graph.merged_adjacency() is graph.merged_adjacency()


class TestStats:
    def test_counts(self, graph):
        stats = graph.stats()
        assert stats.num_users == 4 and stats.num_items == 5
        assert stats.num_interactions == 12
        assert stats.interactions_per_behavior == {"view": 7, "buy": 5}
        assert 0 < stats.density < 1

    def test_as_row_format(self, graph):
        row = graph.stats().as_row()
        assert row["User #"] == 4
        assert row["Interactive Behavior Type"] == "{view, buy}"


class TestSubgraph:
    def test_drop_behavior(self, graph):
        sub = graph.subgraph_without(["view"])
        assert sub.behavior_names == ("buy",)
        np.testing.assert_array_equal(
            sub.adjacency("buy").to_dense(), graph.adjacency("buy").to_dense())

    def test_cannot_drop_all(self, graph):
        with pytest.raises(ValueError):
            graph.subgraph_without(["view", "buy"])


def test_interaction_tensor(graph, tiny_dataset):
    x = graph.to_interaction_tensor()
    assert x.shape == (4, 5, 2)
    assert x.sum() == 12
    assert x[0, 1, 1] == 1.0  # user 0 bought item 1

"""Sampled-subgraph extraction: index maps, fanout caps, block propagation."""

import numpy as np
import pytest

from repro.data import taobao_like
from repro.graph import PropagationEngine
from repro.graph.subgraph import sample_neighbors
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def engine():
    data = taobao_like(num_users=80, num_items=160, seed=3)
    return PropagationEngine(data.graph(), normalization="row")


@pytest.fixture(scope="module")
def single_engine():
    data = taobao_like(num_users=40, num_items=90, seed=3)
    return PropagationEngine.bipartite(data.graph())


class TestSampleNeighbors:
    def test_fanout_caps_each_row(self, engine):
        matrix = engine.user_adjacencies[0].matrix
        rng = np.random.default_rng(0)
        nodes = np.arange(engine.num_users)
        sampled = sample_neighbors(matrix, nodes, fanout=2, rng=rng)
        degrees = np.diff(matrix.indptr)
        assert sampled.size == int(np.minimum(degrees, 2).sum())

    def test_none_fanout_keeps_everything(self, engine):
        matrix = engine.user_adjacencies[0].matrix
        nodes = np.arange(engine.num_users)
        sampled = sample_neighbors(matrix, nodes, fanout=None,
                                   rng=np.random.default_rng(0))
        assert sampled.size == matrix.nnz

    def test_sampled_ids_are_real_neighbors(self, engine):
        matrix = engine.user_adjacencies[0].matrix
        node = int(np.argmax(np.diff(matrix.indptr)))  # busiest user
        row = set(matrix.indices[matrix.indptr[node]:matrix.indptr[node + 1]].tolist())
        sampled = sample_neighbors(matrix, np.array([node]), fanout=3,
                                   rng=np.random.default_rng(1))
        assert set(sampled.tolist()) <= row


class TestSubgraphBlock:
    def test_contains_seeds_and_maps_round_trip(self, engine):
        seeds_u = np.array([0, 5, 17])
        seeds_i = np.array([2, 9])
        block = engine.subgraph(seeds_u, seeds_i, hops=2, fanout=3,
                                rng=np.random.default_rng(0))
        local_u = block.localize_users(seeds_u)
        local_i = block.localize_items(seeds_i)
        np.testing.assert_array_equal(block.users[local_u], seeds_u)
        np.testing.assert_array_equal(block.items[local_i], seeds_i)

    def test_localize_rejects_absent_ids(self, engine):
        block = engine.subgraph(np.array([0]), np.array([0]), hops=0,
                                fanout=1, rng=np.random.default_rng(0))
        missing = np.setdiff1d(np.arange(engine.num_users), block.users)
        if missing.size:
            with pytest.raises(KeyError):
                block.localize_users(missing[:1])

    def test_edges_are_subset_of_full_graph(self, engine):
        block = engine.subgraph(np.arange(6), np.arange(4), hops=2, fanout=4,
                                rng=np.random.default_rng(2))
        for k in range(block.num_behaviors):
            full = engine.user_adjacencies[k].matrix
            sub = block.user_stack.matrix[k * block.num_users:(k + 1) * block.num_users]
            coo = sub.tocoo()
            for r, c in zip(coo.row, coo.col):
                assert full[block.users[r], block.items[c]] != 0.0

    def test_deterministic_under_seeded_rng(self, engine):
        a = engine.subgraph(np.arange(5), np.arange(5), hops=2, fanout=3,
                            rng=np.random.default_rng(7))
        b = engine.subgraph(np.arange(5), np.arange(5), hops=2, fanout=3,
                            rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.users, b.users)
        np.testing.assert_array_equal(a.items, b.items)
        assert (a.user_stack.matrix != b.user_stack.matrix).nnz == 0

    def test_row_renormalization_gives_means(self, engine):
        block = engine.subgraph(np.arange(10), np.arange(10), hops=1, fanout=3,
                                rng=np.random.default_rng(0))
        sums = np.asarray(block.user_stack.matrix.sum(axis=1)).ravel()
        nonzero = sums[sums > 0]
        np.testing.assert_allclose(nonzero, 1.0)

    def test_full_fanout_matches_engine_messages_on_interior(self, engine):
        # with every node included and no cap, block propagation must equal
        # full-graph propagation exactly (the renormalization is identity)
        rng = np.random.default_rng(0)
        block = engine.subgraph(np.arange(engine.num_users),
                                np.arange(engine.num_items),
                                hops=1, fanout=None, rng=rng)
        assert block.num_users == engine.num_users
        h_item = Tensor(rng.standard_normal((engine.num_items, 8)))
        full = engine.propagate_user(h_item)
        sampled = block.propagate_user(h_item)
        np.testing.assert_allclose(sampled.data, full.data, atol=1e-12)

    def test_propagation_shapes_and_gradients(self, engine):
        block = engine.subgraph(np.arange(4), np.arange(4), hops=1, fanout=2,
                                rng=np.random.default_rng(0))
        h_user = Tensor(np.random.default_rng(1).standard_normal(
            (block.num_users, 6)), requires_grad=True)
        out = block.propagate_item(h_user)
        assert out.shape == (block.num_items, block.num_behaviors, 6)
        out.sum().backward()
        assert h_user.grad.shape == h_user.shape

    def test_multi_behavior_engine_rejects_single_api(self, engine):
        with pytest.raises(RuntimeError):
            engine.subgraph_nodes(np.array([0]))


class TestSingleSubgraph:
    def test_nodes_contain_seeds(self, single_engine):
        seeds = np.array([0, 1, 50])
        sub = single_engine.subgraph_nodes(seeds, hops=2, fanout=3,
                                           rng=np.random.default_rng(0))
        assert np.isin(seeds, sub.nodes).all()

    def test_self_loops_survive(self, single_engine):
        sub = single_engine.subgraph_nodes(np.array([3]), hops=1, fanout=2,
                                           rng=np.random.default_rng(0))
        diag = sub.adjacency.matrix.diagonal()
        assert np.all(diag > 0)

    def test_propagate_shape(self, single_engine):
        sub = single_engine.subgraph_nodes(np.array([0, 4]), hops=2, fanout=3,
                                           rng=np.random.default_rng(1))
        h = Tensor(np.ones((sub.num_nodes, 5)))
        assert sub.propagate(h).shape == (sub.num_nodes, 5)

    def test_single_engine_rejects_bipartite_api(self, single_engine):
        with pytest.raises(RuntimeError):
            single_engine.subgraph(np.array([0]), np.array([0]))

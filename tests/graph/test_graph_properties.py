"""Property-based tests (hypothesis) for the graph substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph import MultiBehaviorGraph, NegativeSampler


@st.composite
def random_graph(draw):
    num_users = draw(st.integers(min_value=2, max_value=12))
    num_items = draw(st.integers(min_value=3, max_value=15))
    num_behaviors = draw(st.integers(min_value=1, max_value=3))
    names = tuple(f"b{k}" for k in range(num_behaviors))
    interactions = {}
    for name in names:
        count = draw(st.integers(min_value=0, max_value=30))
        users = draw(st.lists(st.integers(0, num_users - 1),
                              min_size=count, max_size=count))
        items = draw(st.lists(st.integers(0, num_items - 1),
                              min_size=count, max_size=count))
        interactions[name] = (np.array(users, dtype=np.int64),
                              np.array(items, dtype=np.int64))
    return MultiBehaviorGraph(num_users, num_items, names, interactions)


@given(random_graph())
@settings(max_examples=30, deadline=None)
def test_adjacency_is_binary(graph):
    for behavior in graph.behavior_names:
        dense = graph.adjacency(behavior).to_dense()
        assert set(np.unique(dense)) <= {0.0, 1.0}


@given(random_graph())
@settings(max_examples=30, deadline=None)
def test_degrees_match_adjacency(graph):
    for behavior in graph.behavior_names:
        dense = graph.adjacency(behavior).to_dense()
        np.testing.assert_allclose(graph.user_degree(behavior), dense.sum(axis=1))
        np.testing.assert_allclose(graph.item_degree(behavior), dense.sum(axis=0))


@given(random_graph())
@settings(max_examples=30, deadline=None)
def test_merged_is_union(graph):
    merged = graph.merged_adjacency().to_dense()
    union = np.zeros_like(merged)
    for behavior in graph.behavior_names:
        union = np.maximum(union, graph.adjacency(behavior).to_dense())
    np.testing.assert_allclose(merged, union)


@given(random_graph())
@settings(max_examples=30, deadline=None)
def test_row_normalization_is_stochastic(graph):
    for behavior in graph.behavior_names:
        normalized = graph.normalized_adjacency(behavior, "row").to_dense()
        sums = normalized.sum(axis=1)
        degrees = graph.user_degree(behavior)
        for row_sum, degree in zip(sums, degrees):
            expected = 1.0 if degree > 0 else 0.0
            assert abs(row_sum - expected) < 1e-9


@given(random_graph())
@settings(max_examples=30, deadline=None)
def test_stats_totals_consistent(graph):
    stats = graph.stats()
    assert stats.num_interactions == sum(stats.interactions_per_behavior.values())
    assert stats.num_interactions == graph.interaction_count()


@given(random_graph(), st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=30, deadline=None)
def test_negative_sampler_never_collides(graph, seed):
    behavior = graph.behavior_names[0]
    sampler = NegativeSampler(graph, behavior)
    rng = np.random.default_rng(seed)
    for user in range(graph.num_users):
        if not sampler.can_sample(user):
            continue
        drawn = sampler.sample(user, 3, rng)
        positives = sampler.positives(user)
        assert not (set(drawn.tolist()) & positives)
        assert ((drawn >= 0) & (drawn < graph.num_items)).all()

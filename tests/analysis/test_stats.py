"""Tests of the statistical helpers."""

import numpy as np
import pytest

from repro.analysis import bootstrap_paired_difference, mean_std, metric_std_error


class TestMeanStd:
    def test_basic(self):
        mean, std = mean_std([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)

    def test_singleton(self):
        assert mean_std([5.0]) == (5.0, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_std([])


class TestMetricStdError:
    def test_formula(self):
        assert metric_std_error(0.5, 100) == pytest.approx(0.05)

    def test_extremes_are_zero(self):
        assert metric_std_error(0.0, 100) == 0.0
        assert metric_std_error(1.0, 100) == 0.0

    def test_clamps_out_of_range(self):
        assert metric_std_error(1.2, 100) == 0.0

    def test_invalid_users(self):
        with pytest.raises(ValueError):
            metric_std_error(0.5, 0)

    def test_shrinks_with_more_users(self):
        assert metric_std_error(0.4, 400) < metric_std_error(0.4, 100)


class TestBootstrap:
    def test_identical_models_not_significant(self):
        rng = np.random.default_rng(0)
        ranks = rng.integers(0, 100, 200)
        out = bootstrap_paired_difference(ranks, ranks.copy())
        assert out["difference"] == 0.0
        assert out["p_value"] > 0.5

    def test_clearly_better_model_significant(self):
        rng = np.random.default_rng(1)
        better = rng.integers(0, 5, 300)     # always hits top-10
        worse = rng.integers(20, 100, 300)   # never hits
        out = bootstrap_paired_difference(better, worse)
        assert out["difference"] == pytest.approx(1.0)
        assert out["p_value"] < 0.01

    def test_sign_symmetry(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 30, 200)
        b = rng.integers(0, 30, 200)
        ab = bootstrap_paired_difference(a, b, seed=3)
        ba = bootstrap_paired_difference(b, a, seed=3)
        assert ab["difference"] == pytest.approx(-ba["difference"])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_paired_difference(np.arange(5), np.arange(6))

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(4)
        a = rng.integers(0, 30, 100)
        b = rng.integers(0, 30, 100)
        x = bootstrap_paired_difference(a, b, seed=9)
        y = bootstrap_paired_difference(a, b, seed=9)
        assert x == y

"""Tests of seed-replicated evaluation and learning curves."""

import numpy as np
import pytest

from repro.analysis import learning_curve, replicate
from repro.data import build_eval_candidates, leave_one_out_split, taobao_like
from repro.models import BiasMF
from repro.train import TrainConfig

FAST = TrainConfig(epochs=3, steps_per_epoch=4, batch_users=8, per_user=2,
                   lr=5e-3, seed=0)


class TestReplicate:
    @pytest.fixture(scope="class")
    def result(self):
        return replicate(
            dataset_factory=lambda s: taobao_like(num_users=30, num_items=80,
                                                  seed=s),
            model_factory=lambda train: BiasMF(train.num_users, train.num_items,
                                               seed=0),
            train_config=FAST,
            seeds=(0, 1),
            num_negatives=20,
        )

    def test_one_run_per_seed(self, result):
        assert len(result) == 2
        assert len(result.ranks) == 2

    def test_metrics_present(self, result):
        for run in result.per_run:
            assert "HR@10" in run and "NDCG@10" in run

    def test_summary_aggregates(self, result):
        summary = result.summary()
        values = [run["HR@10"] for run in result.per_run]
        assert summary["HR@10"][0] == pytest.approx(np.mean(values))

    def test_ranks_usable_for_paired_tests(self, result):
        # ranks arrays may differ in length across seeds (different splits)
        for ranks in result.ranks:
            assert ranks.ndim == 1 and ranks.size > 0

    def test_empty_summary(self):
        from repro.analysis import ReplicateResult

        assert ReplicateResult().summary() == {}


class TestLearningCurve:
    def test_metric_series_recorded(self):
        data = taobao_like(num_users=30, num_items=80, seed=5)
        split = leave_one_out_split(data)
        candidates = build_eval_candidates(split.train, split.test_users,
                                           split.test_items, num_negatives=20,
                                           rng=np.random.default_rng(0))
        model = BiasMF(split.train.num_users, split.train.num_items, seed=0)
        history = learning_curve(model, split.train, candidates, FAST)
        series = history.series("metric")
        assert len(series) == FAST.epochs
        assert all(0.0 <= v <= 1.0 for v in series)

"""Full-catalog vs sampled evaluation consistency through the serve layer."""

import numpy as np
import pytest

from repro.core import GNMR, GNMRConfig
from repro.data import build_eval_candidates, leave_one_out_split
from repro.eval import evaluate_full_ranking, evaluate_model


@pytest.fixture(scope="module")
def split(small_taobao):
    return leave_one_out_split(small_taobao)


@pytest.fixture(scope="module")
def gnmr(split):
    return GNMR(split.train, GNMRConfig(pretrain=False, seed=0))


class TestServingPathParity:
    def test_serving_and_brute_ranks_identical(self, gnmr, split):
        """The factored fast path must rank exactly like pairwise scoring."""
        served = evaluate_full_ranking(gnmr, split.train, split.test_users,
                                       split.test_items, use_serving=True)
        brute = evaluate_full_ranking(gnmr, split.train, split.test_users,
                                      split.test_items, use_serving=False)
        np.testing.assert_array_equal(served.ranks, brute.ranks)

    def test_batching_invariant(self, gnmr, split):
        a = evaluate_full_ranking(gnmr, split.train, split.test_users,
                                  split.test_items, batch_users=3)
        b = evaluate_full_ranking(gnmr, split.train, split.test_users,
                                  split.test_items, batch_users=512)
        np.testing.assert_array_equal(a.ranks, b.ranks)


class TestFullVsSampled:
    def test_oracle_perfect_under_both_protocols(self, split):
        class Oracle:
            lookup = dict(zip(split.test_users.tolist(),
                              split.test_items.tolist()))
            num_items = split.train.num_items

            def score(self, users, items):
                return np.array([
                    10.0 if self.lookup.get(int(u)) == int(i) else 0.0
                    for u, i in zip(users, items)
                ])

        oracle = Oracle()
        candidates = build_eval_candidates(
            split.train, split.test_users, split.test_items,
            num_negatives=30, rng=np.random.default_rng(0))
        sampled = evaluate_model(oracle, candidates)
        full = evaluate_full_ranking(oracle, split.train,
                                     split.test_users, split.test_items)
        assert sampled.hr(1) == full.recall(1) == 1.0
        assert sampled.ndcg(10) == full.ndcg(10) == 1.0

    def test_full_catalog_is_harder(self, gnmr, split):
        """Sampled metrics upper-bound full-catalog ones on a real model.

        The full catalog contains every sampled candidate and more, so a
        positive's full-catalog rank can only be ≥ its sampled rank.
        """
        candidates = build_eval_candidates(
            split.train, split.test_users, split.test_items,
            num_negatives=30, rng=np.random.default_rng(1))
        sampled = evaluate_model(gnmr, candidates)
        full = evaluate_full_ranking(gnmr, split.train,
                                     split.test_users, split.test_items)
        assert full.ranks.shape == sampled.ranks.shape
        assert (full.ranks >= sampled.ranks).all()
        for n in (1, 5, 10):
            assert full.recall(n) <= sampled.hr(n)
            assert full.ndcg(n) <= sampled.ndcg(n)
